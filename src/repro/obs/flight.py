"""Crash flight recorder: a bounded in-memory ring of recent events.

Tracing answers "what did the request do"; the flight recorder answers
"what was the *process* doing right before it died".  Server and
workers :func:`record` cheap breadcrumbs (submission outcomes, job
state transitions, checkpoint publishes, drain progress) into one
process-wide ring of bounded size — recording is a lock, a dict, and a
deque append, safe on any path including the evaluation loop's edges.

The ring becomes useful exactly when things go wrong, so it is dumped
atomically (temp file + ``os.replace``) at the two places PR 9 made
failure observable:

* next to every quarantined spool record (:mod:`repro.service.jobs`),
  so the debris carries its own context; and
* on armed crash-point exits, via :func:`arm_crash_dump` registering a
  :func:`repro.util.crash.register_crash_hook` — the kill-restart
  suite asserts a parseable dump exists for every induced crash.

Dumps are plain JSON:  ``{"format": "repro-flight", "v": 1, "reason",
"pid", "dumped_at", "events": [...]}`` with events oldest-first, each
``{"seq", "ts", "thread", "category", "message", "data"}``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any

__all__ = [
    "FLIGHT_FORMAT",
    "FLIGHT_VERSION",
    "DEFAULT_CAPACITY",
    "FlightRecorder",
    "arm_crash_dump",
    "flight_recorder",
    "read_flight_dump",
    "record",
    "reset_flight_recorder",
]

FLIGHT_FORMAT = "repro-flight"
FLIGHT_VERSION = 1

#: Ring capacity: enough to hold the last few hundred job transitions
#: without ever mattering for memory (entries are small dicts).
DEFAULT_CAPACITY = 512


class FlightRecorder:
    """A thread-safe bounded ring of breadcrumb events."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(
                f"flight recorder capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self._lock = threading.Lock()
        self._ring: deque[dict[str, Any]] = deque(maxlen=capacity)
        self._seq = 0

    def record(
        self, category: str, message: str, **data: Any
    ) -> None:
        """Append one breadcrumb (oldest entries fall off the ring)."""
        entry = {
            "seq": 0,  # patched under the lock
            "ts": time.time(),
            "thread": threading.current_thread().name,
            "category": category,
            "message": message,
        }
        if data:
            entry["data"] = data
        with self._lock:
            self._seq += 1
            entry["seq"] = self._seq
            self._ring.append(entry)

    def snapshot(self) -> list[dict[str, Any]]:
        """The ring's current contents, oldest first."""
        with self._lock:
            return [dict(e) for e in self._ring]

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()

    def dump(self, path: str | Path, reason: str) -> Path:
        """Write the ring to ``path`` atomically and return the path.

        Used on crash paths, so it must not assume a healthy process:
        any serialization oddball is stringified rather than raised.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = {
            "format": FLIGHT_FORMAT,
            "v": FLIGHT_VERSION,
            "reason": reason,
            "pid": os.getpid(),
            "dumped_at": time.time(),
            "events": self.snapshot(),
        }
        text = json.dumps(doc, sort_keys=True, default=str) + "\n"
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(text, encoding="utf-8")
        os.replace(tmp, path)
        return path


# ----------------------------------------------------------------------
# one recorder per process: server and worker threads share it, which
# is the point — the dump interleaves everyone's last moves.
_recorder = FlightRecorder()
_armed_lock = threading.Lock()
_armed_dirs: list[Path] = []


def flight_recorder() -> FlightRecorder:
    """The process-wide recorder."""
    return _recorder


def record(category: str, message: str, **data: Any) -> None:
    """Record a breadcrumb on the process-wide ring."""
    _recorder.record(category, message, **data)


def reset_flight_recorder() -> None:
    """Clear the ring and disarm crash dumps (test isolation)."""
    _recorder.clear()
    with _armed_lock:
        _armed_dirs.clear()


def _crash_dump_hook(point: str) -> None:
    """Dump the ring for every armed directory; never raises."""
    with _armed_lock:
        targets = list(_armed_dirs)
    for directory in targets:
        try:
            _recorder.dump(
                directory / f"flight-{point}-{os.getpid()}.json",
                reason=f"crash-point:{point}",
            )
        except Exception:  # pragma: no cover - crash path must not die
            pass


def arm_crash_dump(directory: str | Path) -> None:
    """Dump the ring into ``directory`` when a crash point detonates.

    Idempotent per directory.  Registration happens once per process;
    the hook runs *before* ``os._exit`` so the dump is the last write
    the dying process makes.
    """
    from ..util.crash import register_crash_hook

    directory = Path(directory)
    with _armed_lock:
        if directory in _armed_dirs:
            return
        first = not _armed_dirs
        _armed_dirs.append(directory)
    if first:
        register_crash_hook(_crash_dump_hook)


def read_flight_dump(path: str | Path) -> dict[str, Any]:
    """Parse and sanity-check one dump file.

    Raises ``ValueError`` on anything that is not a well-formed flight
    dump — the recovery suite uses this as its "exists and parses"
    assertion.
    """
    path = Path(path)
    doc = json.loads(path.read_text(encoding="utf-8"))
    if doc.get("format") != FLIGHT_FORMAT:
        raise ValueError(
            f"{path}: not a flight dump (format={doc.get('format')!r})"
        )
    if doc.get("v") != FLIGHT_VERSION:
        raise ValueError(
            f"{path}: unsupported flight dump version {doc.get('v')!r}"
        )
    events = doc.get("events")
    if not isinstance(events, list):
        raise ValueError(f"{path}: events must be a list")
    seqs = [e.get("seq") for e in events]
    if any(not isinstance(s, int) for s in seqs):
        raise ValueError(f"{path}: every event needs an integer seq")
    if seqs != sorted(seqs):
        raise ValueError(f"{path}: events out of sequence order")
    return doc
