"""Phase-level wall-time profiling for the EMTS hot path.

A :class:`PhaseProfiler` accumulates wall-clock time per named phase
(``seeding``, ``mutation``, ``fitness_batch``, ``checkpoint``,
``final_mapping``, ...) through reentrancy-free context managers; a run
ends with a per-phase breakdown that the tracer embeds in its
``run_end`` event and the metrics registry exports as timers.

Instrumentation is **off by default**: code paths take a profiler
argument defaulting to :data:`NULL_PROFILER`, whose ``phase()`` returns
one shared no-op context manager — the disabled cost is an attribute
lookup and an empty ``with`` block per phase entry, far below the <2 %
overhead budget ``benchmarks/check_perf.py`` gates.
"""

from __future__ import annotations

import time

__all__ = ["PhaseProfiler", "NullProfiler", "NULL_PROFILER"]


class _Phase:
    """Context manager accumulating one phase's elapsed time."""

    __slots__ = ("_profiler", "_name", "_t0")

    def __init__(self, profiler: "PhaseProfiler", name: str) -> None:
        self._profiler = profiler
        self._name = name
        self._t0 = 0.0

    def __enter__(self) -> "_Phase":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._profiler.add(
            self._name, time.perf_counter() - self._t0
        )


class PhaseProfiler:
    """Accumulated wall time and entry count per named phase."""

    __slots__ = ("totals", "counts")

    def __init__(self) -> None:
        self.totals: dict[str, float] = {}
        self.counts: dict[str, int] = {}

    @property
    def enabled(self) -> bool:
        return True

    def phase(self, name: str) -> _Phase:
        """Context manager timing one entry of phase ``name``."""
        return _Phase(self, name)

    def add(self, name: str, seconds: float) -> None:
        """Record ``seconds`` of wall time against phase ``name``."""
        self.totals[name] = self.totals.get(name, 0.0) + seconds
        self.counts[name] = self.counts.get(name, 0) + 1

    def total(self, name: str) -> float:
        """Accumulated seconds of one phase (0 when never entered)."""
        return self.totals.get(name, 0.0)

    def summary(self) -> dict[str, float]:
        """Phase name -> accumulated seconds, sorted by cost."""
        return dict(
            sorted(
                self.totals.items(), key=lambda kv: kv[1], reverse=True
            )
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        phases = ", ".join(
            f"{k}={v:.3f}s" for k, v in self.summary().items()
        )
        return f"PhaseProfiler({phases})"


class _NullPhase:
    """Shared no-op context manager (the disabled fast path)."""

    __slots__ = ()

    def __enter__(self) -> "_NullPhase":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


_NULL_PHASE = _NullPhase()


class NullProfiler:
    """Profiler interface with zero-cost no-op methods."""

    __slots__ = ()

    @property
    def enabled(self) -> bool:
        return False

    def phase(self, name: str) -> _NullPhase:
        return _NULL_PHASE

    def add(self, name: str, seconds: float) -> None:
        pass

    def total(self, name: str) -> float:
        return 0.0

    def summary(self) -> dict[str, float]:
        return {}


#: Module-level disabled profiler: the default for every instrumented
#: code path, shared so the off-path allocates nothing.
NULL_PROFILER = NullProfiler()
