"""repro — Evolutionary scheduling of parallel task graphs onto
homogeneous clusters.

A production-quality reproduction of

    Sascha Hunold and Joachim Lepping,
    "Evolutionary Scheduling of Parallel Tasks Graphs onto Homogeneous
    Clusters", IEEE CLUSTER 2011.

The package implements the paper's **EMTS** algorithm (an evolution
strategy over moldable-task processor allocations), the CPA/HCPA/MCPA
baseline heuristics it compares against, the list-scheduling mapper, the
Amdahl and non-monotone synthetic execution-time models, the FFT /
Strassen / DAGGEN workload generators, a discrete-event schedule
simulator, and the harnesses that regenerate every figure of the paper's
evaluation.

Quickstart
----------
>>> from repro import emts5, grelon, SyntheticModel
>>> from repro.workloads import generate_fft
>>> ptg = generate_fft(8, rng=42)
>>> result = emts5().schedule(ptg, grelon(), SyntheticModel(), rng=42)
>>> result.makespan <= min(result.seed_makespans.values())
True

See README.md for the architecture overview and EXPERIMENTS.md for the
paper-versus-measured record of each experiment.
"""

from . import (
    allocation,
    core,
    ea,
    exceptions,
    experiments,
    graph,
    mapping,
    obs,
    online,
    platform,
    simulator,
    timemodels,
    verify,
    workloads,
)
from .exceptions import (
    CampaignError,
    CheckpointError,
    EvaluationError,
    ReproError,
    TimeModelError,
    TraceError,
    VerificationError,
)
from .allocation import (
    BicpaAllocator,
    CpaAllocator,
    CprAllocator,
    DeltaCriticalAllocator,
    HcpaAllocator,
    Mcpa2Allocator,
    McpaAllocator,
    SerialAllocator,
)
from .core import EMTS, EMTSConfig, EMTSResult, emts5, emts10
from .graph import PTG, PTGBuilder, Task
from .mapping import Schedule, makespan_of, map_allocations
from .platform import Cluster, chti, grelon
from .online import FaultPlan, ReactionPolicy, execute_online
from .simulator import simulate
from .timemodels import (
    AmdahlModel,
    DowneyModel,
    ExecutionTimeModel,
    PdgemmLikeModel,
    SyntheticModel,
    TabulatedModel,
    TimeTable,
)
from .verify import (
    ScheduleVerifier,
    VerifyingEvaluator,
    differential_check,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # subpackages
    "graph",
    "platform",
    "timemodels",
    "workloads",
    "mapping",
    "allocation",
    "ea",
    "core",
    "simulator",
    "experiments",
    "exceptions",
    "verify",
    "obs",
    "online",
    # error hierarchy
    "ReproError",
    "EvaluationError",
    "CheckpointError",
    "VerificationError",
    "TimeModelError",
    "CampaignError",
    "TraceError",
    # verification
    "ScheduleVerifier",
    "VerifyingEvaluator",
    "differential_check",
    # core types
    "Task",
    "PTG",
    "PTGBuilder",
    "Cluster",
    "chti",
    "grelon",
    "ExecutionTimeModel",
    "TimeTable",
    "AmdahlModel",
    "SyntheticModel",
    "DowneyModel",
    "TabulatedModel",
    "PdgemmLikeModel",
    "Schedule",
    "map_allocations",
    "makespan_of",
    "SerialAllocator",
    "CpaAllocator",
    "CprAllocator",
    "BicpaAllocator",
    "HcpaAllocator",
    "McpaAllocator",
    "Mcpa2Allocator",
    "DeltaCriticalAllocator",
    "EMTS",
    "EMTSConfig",
    "EMTSResult",
    "emts5",
    "emts10",
    "simulate",
    # online runtime
    "execute_online",
    "FaultPlan",
    "ReactionPolicy",
]
