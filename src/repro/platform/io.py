"""Platform-file I/O.

The paper's simulator "reads a platform file, containing the processors'
speed, and builds a platform model".  We support two formats:

* **JSON** — ``{"name": ..., "num_processors": ..., "speed_gflops": ...}``
* **text** — one line per cluster, ``<name> <num_processors> <speed_gflops>``
  (comments start with ``#``), convenient for hand-written files.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..exceptions import PlatformError
from .cluster import Cluster

__all__ = [
    "cluster_to_dict",
    "cluster_from_dict",
    "save_cluster",
    "load_cluster",
    "parse_platform_text",
    "format_platform_text",
]


def cluster_to_dict(cluster: Cluster) -> dict:
    """JSON-serializable representation of a cluster."""
    return {
        "format": "repro-platform",
        "name": cluster.name,
        "num_processors": cluster.num_processors,
        "speed_gflops": cluster.speed_gflops,
    }


def cluster_from_dict(data: dict) -> Cluster:
    """Inverse of :func:`cluster_to_dict`."""
    if data.get("format") != "repro-platform":
        raise PlatformError(
            f"not a repro platform document (format={data.get('format')!r})"
        )
    try:
        return Cluster(
            name=str(data["name"]),
            num_processors=int(data["num_processors"]),
            speed_gflops=float(data["speed_gflops"]),
        )
    except KeyError as exc:
        raise PlatformError(
            f"platform document is missing field {exc.args[0]!r}"
        ) from None
    except (TypeError, ValueError) as exc:
        raise PlatformError(
            f"platform document has a malformed field: {exc}"
        ) from exc


def save_cluster(cluster: Cluster, path: str | Path) -> None:
    """Write one cluster description to a JSON file."""
    Path(path).write_text(
        json.dumps(cluster_to_dict(cluster), indent=2), encoding="utf-8"
    )


def load_cluster(path: str | Path) -> Cluster:
    """Read one cluster description from a JSON file.

    All failure modes — unreadable file, invalid JSON, missing or
    malformed fields — surface as
    :class:`~repro.exceptions.PlatformError` carrying the file path.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise PlatformError(
            f"could not read platform file {path}: {exc}"
        ) from exc
    try:
        doc = json.loads(text)
    except ValueError as exc:
        raise PlatformError(
            f"platform file {path} is not valid JSON: {exc}"
        ) from exc
    try:
        return cluster_from_dict(doc)
    except PlatformError as exc:
        raise PlatformError(f"{path}: {exc}") from None


def parse_platform_text(text: str) -> list[Cluster]:
    """Parse the line-oriented text format into clusters."""
    clusters: list[Cluster] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) != 3:
            raise PlatformError(
                f"line {lineno}: expected '<name> <procs> <gflops>', "
                f"got {raw!r}"
            )
        name, procs, gflops = parts
        try:
            clusters.append(
                Cluster(
                    name=name,
                    num_processors=int(procs),
                    speed_gflops=float(gflops),
                )
            )
        except ValueError as exc:
            raise PlatformError(f"line {lineno}: {exc}") from None
    if not clusters:
        raise PlatformError("platform text contains no cluster definitions")
    return clusters


def format_platform_text(clusters: list[Cluster]) -> str:
    """Render clusters in the line-oriented text format."""
    lines = ["# name  num_processors  speed_gflops"]
    for c in clusters:
        lines.append(f"{c.name}  {c.num_processors}  {c.speed_gflops:g}")
    return "\n".join(lines) + "\n"
