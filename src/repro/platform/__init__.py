"""Homogeneous cluster platform models (paper Section IV-A).

Public API: :class:`Cluster`, the paper's :func:`chti` / :func:`grelon`
presets, and platform-file I/O.
"""

from .cluster import Cluster
from .io import (
    cluster_from_dict,
    cluster_to_dict,
    format_platform_text,
    load_cluster,
    parse_platform_text,
    save_cluster,
)
from .presets import by_name, chti, grelon, paper_platforms

__all__ = [
    "Cluster",
    "chti",
    "grelon",
    "paper_platforms",
    "by_name",
    "cluster_to_dict",
    "cluster_from_dict",
    "save_cluster",
    "load_cluster",
    "parse_platform_text",
    "format_platform_text",
]
