"""The Grid'5000 platform models used in the paper (Section IV-A).

* **Chti** (Lille): 20 computational nodes at 4.3 GFLOPS each.
* **Grelon** (Nancy): 120 nodes at 3.1 GFLOPS each.

Peak performances were measured by the paper's authors with HP-LinPACK
using ACML; we reuse the published numbers directly — the paper itself
evaluates on these platform *models*, so nothing is lost by not having
the physical clusters.
"""

from __future__ import annotations

from .cluster import Cluster

__all__ = ["chti", "grelon", "paper_platforms", "by_name"]


def chti() -> Cluster:
    """The smaller cluster: 20 nodes at 4.3 GFLOPS (Lille)."""
    return Cluster(name="chti", num_processors=20, speed_gflops=4.3)


def grelon() -> Cluster:
    """The larger cluster: 120 nodes at 3.1 GFLOPS (Nancy)."""
    return Cluster(name="grelon", num_processors=120, speed_gflops=3.1)


def paper_platforms() -> tuple[Cluster, Cluster]:
    """Both evaluation platforms, in the paper's (Chti, Grelon) order."""
    return (chti(), grelon())


_REGISTRY = {"chti": chti, "grelon": grelon}


def by_name(name: str) -> Cluster:
    """Look up a preset platform by (case-insensitive) name."""
    try:
        return _REGISTRY[name.lower()]()
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(
            f"unknown platform {name!r}; known presets: {known}"
        ) from None
