"""Homogeneous cluster platform model (paper Sections II-A and IV-A).

A platform is a set of ``P`` identical processors, each with the same
computing speed (GFLOPS), fully interconnected so that every processor
pair can communicate.  Communication costs between tasks are *not*
modelled (paper Section III: "communication costs between tasks are not
considered; if communication or data redistributions are necessary, they
need to be included in the execution time model").
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import PlatformError

__all__ = ["Cluster"]


@dataclass(frozen=True)
class Cluster:
    """A homogeneous cluster.

    Parameters
    ----------
    name:
        Human-readable platform label (e.g. ``"chti"``).
    num_processors:
        Number of identical processors ``P``; each task may be allocated
        ``1 <= p <= P`` of them.
    speed_gflops:
        Per-processor computing speed in GFLOPS, as measured by the paper
        with HP-LinPACK.
    """

    name: str
    num_processors: int
    speed_gflops: float

    def __post_init__(self) -> None:
        if self.num_processors < 1:
            raise PlatformError(
                f"cluster {self.name!r}: num_processors must be >= 1, "
                f"got {self.num_processors}"
            )
        if not self.speed_gflops > 0.0:
            raise PlatformError(
                f"cluster {self.name!r}: speed_gflops must be > 0, "
                f"got {self.speed_gflops}"
            )

    @property
    def speed_flops(self) -> float:
        """Per-processor speed in FLOP/s."""
        return self.speed_gflops * 1e9

    @property
    def peak_flops(self) -> float:
        """Aggregate peak of the whole cluster in FLOP/s."""
        return self.num_processors * self.speed_flops

    def sequential_time(self, work: float) -> float:
        """Time (seconds) to run ``work`` FLOP on a single processor."""
        if work < 0:
            raise PlatformError(f"work must be >= 0, got {work}")
        return work / self.speed_flops

    def valid_allocation(self, p: int) -> bool:
        """True if ``p`` processors is a feasible moldable allocation."""
        return 1 <= p <= self.num_processors

    def clamp_allocation(self, p: int) -> int:
        """Clamp ``p`` into the feasible range ``[1, P]``."""
        return max(1, min(int(p), self.num_processors))

    def scaled(self, factor: int, name: str | None = None) -> "Cluster":
        """A cluster with ``factor`` times as many processors.

        Convenience for scalability studies (the paper observes EMTS gains
        grow with platform size).
        """
        if factor < 1:
            raise PlatformError(f"scale factor must be >= 1, got {factor}")
        return Cluster(
            name=name or f"{self.name}-x{factor}",
            num_processors=self.num_processors * factor,
            speed_gflops=self.speed_gflops,
        )

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.num_processors} procs @ "
            f"{self.speed_gflops:g} GFLOPS"
        )
