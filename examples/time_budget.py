#!/usr/bin/env python
"""Scheduling under a wall-clock budget.

The paper frames EMTS around real-world time constraints: "since we can
usually trade time for solution quality, we focus on a given time
constraint" (Section II-C).  This example runs the same scheduling
problem under increasing optimization budgets and shows the
quality/time trade-off: more budget, shorter schedules, diminishing
returns.

Run:  python examples/time_budget.py
"""

from repro import EMTS, EMTSConfig, SyntheticModel, TimeTable, grelon
from repro.experiments import text_table
from repro.workloads import DaggenParams, generate_daggen


def main() -> None:
    ptg = generate_daggen(
        DaggenParams(
            num_tasks=100, width=0.5, regularity=0.2, density=0.8, jump=2
        ),
        rng=5,
        name="budgeted-workflow",
    )
    cluster = grelon()
    table = TimeTable.build(SyntheticModel(), ptg, cluster)

    budgets = [0.05, 0.2, 0.5, 2.0]
    rows = []
    for budget in budgets:
        config = EMTSConfig(
            mu=10,
            lam=100,
            generations=1000,  # effectively unbounded; the clock stops us
            time_budget_seconds=budget,
            use_rejection=True,  # the paper's future-work speed-up
            name=f"emts-{budget:g}s",
        )
        result = EMTS(config).schedule(ptg, cluster, table, rng=5)
        rows.append(
            [
                f"{budget:g} s",
                result.log.generations - 1,
                result.evaluations,
                result.makespan,
                result.improvement_over("mcpa"),
            ]
        )

    print(
        text_table(
            [
                "budget",
                "generations",
                "evaluations",
                "makespan [s]",
                "T_mcpa/T_emts",
            ],
            rows,
        )
    )
    print(
        "note: the makespan column is non-increasing down the table —\n"
        "the plus-strategy never loses a solution it has found, so more\n"
        "budget can only help (paper Section V)."
    )


if __name__ == "__main__":
    main()
