#!/usr/bin/env python
"""Convergence of the evolutionary search: EMTS5 vs EMTS10.

Reproduces the paper's Section V discussion live: EMTS5's schedule is
"already efficient, so that improving this solution would require many
more evolutionary generations" — visible here as EMTS5's best/seed curve
flattening after a few generations while EMTS10 (4x the offspring, twice
the generations) keeps finding improvements on irregular PTGs.

Run:  python examples/convergence_study.py
"""

from repro import SyntheticModel, emts5, emts10, grelon
from repro.experiments import run_convergence_study
from repro.workloads import DaggenParams, generate_daggen


def spark(curve, width=40) -> str:
    """Cheap terminal sparkline of a descending curve."""
    lo, hi = min(curve), max(curve)
    span = (hi - lo) or 1.0
    blocks = " .:-=+*#%@"
    return "".join(
        blocks[
            min(
                len(blocks) - 1,
                int((hi - v) / span * (len(blocks) - 1)),
            )
        ]
        for v in curve
    )


def main() -> None:
    ptgs = [
        generate_daggen(
            DaggenParams(
                num_tasks=100,
                width=0.5,
                regularity=0.2,
                density=0.2,
                jump=2,
            ),
            rng=s,
            name=f"irregular-{s}",
        )
        for s in range(4)
    ]
    print(
        f"studying convergence on {len(ptgs)} irregular 100-task PTGs "
        "(Grelon, non-monotone model)\n"
    )

    study = run_convergence_study(
        ptgs, grelon(), SyntheticModel(), [emts5(), emts10()], seed=11
    )
    print(study.render())

    for variant in ("emts5", "emts10"):
        curve = study.mean_relative_trajectory(variant)
        print(
            f"{variant:>7}: {spark(curve)}  "
            f"final improvement {study.final_improvement(variant):.2f}x"
        )
    print(
        "\nNote how emts5 flattens after its 5 generations while emts10"
        "\nkeeps descending — the paper's argument for EMTS10 on larger"
        "\nPTGs, and its future-work motivation to cut per-generation "
        "cost."
    )


if __name__ == "__main__":
    main()
