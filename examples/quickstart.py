#!/usr/bin/env python
"""Quickstart: schedule one parallel task graph with EMTS.

Generates an FFT parallel task graph, schedules it on the Grelon cluster
model (120 processors) under the paper's non-monotone execution-time
model, and compares the evolutionary scheduler against the MCPA and HCPA
heuristics it is seeded with.

Run:  python examples/quickstart.py
"""

from repro import SyntheticModel, emts5, grelon, simulate
from repro.mapping import ascii_gantt
from repro.workloads import generate_fft


def main() -> None:
    # 1. A workload: an FFT task graph with 39 moldable tasks.
    ptg = generate_fft(8, rng=42)
    print(f"PTG: {ptg.name} ({ptg.num_tasks} tasks, {ptg.num_edges} edges)")

    # 2. A platform: the Grelon cluster model from the paper.
    cluster = grelon()
    print(f"platform: {cluster}")

    # 3. Schedule with EMTS5 — a (5+25) evolution strategy, 5 generations,
    #    seeded with the MCPA, HCPA and delta-critical allocations.
    result = emts5().schedule(ptg, cluster, SyntheticModel(), rng=42)

    print("\nseed heuristics (starting solutions):")
    for name, makespan in sorted(result.seed_makespans.items()):
        print(f"  {name:<15s} makespan = {makespan:8.3f} s")
    print(f"\nEMTS5 makespan = {result.makespan:8.3f} s")
    print(f"  improvement over MCPA: {result.improvement_over('mcpa'):.2f}x")
    print(f"  improvement over HCPA: {result.improvement_over('hcpa'):.2f}x")
    print(f"  optimization time: {result.elapsed_seconds:.2f} s "
          f"({result.evaluations} schedule evaluations)")

    # 4. The evolution log shows the (monotone) convergence of the search.
    print("\nevolution log:")
    print(result.log)

    # 5. Double-check the schedule in the discrete-event simulator.
    sim = simulate(result.schedule)
    print(f"\nsimulated makespan: {sim.makespan:.3f} s "
          f"(utilization {sim.utilization:.1%})")

    # 6. Visual: a Gantt chart of the winning schedule.
    print()
    print(ascii_gantt(result.schedule, width=100, max_processors=24))


if __name__ == "__main__":
    main()
