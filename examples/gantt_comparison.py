#!/usr/bin/env python
"""Figure 6 live: side-by-side Gantt charts of MCPA vs EMTS10.

Reproduces the paper's Figure 6 scenario — an irregular 100-task PTG on
the 120-processor Grelon cluster under the non-monotone model — and
writes both schedules as SVG Gantt charts next to this script.  The MCPA
chart shows the pathology the paper describes (tiny allocations, most of
the machine idle); the EMTS10 chart shows the big tasks stretched across
many processors.

Run:  python examples/gantt_comparison.py
"""

from pathlib import Path

from repro.experiments.figures import generate_figure6


def main() -> None:
    fig = generate_figure6(seed=11)
    print(fig.render(width=100))
    out_dir = Path(__file__).resolve().parent / "output"
    mcpa_svg, emts_svg = fig.save_svgs(out_dir)
    print(f"SVG Gantt charts written to:\n  {mcpa_svg}\n  {emts_svg}")


if __name__ == "__main__":
    main()
