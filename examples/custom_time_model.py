#!/usr/bin/env python
"""Model independence: plugging a measured execution-time model into EMTS.

The central claim of the paper is that the evolutionary strategy "can be
used with any underlying model for predicting the execution time of
moldable tasks".  This example demonstrates exactly that with the
strongest kind of model — not a formula but a *table of measurements*:

1. we "benchmark" a PDGEMM-like kernel at a handful of processor counts
   (here the measurements come from the PDGEMM cost model; in real life
   they would come from your cluster) and wrap them in a
   :class:`~repro.timemodels.TabulatedModel`;
2. the measured curve is non-monotone (prime processor counts force
   degenerate process grids), misleading the CPA-family heuristics;
3. EMTS consumes the tabulated model unchanged and routes around the
   bad processor counts.

Run:  python examples/custom_time_model.py
"""

import numpy as np

from repro import (
    HcpaAllocator,
    McpaAllocator,
    TabulatedModel,
    TimeTable,
    emts5,
    grelon,
)
from repro.mapping import makespan_of
from repro.timemodels import MeasurementSeries, pdgemm_time
from repro.workloads import generate_strassen


def benchmark_kernel() -> MeasurementSeries:
    """'Measure' a matrix kernel at every processor count 1..120.

    A small, communication-bound matrix makes the process-grid spikes
    pronounced: every prime count forces a 1 x p grid and is slower
    than its neighbours — the curve is strongly non-monotone, like the
    paper's Figure 1.
    """
    procs = list(range(1, 121))
    times = [pdgemm_time(640, p, speed_flops=3.1e9) for p in procs]
    print("measured kernel timings (normalized to T(1), p = 1..32):")
    for p in range(1, 33):
        t = times[p - 1]
        bar = "#" * int(round(40 * t / times[0]))
        print(f"  p={p:>3}: {t / times[0]:6.3f}  {bar}")
    return MeasurementSeries.from_absolute(procs, times)


def main() -> None:
    series = benchmark_kernel()
    # every task kind uses the measured curve (default=); mixed workloads
    # would register one series per kind instead
    model = TabulatedModel({}, default=series, name="measured-pdgemm")

    ptg = generate_strassen(
        rng=3, data_size=1.0e8, name="strassen-measured"
    )
    cluster = grelon()
    table = TimeTable.build(model, ptg, cluster)

    mcpa = McpaAllocator().allocate(ptg, table)
    hcpa = HcpaAllocator().allocate(ptg, table)
    result = emts5().schedule(ptg, cluster, table, rng=3)

    print(f"\nscheduling {ptg.name} on {cluster.name} "
          f"under the measured model:")
    print(f"  MCPA : makespan {makespan_of(ptg, table, mcpa):8.3f} s "
          f"(allocations {mcpa.min()}..{mcpa.max()})")
    print(f"  HCPA : makespan {makespan_of(ptg, table, hcpa):8.3f} s "
          f"(allocations {hcpa.min()}..{hcpa.max()})")
    alloc = result.allocation
    print(f"  EMTS5: makespan {result.makespan:8.3f} s "
          f"(allocations {alloc.min()}..{alloc.max()})")

    # the heuristics' growth stalls at the first spike in the measured
    # curve; EMTS jumps across the spikes to wider, still-efficient
    # allocations and uses the machine better
    from repro.mapping import map_allocations

    util_mcpa = map_allocations(ptg, table, mcpa).utilization
    util_emts = result.schedule.utilization
    print(
        f"\ncluster utilization: MCPA {util_mcpa:.1%} vs "
        f"EMTS5 {util_emts:.1%}"
    )
    curve = np.asarray(series.interpolate(np.arange(1, 121)))
    spikes = np.flatnonzero(
        (curve[1:-1] > curve[:-2]) & (curve[1:-1] > curve[2:])
    ) + 2
    on_spike = int(np.sum(np.isin(alloc, spikes)))
    print(
        f"EMTS5 tasks sitting on a measured spike (local maximum of "
        f"the curve): {on_spike} of {ptg.num_tasks}"
    )


if __name__ == "__main__":
    main()
