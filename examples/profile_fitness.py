#!/usr/bin/env python
"""Profiling the scheduling hot path (the HPC-Python workflow).

The paper's complexity analysis says EMTS's cost is dominated by the
mapping function — ``O(U * mu * lambda * C_map)`` — and its conclusions
name the mapper as the optimization target.  This script follows the
standard scientific-Python optimization workflow: *measure before you
optimize*.  It times the three layers of one fitness evaluation and
then cProfiles a full EMTS10 run so you can see where the time really
goes (spoiler: bottom levels + the list-scheduling sweep, exactly as
predicted — which is why both are vectorized in this library).

Run:  python examples/profile_fitness.py
"""

import cProfile
import io
import pstats
import timeit

import numpy as np

from repro import SyntheticModel, TimeTable, emts10, grelon
from repro.graph import bottom_levels
from repro.mapping import makespan_of
from repro.workloads import DaggenParams, generate_daggen


def main() -> None:
    ptg = generate_daggen(
        DaggenParams(
            num_tasks=100, width=0.5, regularity=0.2, density=0.5, jump=2
        ),
        rng=1,
        name="profiled-100",
    )
    cluster = grelon()
    table = TimeTable.build(SyntheticModel(), ptg, cluster)
    alloc = np.full(ptg.num_tasks, 4, dtype=np.int64)
    times = table.times_for(alloc)

    print("micro-timings (median of repeated runs):")
    for label, stmt in [
        ("table lookup   (times_for)", lambda: table.times_for(alloc)),
        ("bottom levels  (per eval) ", lambda: bottom_levels(ptg, times)),
        ("full fitness   (makespan) ", lambda: makespan_of(ptg, table, alloc)),
    ]:
        reps = 200
        best = min(timeit.repeat(stmt, number=reps, repeat=5)) / reps
        print(f"  {label}: {best * 1e6:9.1f} us")

    print("\ncProfile of one EMTS10 run (top 10 by cumulative time):")
    profiler = cProfile.Profile()
    profiler.enable()
    emts10().schedule(ptg, cluster, table, rng=1)
    profiler.disable()
    out = io.StringIO()
    stats = pstats.Stats(profiler, stream=out)
    stats.strip_dirs().sort_stats("cumulative").print_stats(10)
    print(out.getvalue())


if __name__ == "__main__":
    main()
