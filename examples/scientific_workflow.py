#!/usr/bin/env python
"""Scheduling a scientific workflow: every algorithm, both models.

The paper's motivating scenario: a user has been granted a time slot on a
cluster and wants the workflow's makespan minimized.  This example builds
a Montage-like astronomy mosaicking workflow (projection fan → pairwise
background differences → model fit → correction fan → co-addition) plus
an irregular 100-task DAGGEN workflow, schedules both with every
algorithm in the library on both paper platforms and under both
execution-time models, and prints the resulting comparison matrix.

Things to look for in the output (they mirror the paper's findings):

* under Model 1 (Amdahl), MCPA is already strong and EMTS5's edge is
  moderate; HCPA over-allocates and falls behind;
* under Model 2 (non-monotone), every CPA-family heuristic stalls with
  tiny allocations and EMTS's advantage grows markedly;
* all effects are larger on Grelon (120 processors) than on Chti (20).

Run:  python examples/scientific_workflow.py
"""

import time

from repro import (
    AmdahlModel,
    CpaAllocator,
    DeltaCriticalAllocator,
    HcpaAllocator,
    McpaAllocator,
    SerialAllocator,
    SyntheticModel,
    TimeTable,
    chti,
    emts5,
    emts10,
    grelon,
)
from repro.experiments import text_table
from repro.mapping import makespan_of
from repro.workloads import (
    DaggenParams,
    generate_daggen,
    generate_montage,
)


def main() -> None:
    workflows = [
        generate_montage(16, rng=7, name="montage-16"),
        generate_daggen(
            DaggenParams(
                num_tasks=100,
                width=0.5,
                regularity=0.2,
                density=0.2,
                jump=2,
            ),
            rng=7,
            name="workflow-100",
        ),
    ]
    for wf in workflows:
        print(
            f"workflow: {wf.name} ({wf.num_tasks} tasks, "
            f"{wf.num_edges} edges)"
        )
    print()

    heuristics = [
        SerialAllocator(),
        CpaAllocator(),
        HcpaAllocator(),
        McpaAllocator(),
        DeltaCriticalAllocator(),
    ]
    evolutionary = [emts5(), emts10()]

    rows = []
    for ptg in workflows:
        for cluster in (chti(), grelon()):
            for model in (AmdahlModel(), SyntheticModel()):
                table = TimeTable.build(model, ptg, cluster)
                for h in heuristics:
                    t0 = time.perf_counter()
                    ms = makespan_of(
                        ptg, table, h.allocate(ptg, table)
                    )
                    rows.append(
                        [
                            ptg.name,
                            cluster.name,
                            model.name,
                            h.name,
                            ms,
                            time.perf_counter() - t0,
                        ]
                    )
                for e in evolutionary:
                    result = e.schedule(ptg, cluster, table, rng=7)
                    rows.append(
                        [
                            ptg.name,
                            cluster.name,
                            model.name,
                            e.name,
                            result.makespan,
                            result.elapsed_seconds,
                        ]
                    )

    print(
        text_table(
            [
                "workflow",
                "platform",
                "model",
                "algorithm",
                "makespan [s]",
                "time [s]",
            ],
            rows,
        )
    )

    # the paper's headline: relative makespan vs EMTS5 under Model 2
    print("relative makespans on grelon under the non-monotone model:")
    for wf in workflows:
        grelon_m2 = {
            r[3]: r[4]
            for r in rows
            if r[0] == wf.name
            and r[1] == "grelon"
            and r[2].startswith("model2")
        }
        emts_ms = grelon_m2["emts5"]
        print(f"  {wf.name}:")
        for name, ms in sorted(grelon_m2.items()):
            print(f"    T_{name} / T_emts5 = {ms / emts_ms:6.3f}")


if __name__ == "__main__":
    main()
