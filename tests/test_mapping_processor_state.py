"""Unit tests for processor-availability bookkeeping."""

import numpy as np
import pytest

from repro.exceptions import ScheduleError
from repro.mapping import ProcessorState


class TestEarliestStart:
    def test_idle_machine(self):
        st = ProcessorState(4)
        assert st.earliest_start(2, ready=0.0) == 0.0

    def test_ready_time_dominates(self):
        st = ProcessorState(4)
        assert st.earliest_start(2, ready=5.0) == 5.0

    def test_kth_smallest_free_time(self):
        st = ProcessorState(3)
        st.free[:] = [1.0, 3.0, 5.0]
        assert st.earliest_start(1, 0.0) == 1.0
        assert st.earliest_start(2, 0.0) == 3.0
        assert st.earliest_start(3, 0.0) == 5.0

    def test_invalid_allocation(self):
        st = ProcessorState(2)
        with pytest.raises(ScheduleError):
            st.earliest_start(0, 0.0)
        with pytest.raises(ScheduleError):
            st.earliest_start(3, 0.0)

    def test_invalid_size(self):
        with pytest.raises(ScheduleError):
            ProcessorState(0)


class TestAssign:
    def test_first_fit_by_index(self):
        st = ProcessorState(4)
        st.free[:] = [0.0, 2.0, 0.0, 0.0]
        chosen = st.assign(2, start=0.0, finish=1.0)
        # P1 is busy until 2: first fit picks P0 and P2
        assert chosen.tolist() == [0, 2]
        assert st.free.tolist() == [1.0, 2.0, 1.0, 0.0]

    def test_not_enough_processors(self):
        st = ProcessorState(2)
        st.free[:] = [5.0, 5.0]
        with pytest.raises(ScheduleError, match="free at"):
            st.assign(1, start=0.0, finish=1.0)

    def test_assign_all(self):
        st = ProcessorState(3)
        chosen = st.assign(3, start=0.0, finish=2.0)
        assert chosen.tolist() == [0, 1, 2]
        assert np.all(st.free == 2.0)

    def test_sequential_assignments(self):
        st = ProcessorState(2)
        st.assign(1, 0.0, 1.0)
        st.assign(1, 0.0, 2.0)  # second processor
        assert st.free.tolist() == [1.0, 2.0]
        chosen = st.assign(1, 1.0, 3.0)  # P0 is free again at 1.0
        assert chosen.tolist() == [0]

    def test_reset(self):
        st = ProcessorState(3)
        st.assign(2, 0.0, 9.0)
        st.reset()
        assert np.all(st.free == 0.0)
        assert st.num_processors == 3
