"""Unit tests for the scientific-workflow generators."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graph import precedence_levels, validate_ptg
from repro.workloads import (
    generate_montage,
    generate_pipeline_ensemble,
)


class TestMontage:
    def test_task_count(self):
        # tiles projections + (tiles-1) diffs + fit + tiles corrections
        # + coadd = 3*tiles + 1
        for tiles in (2, 4, 8, 16):
            g = generate_montage(tiles, rng=1)
            assert g.num_tasks == 3 * tiles + 1

    def test_structure(self):
        g = generate_montage(6, rng=2)
        # sources: the projection tasks; sink: the co-addition
        assert len(g.sinks) == 1
        assert g.task(g.sinks[0]).kind == "montage-coadd"
        assert len(g.sources) == 6  # one projection per tile

    def test_fit_concentrates_all_diffs(self):
        g = generate_montage(5, rng=3)
        fit = g.index("mBgModel")
        assert len(g.predecessors(fit)) == 4  # tiles - 1 diffs

    def test_corrections_depend_on_fit_and_tile(self):
        g = generate_montage(4, rng=4)
        c0 = g.index("mBackground-0")
        pred_names = {g.task(u).name for u in g.predecessors(c0)}
        assert pred_names == {"mBgModel", "mProject-0"}

    def test_diamond_depth(self):
        g = generate_montage(8, rng=5)
        lv = precedence_levels(g)
        assert int(lv.max()) == 4  # project, diff, fit, correct, coadd

    def test_validates(self):
        rep = validate_ptg(
            generate_montage(10, rng=6), require_connected=True
        )
        assert rep.ok, str(rep)

    def test_reproducible(self):
        assert generate_montage(6, rng=7) == generate_montage(
            6, rng=7
        )

    def test_too_few_tiles(self):
        with pytest.raises(GraphError):
            generate_montage(1, rng=1)


class TestPipelineEnsemble:
    def test_task_count(self):
        g = generate_pipeline_ensemble(pipelines=5, depth=3, rng=1)
        assert g.num_tasks == 5 * 3 + 2

    def test_single_source_single_sink(self):
        g = generate_pipeline_ensemble(pipelines=4, depth=2, rng=2)
        assert len(g.sources) == 1
        assert len(g.sinks) == 1

    def test_depth(self):
        g = generate_pipeline_ensemble(pipelines=3, depth=5, rng=3)
        lv = precedence_levels(g)
        assert int(lv.max()) == 6  # setup + 5 stages + aggregate

    def test_pipelines_are_independent(self):
        g = generate_pipeline_ensemble(pipelines=3, depth=2, rng=4)
        # a middle stage of pipeline 0 has exactly one successor
        mid = g.index("p0-s0")
        assert len(g.successors(mid)) == 1

    def test_validates(self):
        rep = validate_ptg(
            generate_pipeline_ensemble(6, 4, rng=5),
            require_connected=True,
        )
        assert rep.ok, str(rep)

    def test_invalid_params(self):
        with pytest.raises(GraphError):
            generate_pipeline_ensemble(0, 3, rng=1)
        with pytest.raises(GraphError):
            generate_pipeline_ensemble(3, 0, rng=1)


class TestSchedulability:
    """The workflow shapes work end-to-end with the whole stack."""

    @pytest.mark.parametrize(
        "make",
        [
            lambda: generate_montage(8, rng=11),
            lambda: generate_pipeline_ensemble(6, 4, rng=11),
        ],
        ids=["montage", "ensemble"],
    )
    def test_emts_schedules_workflows(self, make):
        from repro import SyntheticModel, emts5, grelon, simulate

        ptg = make()
        result = emts5().schedule(
            ptg, grelon(), SyntheticModel(), rng=11
        )
        simulate(result.schedule)
        assert result.makespan <= min(
            result.seed_makespans.values()
        ) + 1e-9
