"""Unit tests for the tabulated/empirical model."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.graph import PTG, Task
from repro.platform import Cluster
from repro.timemodels import MeasurementSeries, TabulatedModel


@pytest.fixture
def cluster():
    return Cluster("c", num_processors=8, speed_gflops=1.0)


@pytest.fixture
def halving_series():
    """Perfect scaling measured at powers of two."""
    return MeasurementSeries([1, 2, 4, 8], [1.0, 0.5, 0.25, 0.125])


class TestMeasurementSeries:
    def test_basic(self, halving_series):
        assert halving_series.interpolate(2) == pytest.approx(0.5)

    def test_interpolation_between_points(self, halving_series):
        assert halving_series.interpolate(3) == pytest.approx(0.375)

    def test_flat_extrapolation(self):
        s = MeasurementSeries([1, 4], [1.0, 0.3])
        assert s.interpolate(100) == pytest.approx(0.3)

    def test_must_start_at_one(self):
        with pytest.raises(ModelError, match="p=1"):
            MeasurementSeries([2, 4], [1.0, 0.5])

    def test_must_be_normalized(self):
        with pytest.raises(ModelError, match="must be 1.0"):
            MeasurementSeries([1, 2], [2.0, 1.0])

    def test_strictly_increasing_procs(self):
        with pytest.raises(ModelError, match="increasing"):
            MeasurementSeries([1, 2, 2], [1.0, 0.5, 0.4])

    def test_positive_values_required(self):
        with pytest.raises(ModelError):
            MeasurementSeries([1, 2], [1.0, -0.5])

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            MeasurementSeries([], [])

    def test_from_absolute(self):
        s = MeasurementSeries.from_absolute([1, 2, 4], [10.0, 6.0, 4.0])
        assert s.interpolate(2) == pytest.approx(0.6)

    def test_from_absolute_bad_reference(self):
        with pytest.raises(ModelError):
            MeasurementSeries.from_absolute([1, 2], [0.0, 1.0])

    def test_non_monotone_series_allowed(self):
        # empirical curves may go UP - that is the whole point
        s = MeasurementSeries([1, 2, 3], [1.0, 0.5, 0.8])
        assert s.interpolate(3) == pytest.approx(0.8)


class TestTabulatedModel:
    def test_time_scales_with_work(self, cluster, halving_series):
        model = TabulatedModel({"k": halving_series})
        fast = Task("f", work=1e9, kind="k")
        slow = Task("s", work=4e9, kind="k")
        assert model.time(slow, 2, cluster) == pytest.approx(
            4 * model.time(fast, 2, cluster)
        )

    def test_unknown_kind_without_default(self, cluster, halving_series):
        model = TabulatedModel({"k": halving_series})
        with pytest.raises(ModelError, match="no measurement series"):
            model.time(Task("t", work=1e9, kind="other"), 1, cluster)

    def test_default_series_fallback(self, cluster, halving_series):
        model = TabulatedModel({}, default=halving_series)
        t = Task("t", work=2e9, kind="whatever")
        assert model.time(t, 2, cluster) == pytest.approx(1.0)

    def test_needs_at_least_one_series(self):
        with pytest.raises(ModelError):
            TabulatedModel({})

    def test_table_per_kind(self, cluster):
        fast = MeasurementSeries([1, 8], [1.0, 0.125])
        flat = MeasurementSeries([1, 8], [1.0, 1.0])
        model = TabulatedModel({"fast": fast, "flat": flat})
        ptg = PTG(
            [
                Task("a", work=8e9, kind="fast"),
                Task("b", work=8e9, kind="flat"),
            ],
            [(0, 1)],
        )
        table = model.build_table(ptg, cluster)
        assert table[0, 7] == pytest.approx(1.0)  # scales
        assert table[1, 7] == pytest.approx(8.0)  # does not scale

    def test_table_matches_scalar(self, cluster, halving_series):
        model = TabulatedModel({}, default=halving_series)
        ptg = PTG([Task("a", work=3e9)], [])
        table = model.build_table(ptg, cluster)
        for p in range(1, 9):
            assert table[0, p - 1] == pytest.approx(
                model.time(ptg.task(0), p, cluster)
            )
