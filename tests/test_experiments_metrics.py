"""Unit tests for experiment statistics (means, CIs, relative makespans)."""

import numpy as np
import pytest

from repro.experiments import (
    mean_confidence_interval,
    relative_makespans,
)


class TestMeanCI:
    def test_basic(self):
        ci = mean_confidence_interval(np.array([1.0, 2.0, 3.0]))
        assert ci.mean == pytest.approx(2.0)
        assert ci.low < 2.0 < ci.high
        assert ci.n == 3

    def test_single_value_collapses(self):
        ci = mean_confidence_interval(np.array([5.0]))
        assert ci.mean == ci.low == ci.high == 5.0

    def test_zero_variance_collapses(self):
        ci = mean_confidence_interval(np.full(10, 3.0))
        assert ci.low == ci.high == 3.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean_confidence_interval(np.array([]))

    def test_infs_dropped(self):
        ci = mean_confidence_interval(
            np.array([1.0, np.inf, 3.0])
        )
        assert ci.n == 2
        assert ci.mean == pytest.approx(2.0)

    def test_all_inf_raises(self):
        with pytest.raises(ValueError):
            mean_confidence_interval(np.array([np.inf, np.inf]))

    def test_confidence_width_ordering(self):
        data = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        narrow = mean_confidence_interval(data, confidence=0.5)
        wide = mean_confidence_interval(data, confidence=0.99)
        assert wide.half_width > narrow.half_width

    def test_t_interval_value(self):
        """Check against a hand-computed t interval."""
        data = np.array([10.0, 12.0, 14.0, 16.0])
        ci = mean_confidence_interval(data)
        # mean 13, s = 2.582, sem = 1.291, t_{0.975,3} = 3.1824
        assert ci.mean == pytest.approx(13.0)
        assert ci.half_width == pytest.approx(4.109, abs=0.01)

    def test_more_samples_narrower_ci(self, rng):
        small = mean_confidence_interval(rng.normal(1.2, 0.1, 10))
        large = mean_confidence_interval(rng.normal(1.2, 0.1, 1000))
        assert large.half_width < small.half_width

    def test_str(self):
        ci = mean_confidence_interval(np.array([1.0, 2.0]))
        assert "n=2" in str(ci)


class TestRelativeMakespans:
    def test_ratio(self):
        r = relative_makespans(
            np.array([2.0, 3.0]), np.array([1.0, 2.0])
        )
        assert r.tolist() == [2.0, 1.5]

    def test_drops_bad_pairs(self):
        r = relative_makespans(
            np.array([2.0, np.inf, 3.0, -1.0]),
            np.array([1.0, 1.0, np.nan, 1.0]),
        )
        assert r.tolist() == [2.0]

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="mismatch"):
            relative_makespans(np.ones(2), np.ones(3))
