"""The reaction-policy ladder and the frontier rescheduler.

The contract under test: rung selection is a deterministic function of
the remaining evaluation budget (never wall-clock); every rung produces
a feasible frontier plan respecting release times, processor
availability and the alive set; and no rung ever returns a plan worse
than the incumbent it replaces.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.online import REACTION_RUNGS, ReactionPolicy, Rescheduler
from repro.platform import grelon
from repro.timemodels import SyntheticModel, TimeTable
from repro.workloads import generate_fft

PTG = generate_fft(8, rng=777)
CLUSTER = grelon()


@pytest.fixture(scope="module")
def table() -> TimeTable:
    return TimeTable.build(SyntheticModel(), PTG, CLUSTER)


def _full_frontier(table):
    """Every task still pending, all processors alive and idle."""
    V = PTG.num_tasks
    P = CLUSTER.num_processors
    return dict(
        now=0.0,
        frontier=np.arange(V, dtype=np.int64),
        release=np.zeros(V),
        allocation=np.ones(V, dtype=np.int64),
        alive=np.arange(P, dtype=np.int64),
        avail=np.zeros(P),
    )


# ----------------------------------------------------------------------
# policy / rung arithmetic


def test_policy_defaults_are_valid():
    policy = ReactionPolicy()
    assert policy.emts_cost() > policy.repair_cost() > 0


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(budget_evaluations=-1),
        dict(emts_mu=0),
        dict(emts_lam=0),
        dict(emts_generations=0),
        dict(heuristics=("nope",)),
        dict(repair_heuristic="nope"),
        dict(straggler_threshold=1.0),
    ],
)
def test_invalid_policies_raise(kwargs):
    with pytest.raises(ConfigurationError):
        ReactionPolicy(**kwargs)


def test_rung_selection_degrades_with_budget():
    policy = ReactionPolicy()
    assert policy.rung_for(policy.emts_cost()) == "emts"
    assert policy.rung_for(policy.emts_cost() - 1) == "repair"
    assert policy.rung_for(policy.repair_cost()) == "repair"
    assert policy.rung_for(policy.repair_cost() - 1) == "greedy"
    assert policy.rung_for(0) == "greedy"


def test_rungs_are_the_documented_ladder():
    assert REACTION_RUNGS == ("emts", "repair", "greedy")


# ----------------------------------------------------------------------
# the rescheduler


def test_empty_frontier_rejected(table):
    rs = Rescheduler(PTG, table)
    state = _full_frontier(table)
    state["frontier"] = np.empty(0, dtype=np.int64)
    state["release"] = np.empty(0)
    state["allocation"] = np.empty(0, dtype=np.int64)
    with pytest.raises(ConfigurationError, match="empty frontier"):
        rs.reschedule(**state, remaining_budget=100)


def test_no_alive_processors_rejected(table):
    rs = Rescheduler(PTG, table)
    state = _full_frontier(table)
    state["alive"] = np.empty(0, dtype=np.int64)
    state["avail"] = np.empty(0)
    with pytest.raises(ConfigurationError, match="alive"):
        rs.reschedule(**state, remaining_budget=100)


def test_exhausted_budget_falls_to_greedy(table):
    rs = Rescheduler(PTG, table)
    result = rs.reschedule(**_full_frontier(table), remaining_budget=0)
    assert result.rung == "greedy"
    assert result.evaluations == 1
    assert np.isfinite(result.completion)


def test_each_rung_never_worse_than_incumbent(table):
    """Monotonicity: repair and emts plans beat the greedy patch."""
    state = _full_frontier(table)
    policy = ReactionPolicy()
    greedy = Rescheduler(PTG, table, policy, rng=1).reschedule(
        **state, remaining_budget=0
    )
    repair = Rescheduler(PTG, table, policy, rng=1).reschedule(
        **state, remaining_budget=policy.emts_cost() - 1
    )
    emts = Rescheduler(PTG, table, policy, rng=1).reschedule(
        **state, remaining_budget=policy.budget_evaluations
    )
    assert repair.rung == "repair"
    assert emts.rung == "emts"
    assert repair.completion <= greedy.completion + 1e-9
    assert emts.completion <= greedy.completion + 1e-9
    assert emts.evaluations <= policy.emts_cost()
    assert repair.evaluations == policy.repair_cost()


def test_plan_is_feasible(table):
    state = _full_frontier(table)
    result = Rescheduler(PTG, table, rng=3).reschedule(
        **state, remaining_budget=ReactionPolicy().budget_evaluations
    )
    V = PTG.num_tasks
    assert result.frontier.size == V
    assert np.all(result.finish >= result.start)
    assert result.completion == pytest.approx(result.finish.max())
    alive = set(state["alive"].tolist())
    for i, procs in enumerate(result.proc_sets):
        assert len(procs) == result.allocation[i]
        assert set(procs.tolist()) <= alive
    # precedence within the frontier plan
    pos = {int(v): i for i, v in enumerate(result.frontier)}
    for i, v in enumerate(result.frontier):
        for u in PTG.predecessors(int(v)):
            if u in pos:
                assert result.start[i] >= result.finish[pos[u]] - 1e-9


def test_plan_respects_release_and_availability(table):
    """Dead processors are never used; release/avail bound every start."""
    V = PTG.num_tasks
    P = CLUSTER.num_processors
    alive = np.arange(3, P, dtype=np.int64)  # procs 0-2 are dead
    avail = np.full(alive.size, 5.0)
    avail[0] = 12.5  # first survivor busy until 12.5
    release = np.full(V, 7.0)
    result = Rescheduler(PTG, table, rng=4).reschedule(
        now=7.0,
        frontier=np.arange(V, dtype=np.int64),
        release=release,
        allocation=np.ones(V, dtype=np.int64),
        alive=alive,
        avail=avail,
        remaining_budget=0,
    )
    assert np.all(result.start >= 7.0 - 1e-9)
    used = set()
    for procs in result.proc_sets:
        used.update(procs.tolist())
    assert used <= set(alive.tolist())
    # anything placed on the busy survivor starts no earlier than 12.5
    for i, procs in enumerate(result.proc_sets):
        if int(alive[0]) in procs.tolist():
            assert result.start[i] >= 12.5 - 1e-9


def test_same_seed_reschedules_are_identical(table):
    state = _full_frontier(table)
    budget = ReactionPolicy().budget_evaluations
    a = Rescheduler(PTG, table, rng=9).reschedule(
        **state, remaining_budget=budget
    )
    b = Rescheduler(PTG, table, rng=9).reschedule(
        **state, remaining_budget=budget
    )
    assert a.rung == b.rung
    assert a.evaluations == b.evaluations
    assert a.completion == b.completion
    assert np.array_equal(a.allocation, b.allocation)
    assert np.array_equal(a.start, b.start)


def test_partial_frontier_subproblem(table):
    """Rescheduling a strict subset only replans those tasks."""
    V = PTG.num_tasks
    frontier = np.arange(V // 2, V, dtype=np.int64)
    release = np.full(frontier.size, 2.0)
    result = Rescheduler(PTG, table, rng=5).reschedule(
        now=2.0,
        frontier=frontier,
        release=release,
        allocation=np.full(frontier.size, 2, dtype=np.int64),
        alive=np.arange(CLUSTER.num_processors, dtype=np.int64),
        avail=np.zeros(CLUSTER.num_processors),
        remaining_budget=0,
    )
    assert np.array_equal(result.frontier, frontier)
    assert result.start.size == frontier.size
    assert np.all(result.start >= 2.0 - 1e-9)
