"""Unit tests for the PTG data model (repro.graph.ptg)."""

import numpy as np
import pytest

from repro.exceptions import CycleError, GraphError
from repro.graph import PTG, Task


class TestTask:
    def test_valid_task(self):
        t = Task("t", work=1e9, alpha=0.2, data_size=1e6, kind="matmul")
        assert t.name == "t"
        assert t.work == 1e9
        assert t.kind == "matmul"

    def test_defaults(self):
        t = Task("t", work=1.0)
        assert t.alpha == 0.0
        assert t.data_size == 0.0
        assert t.kind == "task"

    def test_empty_name_rejected(self):
        with pytest.raises(GraphError, match="non-empty"):
            Task("", work=1.0)

    @pytest.mark.parametrize("work", [0.0, -1.0, float("nan"), float("inf")])
    def test_invalid_work_rejected(self, work):
        with pytest.raises(GraphError, match="work"):
            Task("t", work=work)

    @pytest.mark.parametrize("alpha", [-0.01, 1.01, 5.0])
    def test_alpha_out_of_range_rejected(self, alpha):
        with pytest.raises(GraphError, match="alpha"):
            Task("t", work=1.0, alpha=alpha)

    def test_negative_data_size_rejected(self):
        with pytest.raises(GraphError, match="data_size"):
            Task("t", work=1.0, data_size=-1.0)

    def test_with_updates(self):
        t = Task("t", work=1.0, alpha=0.1)
        t2 = t.with_updates(work=2.0)
        assert t2.work == 2.0
        assert t2.alpha == 0.1
        assert t.work == 1.0  # original untouched

    def test_frozen(self):
        t = Task("t", work=1.0)
        with pytest.raises(AttributeError):
            t.work = 2.0


class TestPTGConstruction:
    def test_basic(self, diamond_ptg):
        assert diamond_ptg.num_tasks == 4
        assert diamond_ptg.num_edges == 4
        assert len(diamond_ptg) == 4

    def test_empty_rejected(self):
        with pytest.raises(GraphError, match="at least one task"):
            PTG([], [])

    def test_duplicate_names_rejected(self):
        tasks = [Task("x", work=1.0), Task("x", work=2.0)]
        with pytest.raises(GraphError, match="duplicate"):
            PTG(tasks, [])

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(GraphError, match="unknown node"):
            PTG([Task("a", work=1.0)], [(0, 1)])

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError, match="self-loop"):
            PTG([Task("a", work=1.0)], [(0, 0)])

    def test_cycle_rejected(self):
        tasks = [Task(n, work=1.0) for n in "abc"]
        with pytest.raises(CycleError, match="cycle"):
            PTG(tasks, [(0, 1), (1, 2), (2, 0)])

    def test_two_node_cycle_rejected(self):
        tasks = [Task(n, work=1.0) for n in "ab"]
        with pytest.raises(CycleError):
            PTG(tasks, [(0, 1), (1, 0)])

    def test_parallel_edges_deduplicated(self):
        tasks = [Task(n, work=1.0) for n in "ab"]
        g = PTG(tasks, [(0, 1), (0, 1)])
        assert g.num_edges == 1

    def test_non_task_node_rejected(self):
        with pytest.raises(GraphError, match="not a Task"):
            PTG(["not-a-task"], [])


class TestPTGAccessors:
    def test_index_and_task(self, diamond_ptg):
        i = diamond_ptg.index("c")
        assert diamond_ptg.task(i).name == "c"

    def test_index_unknown_raises(self, diamond_ptg):
        with pytest.raises(GraphError, match="no task named"):
            diamond_ptg.index("zzz")

    def test_contains(self, diamond_ptg):
        assert "a" in diamond_ptg
        assert "zzz" not in diamond_ptg

    def test_predecessors_successors(self, diamond_ptg):
        a = diamond_ptg.index("a")
        d = diamond_ptg.index("d")
        assert diamond_ptg.predecessors(a) == ()
        assert set(diamond_ptg.successors(a)) == {
            diamond_ptg.index("b"),
            diamond_ptg.index("c"),
        }
        assert diamond_ptg.successors(d) == ()
        assert len(diamond_ptg.predecessors(d)) == 2

    def test_sources_sinks(self, diamond_ptg):
        assert diamond_ptg.sources == (diamond_ptg.index("a"),)
        assert diamond_ptg.sinks == (diamond_ptg.index("d"),)

    def test_work_array(self, diamond_ptg):
        assert diamond_ptg.work.shape == (4,)
        assert diamond_ptg.work[diamond_ptg.index("c")] == 4e9

    def test_total_work(self, diamond_ptg):
        assert diamond_ptg.total_work == pytest.approx(8e9)

    def test_iteration_yields_tasks(self, diamond_ptg):
        names = [t.name for t in diamond_ptg]
        assert names == ["a", "b", "c", "d"]

    def test_repr(self, diamond_ptg):
        assert "diamond" in repr(diamond_ptg)
        assert "4" in repr(diamond_ptg)


class TestTopologicalOrder:
    def test_is_permutation(self, irregular_ptg):
        order = irregular_ptg.topological_order
        assert sorted(order) == list(range(irregular_ptg.num_tasks))

    def test_respects_edges(self, irregular_ptg):
        pos = np.argsort(irregular_ptg.topological_order)
        for u, v in irregular_ptg.edges:
            assert pos[u] < pos[v]

    def test_single_node(self, single_task_ptg):
        assert list(single_task_ptg.topological_order) == [0]


class TestEqualityAndHash:
    def test_equal_graphs(self):
        tasks = [Task("a", work=1.0), Task("b", work=2.0)]
        g1 = PTG(tasks, [(0, 1)], name="one")
        g2 = PTG(tasks, [(0, 1)], name="two")  # name not part of equality
        assert g1 == g2
        assert hash(g1) == hash(g2)

    def test_different_edges_unequal(self):
        tasks = [Task("a", work=1.0), Task("b", work=2.0)]
        assert PTG(tasks, [(0, 1)]) != PTG(tasks, [])

    def test_not_equal_to_other_types(self, diamond_ptg):
        assert diamond_ptg != "diamond"


class TestNetworkxRoundTrip:
    def test_roundtrip(self, diamond_ptg):
        g = diamond_ptg.to_networkx()
        back = PTG.from_networkx(g, name="diamond")
        assert back == diamond_ptg

    def test_missing_work_attribute(self):
        import networkx as nx

        g = nx.DiGraph()
        g.add_node(0)
        with pytest.raises(GraphError, match="work"):
            PTG.from_networkx(g)

    def test_node_count_preserved(self, fft8_ptg):
        assert fft8_ptg.to_networkx().number_of_nodes() == 39
        assert (
            fft8_ptg.to_networkx().number_of_edges()
            == fft8_ptg.num_edges
        )


class TestRelabeled:
    def test_relabeled_name_only(self, diamond_ptg):
        g2 = diamond_ptg.relabeled("other")
        assert g2.name == "other"
        assert g2 == diamond_ptg
        assert diamond_ptg.name == "diamond"
