"""Unit tests for EMTS's Eq. 1 mutation operator and the annealed
mutation count (paper Sections III-C/III-D, Figure 3)."""

import numpy as np
import pytest

from repro.core import (
    AllocationMutation,
    adjustment_pmf,
    mutation_count,
    sample_adjustments,
)
from repro.exceptions import ConfigurationError


class TestMutationCount:
    def test_paper_formula(self):
        # m = (1 - u/U) * fm * V, rounded
        assert mutation_count(V=100, u=0, U=5, fm=0.33) == 33
        assert mutation_count(V=100, u=1, U=5, fm=0.33) == 26
        assert mutation_count(V=100, u=4, U=5, fm=0.33) == 7

    def test_floor_at_one(self):
        assert mutation_count(V=100, u=5, U=5, fm=0.33) == 1
        assert mutation_count(V=3, u=2, U=3, fm=0.1) == 1

    def test_cap_at_V(self):
        assert mutation_count(V=2, u=0, U=5, fm=1.0) == 2

    def test_annealing_non_increasing(self):
        counts = [
            mutation_count(V=100, u=u, U=10, fm=0.33)
            for u in range(11)
        ]
        assert counts == sorted(counts, reverse=True)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(V=0, u=0, U=5, fm=0.33),
            dict(V=10, u=0, U=0, fm=0.33),
            dict(V=10, u=6, U=5, fm=0.33),
            dict(V=10, u=-1, U=5, fm=0.33),
            dict(V=10, u=0, U=5, fm=0.0),
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            mutation_count(**kwargs)


class TestSampleAdjustments:
    def test_never_zero(self, rng):
        c = sample_adjustments(10_000, rng)
        assert np.all(c != 0)

    def test_magnitude_at_least_one(self, rng):
        c = sample_adjustments(10_000, rng)
        assert np.all(np.abs(c) >= 1)

    def test_shrink_probability(self, rng):
        c = sample_adjustments(
            100_000, rng, shrink_probability=0.2
        )
        assert np.mean(c < 0) == pytest.approx(0.2, abs=0.01)

    def test_stretch_more_likely_than_shrink(self, rng):
        """Paper constraint: shrinking less likely than stretching."""
        c = sample_adjustments(50_000, rng, shrink_probability=0.2)
        assert np.sum(c > 0) > np.sum(c < 0)

    def test_small_steps_more_likely_than_large(self, rng):
        """Paper constraint: changing by few processors more likely
        than by many."""
        c = np.abs(sample_adjustments(100_000, rng))
        small = np.mean(c <= 3)
        large = np.mean(c >= 10)
        assert small > large * 3

    def test_sigma_controls_spread(self, rng):
        narrow = sample_adjustments(
            50_000, rng, sigma_stretch=1.0, sigma_shrink=1.0
        )
        wide = sample_adjustments(
            50_000, rng, sigma_stretch=10.0, sigma_shrink=10.0
        )
        assert np.abs(wide).mean() > np.abs(narrow).mean()


class TestAdjustmentPmf:
    def test_zero_has_no_mass(self):
        assert adjustment_pmf(np.array([0]))[0] == 0.0

    def test_sums_to_one(self):
        k = np.arange(-200, 201)
        assert adjustment_pmf(k).sum() == pytest.approx(1.0, abs=1e-9)

    def test_branch_masses(self):
        k = np.arange(-200, 201)
        pmf = adjustment_pmf(k, shrink_probability=0.2)
        assert pmf[k < 0].sum() == pytest.approx(0.2, abs=1e-9)
        assert pmf[k > 0].sum() == pytest.approx(0.8, abs=1e-9)

    def test_matches_empirical(self, rng):
        draws = sample_adjustments(200_000, rng)
        k = np.arange(-15, 16)
        pmf = adjustment_pmf(k)
        emp = np.array(
            [np.mean(draws == kk) for kk in k]
        )
        assert np.max(np.abs(pmf - emp)) < 0.01

    def test_asymmetry_figure3(self):
        """Figure 3's visual: positive side taller than negative side."""
        assert adjustment_pmf(np.array([1]))[0] > adjustment_pmf(
            np.array([-1])
        )[0]


class TestAllocationMutation:
    def test_clamps_to_platform(self, rng):
        op = AllocationMutation(P=8, fm=1.0)
        g = np.full(50, 8, dtype=np.int64)
        for gen in range(1, 6):
            child = op.mutate(g, rng, gen, 5)
            assert child.min() >= 1
            assert child.max() <= 8

    def test_changes_expected_positions_gen0(self, rng):
        op = AllocationMutation(P=1000, fm=0.33)
        g = np.full(100, 500, dtype=np.int64)
        child = op.mutate(g, rng, 0, 5)
        # at generation 0: 33 positions mutated, all by a nonzero step
        assert np.count_nonzero(child != g) == 33

    def test_final_generation_mutates_one(self, rng):
        op = AllocationMutation(P=1000, fm=0.33)
        g = np.full(100, 500, dtype=np.int64)
        child = op.mutate(g, rng, 5, 5)
        assert np.count_nonzero(child != g) == 1

    def test_parent_untouched(self, rng):
        op = AllocationMutation(P=8, fm=0.5)
        g = np.full(20, 4, dtype=np.int64)
        op.mutate(g, rng, 1, 5)
        assert np.all(g == 4)

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            AllocationMutation(P=0)
        with pytest.raises(ConfigurationError):
            AllocationMutation(P=8, fm=0.0)
        with pytest.raises(ConfigurationError):
            AllocationMutation(P=8, sigma_stretch=0.0)
        with pytest.raises(ConfigurationError):
            AllocationMutation(P=8, shrink_probability=2.0)

    def test_mostly_stretches(self, rng):
        op = AllocationMutation(P=100, fm=1.0, shrink_probability=0.2)
        g = np.full(1000, 50, dtype=np.int64)
        child = op.mutate(g, rng, 0, 5)
        grew = np.sum(child > g)
        shrank = np.sum(child < g)
        assert grew > 2 * shrank
