"""Tests for the structured trace stream (repro.obs.trace)."""

import json

import numpy as np
import pytest

from repro.exceptions import TraceError
from repro.obs import (
    EVENT_KINDS,
    TRACE_VERSION,
    TraceEvent,
    Tracer,
    canonical_events,
    read_trace,
    strip_timestamps,
    validate_event,
)


def write_small_trace(path):
    with Tracer(path) as tracer:
        tracer.begin("run_start", attrs={"algorithm": "emts5"})
        tracer.event("seed", attrs={"heuristics": ["mcpa"]})
        tracer.event(
            "generation", attrs={"generation": 1, "best": 2.0}
        )
        tracer.end("run_end", attrs={"makespan": 2.0})
    return path


class TestTracer:
    def test_span_ids_are_sequential(self, tmp_path):
        events = read_trace(write_small_trace(tmp_path / "t.jsonl"))
        assert [e.span for e in events] == [1, 2, 3, 4]

    def test_nesting_and_parents(self, tmp_path):
        events = read_trace(write_small_trace(tmp_path / "t.jsonl"))
        start, seed, gen, end = events
        assert start.parent is None
        # in-span events parent to the open span ...
        assert seed.parent == start.span
        assert gen.parent == start.span
        # ... and the closing event parents to the span it closes
        assert end.parent == start.span
        assert end.dur is not None and end.dur >= 0

    def test_timestamps_are_monotonic(self, tmp_path):
        events = read_trace(write_small_trace(tmp_path / "t.jsonl"))
        times = [e.t for e in events]
        assert times == sorted(times)
        assert all(t >= 0 for t in times)

    def test_unknown_kind_rejected(self, tmp_path):
        with Tracer(tmp_path / "t.jsonl") as tracer:
            with pytest.raises(TraceError, match="unknown trace event"):
                tracer.event("explosion")

    def test_end_without_open_span(self, tmp_path):
        with Tracer(tmp_path / "t.jsonl") as tracer:
            with pytest.raises(TraceError, match="no open span"):
                tracer.end("run_end")

    def test_write_after_close(self, tmp_path):
        tracer = Tracer(tmp_path / "t.jsonl")
        tracer.close()
        assert tracer.closed
        tracer.close()  # idempotent
        with pytest.raises(TraceError, match="already closed"):
            tracer.event("seed")

    def test_unwritable_path(self, tmp_path):
        target = tmp_path / "dir-not-file"
        target.mkdir()
        with pytest.raises(TraceError, match="cannot open"):
            Tracer(target)

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "down" / "t.jsonl"
        write_small_trace(path)
        assert len(read_trace(path)) == 4

    def test_numpy_attrs_serialize(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with Tracer(path) as tracer:
            tracer.event(
                "seed",
                attrs={
                    "makespan": np.float64(2.5),
                    "tasks": np.int64(20),
                },
            )
        event = read_trace(path)[0]
        assert event.attrs == {"makespan": 2.5, "tasks": 20}

    def test_unserializable_attr_is_contextual(self, tmp_path):
        with Tracer(tmp_path / "t.jsonl") as tracer:
            with pytest.raises(TraceError, match="cannot write"):
                tracer.event("seed", attrs={"bad": object()})

    def test_each_event_is_flushed(self, tmp_path):
        """Crash-only contract: the file is a valid prefix at any time."""
        path = tmp_path / "t.jsonl"
        tracer = Tracer(path)
        tracer.begin("run_start")
        tracer.event("generation", attrs={"generation": 1})
        # file readable *before* close — as after a crash
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        for lineno, line in enumerate(lines, start=1):
            validate_event(json.loads(line), line=lineno, path=path)
        tracer.close()


class TestValidation:
    def good(self):
        return {"v": TRACE_VERSION, "kind": "seed", "span": 1,
                "parent": None, "t": 0.5}

    def test_valid_event_passes(self):
        validate_event(self.good())

    @pytest.mark.parametrize(
        "patch, message",
        [
            ({"v": 99}, "unsupported trace version"),
            ({"v": None}, "unsupported trace version"),
            ({"kind": "explosion"}, "unknown event kind"),
            ({"span": 0}, "span must be"),
            ({"span": "1"}, "span must be"),
            ({"span": True}, "span must be"),
            ({"parent": -1}, "parent must be"),
            ({"t": -0.1}, "t must be"),
            ({"t": None}, "t must be"),
            ({"dur": -1.0}, "dur must be"),
            ({"attrs": [1, 2]}, "attrs must be"),
        ],
    )
    def test_schema_violations(self, patch, message):
        event = {**self.good(), **patch}
        with pytest.raises(TraceError, match=message):
            validate_event(event)

    def test_non_object_rejected(self):
        with pytest.raises(TraceError, match="JSON object"):
            validate_event([1, 2, 3])

    def test_error_names_file_and_line(self, tmp_path):
        with pytest.raises(TraceError, match=r"bad\.jsonl, line 7"):
            validate_event(
                {"v": 99}, line=7, path=tmp_path / "bad.jsonl"
            )

    def test_every_emitted_kind_is_documented(self, tmp_path):
        events = read_trace(write_small_trace(tmp_path / "t.jsonl"))
        assert {e.kind for e in events} <= set(EVENT_KINDS)


class TestReadTrace:
    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError, match="cannot read"):
            read_trace(tmp_path / "nope.jsonl")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(TraceError, match="no events"):
            read_trace(path)

    def test_truncated_final_line(self, tmp_path):
        """A torn write (no trailing newline) is named as truncation."""
        path = write_small_trace(tmp_path / "t.jsonl")
        text = path.read_text()
        path.write_text(text[:-10])
        with pytest.raises(TraceError, match="truncated"):
            read_trace(path)

    def test_corrupt_line_is_contextual(self, tmp_path):
        path = write_small_trace(tmp_path / "t.jsonl")
        lines = path.read_text().splitlines()
        lines[2] = '{"not": "closed"'
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TraceError, match="line 3: not valid JSON"):
            read_trace(path)

    def test_blank_line_is_contextual(self, tmp_path):
        path = write_small_trace(tmp_path / "t.jsonl")
        lines = path.read_text().splitlines()
        lines.insert(1, "")
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TraceError, match="line 2: blank line"):
            read_trace(path)

    def test_schema_violation_is_contextual(self, tmp_path):
        path = write_small_trace(tmp_path / "t.jsonl")
        lines = path.read_text().splitlines()
        bad = json.loads(lines[1])
        bad["kind"] = "explosion"
        lines[1] = json.dumps(bad)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(
            TraceError, match="line 2.*unknown event kind"
        ):
            read_trace(path)

    def test_round_trip(self, tmp_path):
        path = write_small_trace(tmp_path / "t.jsonl")
        events = read_trace(path)
        assert all(isinstance(e, TraceEvent) for e in events)
        assert events[0].kind == "run_start"
        assert events[0].attrs["algorithm"] == "emts5"
        for event in events:
            validate_event(event.to_dict())
            assert TraceEvent.from_dict(event.to_dict()) == event


class TestDeterminism:
    def test_strip_removes_wall_clock_recursively(self):
        event = {
            "v": 1, "kind": "run_end", "span": 4, "parent": 1,
            "t": 1.25, "dur": 1.2,
            "attrs": {
                "makespan": 21.8,
                "phase_seconds": {"mutation": 0.1},
                "eval_stats": {
                    "evaluations": 130,
                    "wall_seconds": 0.002,
                    "nested": [{"evals_per_sec": 1e4, "n": 2}],
                },
            },
        }
        stripped = strip_timestamps(event)
        assert "t" not in stripped and "dur" not in stripped
        attrs = stripped["attrs"]
        assert "phase_seconds" not in attrs
        assert attrs["makespan"] == 21.8
        assert attrs["eval_stats"] == {
            "evaluations": 130,
            "nested": [{"n": 2}],
        }

    def test_same_sequence_same_canonical_events(self, tmp_path):
        a = canonical_events(write_small_trace(tmp_path / "a.jsonl"))
        b = canonical_events(write_small_trace(tmp_path / "b.jsonl"))
        assert a == b
        # bit-identical once serialized, the acceptance criterion
        assert json.dumps(a, sort_keys=True) == json.dumps(
            b, sort_keys=True
        )


class TestTraceContext:
    def test_ids_are_deterministic(self):
        from repro.obs import derive_span_id, derive_trace_id

        a = derive_trace_id("request", "fingerprint")
        b = derive_trace_id("request", "fingerprint")
        assert a == b and len(a) == 32
        assert derive_trace_id("request", "other") != a
        span = derive_span_id(a, "request")
        assert span == derive_span_id(a, "request")
        assert len(span) == 16

    def test_child_contexts_chain_parents(self):
        from repro.obs import TraceContext, derive_trace_id

        tid = derive_trace_id("t")
        root = TraceContext(trace_id=tid, span_id="ab" * 8)
        child = root.child("attempt-1")
        assert child.trace_id == tid
        assert child.parent_id == root.span_id
        assert child.span_id != root.span_id
        # derivation is name-sensitive and reproducible
        assert root.child("attempt-1") == child
        assert root.child("attempt-2") != child

    def test_dict_round_trip(self):
        from repro.obs import TraceContext

        ctx = TraceContext(
            trace_id="ab" * 16, span_id="cd" * 8, parent_id="ef" * 8
        )
        assert TraceContext.from_dict(ctx.to_dict()) == ctx

    def test_use_context_scopes_current_context(self):
        from repro.obs import TraceContext, current_context, use_context

        assert current_context() is None
        ctx = TraceContext(trace_id="ab" * 16, span_id="cd" * 8)
        with use_context(ctx):
            assert current_context() is ctx
        assert current_context() is None

    def test_tracer_mirrors_context_onto_events(self, tmp_path):
        from repro.obs import TraceContext, derive_trace_id

        tid = derive_trace_id("t")
        ctx = TraceContext(trace_id=tid, span_id="ab" * 8)
        path = tmp_path / "t.jsonl"
        with Tracer(path, context=ctx) as tracer:
            tracer.begin("run_start", attrs={})
            tracer.event("generation", attrs={"generation": 1})
            tracer.end("run_end", attrs={})
        events = read_trace(path)
        assert all(e.ctx is not None for e in events)
        assert all(e.ctx["trace"] == tid for e in events)
        # root spans in the shard parent under the context span
        assert events[0].ctx["parent"] == ctx.span_id
        # nesting mirrors the file-local parent chain
        assert events[1].ctx["parent"] == events[0].ctx["span"]

    def test_explicit_ctx_overrides_the_mirror(self, tmp_path):
        from repro.obs import TraceContext, derive_trace_id

        tid = derive_trace_id("t")
        ctx = TraceContext(trace_id=tid, span_id="ab" * 8)
        path = tmp_path / "t.jsonl"
        with Tracer(path) as tracer:
            tracer.event("request", attrs={"status": 202}, ctx=ctx)
        (event,) = read_trace(path)
        assert event.ctx == {
            "trace": tid,
            "span": ctx.span_id,
            "parent": None,
        }

    def test_contextless_tracer_writes_no_ctx(self, tmp_path):
        events = read_trace(write_small_trace(tmp_path / "t.jsonl"))
        assert all(e.ctx is None for e in events)


class TestReadTracePrefix:
    def test_intact_file_is_not_truncated(self, tmp_path):
        from repro.obs import read_trace_prefix

        path = write_small_trace(tmp_path / "t.jsonl")
        events, truncated = read_trace_prefix(path)
        assert truncated is False
        assert [e.kind for e in events] == [
            "run_start",
            "seed",
            "generation",
            "run_end",
        ]

    def test_torn_tail_dropped_and_flagged(self, tmp_path):
        from repro.obs import read_trace_prefix

        path = write_small_trace(tmp_path / "t.jsonl")
        path.write_bytes(path.read_bytes()[:-9])
        events, truncated = read_trace_prefix(path)
        assert truncated is True
        assert [e.kind for e in events] == [
            "run_start",
            "seed",
            "generation",
        ]

    def test_mid_file_corruption_still_raises(self, tmp_path):
        from repro.obs import read_trace_prefix

        path = write_small_trace(tmp_path / "t.jsonl")
        lines = path.read_text().splitlines()
        lines[1] = "{not json"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TraceError, match="not valid JSON"):
            read_trace_prefix(path)


class TestAppendMode:
    def test_append_resumes_span_numbering(self, tmp_path):
        path = tmp_path / "server.jsonl"
        with Tracer(path, append=True) as tracer:
            tracer.event("request", attrs={"status": 202})
            tracer.event("request", attrs={"status": 202})
        # a second daemon generation appends to the same shard
        with Tracer(path, append=True) as tracer:
            assert tracer.next_span == 3
            tracer.event("drain", attrs={})
        spans = [e.span for e in read_trace(path)]
        assert spans == [1, 2, 3]

    def test_append_seals_a_torn_tail(self, tmp_path):
        path = tmp_path / "server.jsonl"
        with Tracer(path, append=True) as tracer:
            tracer.event("request", attrs={"status": 202})
            tracer.event("request", attrs={"status": 429})
        path.write_bytes(path.read_bytes()[:-4])  # kill -9 mid-line
        with Tracer(path, append=True) as tracer:
            tracer.event("drain", attrs={})
        events = read_trace(path)  # strict reader: file must be whole
        assert [e.kind for e in events] == ["request", "drain"]
        assert [e.span for e in events] == [1, 2]

    def test_depth_tracks_open_spans(self, tmp_path):
        with Tracer(tmp_path / "t.jsonl") as tracer:
            assert tracer.depth == 0
            tracer.begin("run_start", attrs={})
            assert tracer.depth == 1
            tracer.begin("service_run_start", attrs={})
            assert tracer.depth == 2
            tracer.end("service_run_end", attrs={})
            tracer.end("run_end", attrs={})
            assert tracer.depth == 0
