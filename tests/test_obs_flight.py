"""Tests for the crash flight recorder (repro.obs.flight)."""

from __future__ import annotations

import json
import os
import threading

import pytest

from repro.obs import (
    FlightRecorder,
    arm_crash_dump,
    flight_recorder,
    read_flight_dump,
    reset_flight_recorder,
)
from repro.obs.flight import DEFAULT_CAPACITY, _crash_dump_hook
from repro.util.crash import reset_crash_hooks


@pytest.fixture(autouse=True)
def clean_recorder():
    """Leave the process-wide ring and hooks as we found them."""
    reset_flight_recorder()
    reset_crash_hooks()
    yield
    reset_flight_recorder()
    reset_crash_hooks()


class TestRing:
    def test_capacity_bounds_the_ring(self):
        ring = FlightRecorder(capacity=4)
        for i in range(10):
            ring.record("test", f"event {i}")
        events = ring.snapshot()
        assert len(events) == 4
        # oldest fell off; sequence numbers keep counting
        assert [e["seq"] for e in events] == [7, 8, 9, 10]
        assert events[-1]["message"] == "event 9"

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            FlightRecorder(capacity=0)

    def test_data_kwargs_recorded(self):
        ring = FlightRecorder()
        ring.record("worker", "job started", job_id="j-1", attempt=2)
        (event,) = ring.snapshot()
        assert event["category"] == "worker"
        assert event["data"] == {"job_id": "j-1", "attempt": 2}
        assert event["thread"] == threading.current_thread().name

    def test_process_wide_ring_is_shared(self):
        from repro.obs.flight import record

        record("test", "breadcrumb")
        assert len(flight_recorder()) == 1
        reset_flight_recorder()
        assert len(flight_recorder()) == 0

    def test_default_capacity_sane(self):
        assert FlightRecorder().capacity == DEFAULT_CAPACITY


class TestDump:
    def test_dump_read_round_trip(self, tmp_path):
        ring = FlightRecorder()
        ring.record("server", "daemon starting", recovered=3)
        ring.record("worker", "job started")
        path = ring.dump(tmp_path / "flight.json", reason="test")
        doc = read_flight_dump(path)
        assert doc["reason"] == "test"
        assert doc["pid"] == os.getpid()
        assert [e["message"] for e in doc["events"]] == [
            "daemon starting",
            "job started",
        ]

    def test_dump_creates_parent_dirs(self, tmp_path):
        ring = FlightRecorder()
        ring.record("t", "m")
        path = ring.dump(tmp_path / "a" / "b" / "f.json", reason="r")
        assert path.exists()

    def test_unserializable_data_stringified_not_fatal(self, tmp_path):
        ring = FlightRecorder()
        ring.record("t", "m", weird=object())
        doc = read_flight_dump(ring.dump(tmp_path / "f.json", "r"))
        assert "object object" in doc["events"][0]["data"]["weird"]

    def test_reader_rejects_wrong_format(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "nope", "v": 1}))
        with pytest.raises(ValueError, match="not a flight dump"):
            read_flight_dump(path)

    def test_reader_rejects_out_of_order_events(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(
            json.dumps(
                {
                    "format": "repro-flight",
                    "v": 1,
                    "events": [{"seq": 2}, {"seq": 1}],
                }
            )
        )
        with pytest.raises(ValueError, match="sequence"):
            read_flight_dump(path)


class TestCrashDump:
    def test_armed_directories_receive_dumps(self, tmp_path):
        from repro.obs.flight import record

        arm_crash_dump(tmp_path / "flight")
        record("server", "about to die")
        # exercise the hook the crash point would run pre-``os._exit``
        _crash_dump_hook("test-point")
        (dump,) = sorted((tmp_path / "flight").glob("flight-*.json"))
        doc = read_flight_dump(dump)
        assert doc["reason"] == "crash-point:test-point"
        assert f"-{os.getpid()}.json" in dump.name
        assert doc["events"][-1]["message"] == "about to die"

    def test_arming_is_idempotent_per_directory(self, tmp_path):
        from repro.obs import flight

        arm_crash_dump(tmp_path)
        arm_crash_dump(tmp_path)
        assert flight._armed_dirs.count(tmp_path) == 1
