"""Request parsing, fingerprints and cache keys of the service protocol."""

from __future__ import annotations

import pytest

from repro._rng import DEFAULT_SEED
from repro.exceptions import ServiceError
from repro.graph import ptg_to_dict
from repro.service import (
    parse_request,
    problem_digest,
    result_key,
)
from repro.workloads import generate_fft


@pytest.fixture
def request_doc():
    return {
        "ptg": ptg_to_dict(generate_fft(4, rng=7)),
        "platform": "chti",
        "model": "amdahl",
        "algorithm": "emts5",
        "seed": 7,
    }


class TestParseRequest:
    def test_roundtrip(self, request_doc):
        req = parse_request(request_doc)
        assert req.platform == "chti"
        assert req.model == "amdahl"
        assert req.algorithm == "emts5"
        assert req.seed == 7
        assert req.tenant == "default"
        assert req.priority == 0

    def test_defaults(self, request_doc):
        doc = {"ptg": request_doc["ptg"]}
        req = parse_request(doc)
        assert req.platform == "chti"
        assert req.algorithm == "emts5"
        # seed null resolves deterministically, so it is cacheable
        assert req.seed == DEFAULT_SEED

    def test_seed_null_equals_default_seed(self, request_doc):
        explicit = dict(request_doc, seed=DEFAULT_SEED)
        implicit = dict(request_doc, seed=None)
        assert result_key(parse_request(explicit)) == result_key(
            parse_request(implicit)
        )

    @pytest.mark.parametrize(
        "patch",
        [
            {"platform": "nonsuch"},
            {"model": "nonsuch"},
            {"algorithm": "mcpa"},  # heuristics are offline-only
            {"seed": -1},
            {"seed": 1.5},
            {"seed": True},
            {"generations": 0},
            {"max_wall_time": 0},
            {"max_wall_time": "fast"},
            {"priority": 10},
            {"priority": -1},
            {"tenant": ""},
            {"tenant": 42},
        ],
    )
    def test_rejects_bad_fields(self, request_doc, patch):
        doc = dict(request_doc, **patch)
        with pytest.raises(ServiceError) as err:
            parse_request(doc)
        assert err.value.status == 400

    def test_rejects_non_object(self):
        with pytest.raises(ServiceError):
            parse_request([1, 2, 3])

    def test_rejects_missing_ptg(self):
        with pytest.raises(ServiceError):
            parse_request({"platform": "chti"})

    def test_rejects_wrong_ptg_format(self, request_doc):
        doc = dict(request_doc, ptg={"format": "not-a-ptg"})
        with pytest.raises(ServiceError):
            parse_request(doc)


class TestFingerprints:
    def test_problem_digest_ignores_algorithm_and_seed(self, request_doc):
        a = parse_request(dict(request_doc, seed=1, algorithm="emts5"))
        b = parse_request(dict(request_doc, seed=2, algorithm="emts10"))
        assert problem_digest(a) == problem_digest(b)

    def test_problem_digest_tracks_problem(self, request_doc):
        base = parse_request(request_doc)
        other_platform = parse_request(
            dict(request_doc, platform="grelon")
        )
        other_model = parse_request(dict(request_doc, model="downey"))
        other_ptg = parse_request(
            dict(request_doc, ptg=ptg_to_dict(generate_fft(8, rng=7)))
        )
        digests = {
            problem_digest(r)
            for r in (base, other_platform, other_model, other_ptg)
        }
        assert len(digests) == 4

    def test_result_key_tracks_answer_inputs(self, request_doc):
        base = parse_request(request_doc)
        variants = [
            parse_request(dict(request_doc, seed=8)),
            parse_request(dict(request_doc, algorithm="emts10")),
            parse_request(dict(request_doc, generations=3)),
            parse_request(dict(request_doc, max_wall_time=9.0)),
        ]
        keys = {result_key(r) for r in [base, *variants]}
        assert len(keys) == 5

    def test_result_key_ignores_queueing_metadata(self, request_doc):
        a = parse_request(dict(request_doc, tenant="alice", priority=3))
        b = parse_request(dict(request_doc, tenant="bob", priority=0))
        assert result_key(a) == result_key(b)
