"""The two cache tiers: accounting, eviction and bit-identity.

The load-bearing test here is :class:`TestOfflineBitIdentity`: a warm
service worker (prepared problem reused, persistent fitness-cache shard
populated by earlier runs) must produce *exactly* the document a cold
offline run produces — caching may change speed, never results.
"""

from __future__ import annotations

import json

import pytest

from repro.core import emts5
from repro.graph import ptg_to_dict
from repro.mapping import schedule_to_dict
from repro.platform import by_name
from repro.service import ResultCache, WarmCache, parse_request
from repro.service.jobs import JobStore
from repro.service.worker import run_request
from repro.timemodels import TimeTable
from repro.workloads import generate_fft


def make_doc(size=4, seed=7, **extra):
    doc = {
        "ptg": ptg_to_dict(generate_fft(size, rng=7)),
        "platform": "chti",
        "model": "amdahl",
        "algorithm": "emts5",
        "seed": seed,
    }
    doc.update(extra)
    return doc


class TestWarmCache:
    def test_hit_miss_accounting(self):
        warm = WarmCache(max_problems=4)
        req = parse_request(make_doc())
        p1 = warm.get_or_prepare(req)
        assert (warm.stats.hits, warm.stats.misses) == (0, 1)
        p2 = warm.get_or_prepare(req)
        assert p2 is p1  # same prepared table/kernel object
        assert (warm.stats.hits, warm.stats.misses) == (1, 1)

    def test_different_problems_do_not_collide(self):
        warm = WarmCache(max_problems=4)
        a = warm.get_or_prepare(parse_request(make_doc(size=4)))
        b = warm.get_or_prepare(parse_request(make_doc(size=8)))
        assert a is not b
        assert warm.stats.misses == 2

    def test_lru_eviction(self):
        warm = WarmCache(max_problems=2)
        r4 = parse_request(make_doc(size=4))
        r8 = parse_request(make_doc(size=8))
        r16 = parse_request(make_doc(size=16))
        p4 = warm.get_or_prepare(r4)
        warm.get_or_prepare(r8)
        warm.get_or_prepare(r4)  # refresh 4 so 8 is the LRU victim
        warm.get_or_prepare(r16)
        assert warm.stats.evictions == 1
        assert len(warm) == 2
        assert warm.get_or_prepare(r4) is p4  # still resident
        warm.get_or_prepare(r8)  # evicted: prepared again
        assert warm.stats.misses == 4

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            WarmCache(max_problems=0)


class TestResultCache:
    def test_hit_miss_eviction_accounting(self):
        cache = ResultCache(max_entries=2)
        assert cache.get("a") is None
        cache.put("a", {"v": 1})
        cache.put("b", {"v": 2})
        assert cache.get("a") == {"v": 1}
        cache.put("c", {"v": 3})  # evicts b (a was refreshed)
        assert cache.get("b") is None
        assert cache.get("a") == {"v": 1}
        snap = cache.snapshot()
        assert snap["hits"] == 2
        assert snap["misses"] == 2
        assert snap["evictions"] == 1
        assert snap["entries"] == 2

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            ResultCache(max_entries=0)


class TestOfflineBitIdentity:
    def test_warm_run_matches_cold_and_offline(self):
        """Cold run, warm re-run and the offline stack all agree bitwise."""
        doc = make_doc()
        req = parse_request(doc)
        warm = WarmCache()
        store = JobStore(None)

        cold = run_request(store.create(req), warm)
        # second run on the same worker: prepared problem reused and
        # every fitness value served from the persistent shard
        assert warm.stats.hits == 0
        second = run_request(store.create(req), warm)
        assert warm.stats.hits == 1
        assert json.dumps(cold, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )

        # the exact computation the `repro-emts schedule` CLI performs
        ptg = generate_fft(4, rng=7)
        cluster = by_name("chti")
        from repro.cli import _make_model

        table = TimeTable.build(_make_model("amdahl"), ptg, cluster)
        offline = emts5().schedule(ptg, cluster, table, rng=7)
        assert cold["makespan"] == offline.makespan
        assert cold["evaluations"] == offline.log.total_evaluations
        assert cold["seed_makespans"] == {
            k: float(v) for k, v in offline.seed_makespans.items()
        }
        assert json.dumps(
            cold["schedule"], sort_keys=True
        ) == json.dumps(
            schedule_to_dict(offline.schedule), sort_keys=True
        )

    def test_generation_budget_respected(self):
        req = parse_request(make_doc(generations=2))
        result = run_request(JobStore(None).create(req), WarmCache())
        # generation 0 + 2 evolved generations
        assert result["generations"] == 3
        assert result["interrupted"] is False
