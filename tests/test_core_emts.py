"""Integration-grade unit tests for the EMTS algorithm itself."""

import numpy as np
import pytest

from repro.core import EMTS, EMTSConfig, emts5, emts10
from repro.mapping import makespan_of
from repro.platform import Cluster, chti, grelon
from repro.simulator import simulate
from repro.timemodels import AmdahlModel, SyntheticModel, TimeTable
from repro.workloads import generate_fft


@pytest.fixture(scope="module")
def problem():
    """One shared scheduling problem: FFT-8 on Grelon under Model 2."""
    ptg = generate_fft(8, rng=101)
    cluster = grelon()
    table = TimeTable.build(SyntheticModel(), ptg, cluster)
    return ptg, cluster, table


class TestEMTSBasics:
    def test_result_structure(self, problem):
        ptg, cluster, table = problem
        result = emts5().schedule(ptg, cluster, table, rng=1)
        assert result.allocation.shape == (39,)
        assert result.makespan > 0
        assert set(result.seed_makespans) == {
            "mcpa",
            "hcpa",
            "delta-critical",
        }
        assert result.evaluations == 5 + 5 * 25
        assert result.elapsed_seconds > 0

    def test_never_worse_than_seeds(self, problem):
        """The plus-strategy guarantee: EMTS cannot lose to its seeds."""
        ptg, cluster, table = problem
        for seed in range(5):
            result = emts5().schedule(ptg, cluster, table, rng=seed)
            assert result.makespan <= min(
                result.seed_makespans.values()
            ) + 1e-9

    def test_improvement_accessor(self, problem):
        ptg, cluster, table = problem
        result = emts5().schedule(ptg, cluster, table, rng=2)
        assert result.improvement_over("mcpa") >= 1.0
        with pytest.raises(KeyError, match="no seed named"):
            result.improvement_over("unknown")

    def test_schedule_is_valid_and_simulates(self, problem):
        ptg, cluster, table = problem
        result = emts5().schedule(ptg, cluster, table, rng=3)
        result.schedule.validate(
            times=table.times_for(result.allocation)
        )
        sim = simulate(result.schedule, table)
        assert sim.makespan == pytest.approx(result.makespan)

    def test_fitness_equals_mapped_makespan(self, problem):
        ptg, cluster, table = problem
        result = emts5().schedule(ptg, cluster, table, rng=4)
        assert makespan_of(
            ptg, table, result.allocation
        ) == pytest.approx(result.makespan)

    def test_deterministic_given_seed(self, problem):
        ptg, cluster, table = problem
        r1 = emts5().schedule(ptg, cluster, table, rng=42)
        r2 = emts5().schedule(ptg, cluster, table, rng=42)
        assert r1.makespan == r2.makespan
        assert np.array_equal(r1.allocation, r2.allocation)

    def test_mismatched_table_rejected(self, problem):
        from repro.exceptions import ConfigurationError

        ptg, cluster, table = problem
        other_ptg = generate_fft(4, rng=999)
        with pytest.raises(ConfigurationError, match="built for PTG"):
            emts5().schedule(other_ptg, cluster, table, rng=1)
        with pytest.raises(
            ConfigurationError, match="built for cluster"
        ):
            emts5().schedule(ptg, chti(), table, rng=1)

    def test_accepts_model_or_table(self, problem):
        ptg, cluster, table = problem
        r_table = emts5().schedule(ptg, cluster, table, rng=5)
        r_model = emts5().schedule(
            ptg, cluster, SyntheticModel(), rng=5
        )
        assert r_table.makespan == pytest.approx(r_model.makespan)

    def test_monotone_convergence_log(self, problem):
        ptg, cluster, table = problem
        result = emts5().schedule(ptg, cluster, table, rng=6)
        assert result.log.is_monotone()
        assert result.log.generations == 6  # init + 5


class TestEMTSVariants:
    def test_emts10_at_least_as_good_with_shared_seed(self, problem):
        """More budget cannot hurt (paper: EMTS10 >= EMTS5)."""
        ptg, cluster, table = problem
        r5 = emts5().schedule(ptg, cluster, table, rng=7)
        r10 = emts10().schedule(ptg, cluster, table, rng=7)
        # different population sizes mean different trajectories, but
        # over several seeds EMTS10 dominates on average
        assert r10.makespan <= r5.makespan * 1.05

    def test_emts10_evaluations(self, problem):
        ptg, cluster, table = problem
        result = emts10().schedule(ptg, cluster, table, rng=8)
        assert result.evaluations == 10 + 10 * 100

    def test_overrides(self):
        e = emts5(generations=2, name="quick")
        assert e.config.generations == 2
        assert e.name == "quick"

    @pytest.mark.parametrize("seed", [9, 19, 29])
    def test_rejection_strategy_same_result(self, problem, seed):
        """The mapper rejection is an optimization only: with the abort
        bound at the worst current parent, the run is bit-for-bit
        identical to the unrejected run (same makespan, same winning
        allocation)."""
        ptg, cluster, table = problem
        plain = emts5().schedule(ptg, cluster, table, rng=seed)
        fast = emts5(use_rejection=True).schedule(
            ptg, cluster, table, rng=seed
        )
        assert fast.makespan == pytest.approx(plain.makespan)
        assert np.array_equal(fast.allocation, plain.allocation)

    def test_comma_selection_variant_runs(self, problem):
        ptg, cluster, table = problem
        result = EMTS(
            EMTSConfig(mu=5, lam=25, generations=3, selection="comma")
        ).schedule(ptg, cluster, table, rng=10)
        assert result.makespan > 0

    def test_time_budget_stops_early(self, problem):
        ptg, cluster, table = problem
        config = EMTSConfig(
            mu=5,
            lam=25,
            generations=100_000,
            time_budget_seconds=0.15,
        )
        result = EMTS(config).schedule(ptg, cluster, table, rng=11)
        assert result.elapsed_seconds < 5.0
        assert result.log.generations < 100_000


class TestModelIndependence:
    """EMTS works unchanged with every model family (the paper's thesis)."""

    @pytest.mark.parametrize(
        "model_factory",
        [
            AmdahlModel,
            SyntheticModel,
            lambda: __import__(
                "repro.timemodels", fromlist=["DowneyModel"]
            ).DowneyModel(),
            lambda: __import__(
                "repro.timemodels", fromlist=["PdgemmLikeModel"]
            ).PdgemmLikeModel(),
        ],
    )
    def test_runs_under_model(self, model_factory):
        ptg = generate_fft(4, rng=55)
        cluster = Cluster("c", num_processors=16, speed_gflops=2.0)
        result = emts5(generations=2).schedule(
            ptg, cluster, model_factory(), rng=55
        )
        result.schedule.validate()
        assert result.makespan <= min(
            result.seed_makespans.values()
        ) + 1e-9

    def test_small_cluster(self):
        ptg = generate_fft(4, rng=56)
        cluster = Cluster("duo", num_processors=2, speed_gflops=1.0)
        result = emts5().schedule(ptg, cluster, AmdahlModel(), rng=56)
        assert result.allocation.max() <= 2

    def test_single_processor_cluster(self):
        ptg = generate_fft(2, rng=57)
        cluster = Cluster("uni", num_processors=1, speed_gflops=1.0)
        result = emts5().schedule(ptg, cluster, AmdahlModel(), rng=57)
        assert np.all(result.allocation == 1)
