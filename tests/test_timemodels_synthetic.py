"""Unit tests for Model 2 (synthetic non-monotone) — Algorithm 1."""

import numpy as np
import pytest

from repro.graph import Task
from repro.platform import Cluster
from repro.timemodels import (
    AmdahlModel,
    SyntheticModel,
    TimeTable,
    penalty_factors,
)


@pytest.fixture
def cluster():
    return Cluster("c", num_processors=32, speed_gflops=1.0)


class TestPenaltyFactors:
    def test_sequential_never_penalized(self):
        f = penalty_factors(32)
        assert f[0] == 1.0

    def test_odd_counts_penalized_13(self):
        f = penalty_factors(32)
        for p in (3, 5, 7, 9, 31):
            assert f[p - 1] == pytest.approx(1.3)

    def test_even_squares_penalized_11_algorithm1(self):
        f = penalty_factors(32)
        for p in (4, 16):
            assert f[p - 1] == pytest.approx(1.1)

    def test_even_nonsquares_clean_algorithm1(self):
        f = penalty_factors(32)
        for p in (2, 6, 8, 10, 24, 32):
            assert f[p - 1] == 1.0

    def test_prose_variant_inverts_square_branch(self):
        f = penalty_factors(32, prose_variant=True)
        for p in (4, 16):  # even squares clean under the prose reading
            assert f[p - 1] == 1.0
        for p in (2, 6, 8, 24, 32):  # even non-squares penalized
            assert f[p - 1] == pytest.approx(1.1)
        for p in (3, 5, 31):  # odd penalty unchanged
            assert f[p - 1] == pytest.approx(1.3)

    def test_odd_squares_get_odd_penalty(self):
        # 9 and 25 are odd AND square: Algorithm 1 checks odd first
        f = penalty_factors(32)
        assert f[8] == pytest.approx(1.3)
        assert f[24] == pytest.approx(1.3)


class TestSyntheticModel:
    def test_time_is_penalized_amdahl(self, cluster):
        t = Task("t", work=6e9, alpha=0.1)
        amdahl = AmdahlModel()
        model = SyntheticModel()
        for p in (1, 2, 3, 4, 5, 8, 16):
            expected = amdahl.time(t, p, cluster) * model.penalty(p)
            assert model.time(t, p, cluster) == pytest.approx(expected)

    def test_not_monotone_flag(self):
        assert not SyntheticModel().monotone

    def test_table_matches_scalar(self, fft8_ptg, cluster):
        model = SyntheticModel()
        table = model.build_table(fft8_ptg, cluster)
        for v in (0, 10, 38):
            for p in (1, 3, 4, 9, 32):
                assert table[v, p - 1] == pytest.approx(
                    model.time(fft8_ptg.task(v), p, cluster)
                )

    def test_table_empirically_non_monotone(self, fft8_ptg, cluster):
        table = TimeTable.build(SyntheticModel(), fft8_ptg, cluster)
        assert not table.is_monotone()

    def test_p2_vs_p3_inversion(self, cluster):
        """The signature non-monotonicity: 3 procs slower than 2 once
        the Amdahl gain of the third processor is below the 1.3 odd
        penalty (here alpha = 0.3)."""
        t = Task("t", work=6e9, alpha=0.3)
        model = SyntheticModel()
        # T(2) = (0.3 + 0.35)*6 = 3.9 ; T(3) = (0.3 + 0.7/3)*6*1.3 = 4.16
        assert model.time(t, 3, cluster) > model.time(t, 2, cluster)

    def test_penalty_scalar_matches_vector(self):
        model = SyntheticModel()
        f = penalty_factors(32)
        for p in range(1, 33):
            assert model.penalty(p) == pytest.approx(f[p - 1])

    def test_prose_variant_scalar(self):
        model = SyntheticModel(prose_variant=True)
        assert model.penalty(4) == 1.0
        assert model.penalty(6) == pytest.approx(1.1)
        assert model.penalty(5) == pytest.approx(1.3)
        assert "prose" in model.name
