"""End-to-end integration tests: the full pipeline from workload
generation through scheduling, simulation and statistics, exactly as the
experiment harness composes it."""

import numpy as np
import pytest

from repro import (
    AmdahlModel,
    CpaAllocator,
    DeltaCriticalAllocator,
    HcpaAllocator,
    McpaAllocator,
    SerialAllocator,
    SyntheticModel,
    TimeTable,
    chti,
    emts5,
    grelon,
    simulate,
)
from repro.experiments import mean_confidence_interval
from repro.graph import load_ptg, save_ptg
from repro.mapping import makespan_of
from repro.workloads import (
    DaggenParams,
    generate_daggen,
    generate_fft,
    generate_strassen,
)

ALL_HEURISTICS = [
    SerialAllocator(),
    CpaAllocator(),
    HcpaAllocator(),
    McpaAllocator(),
    DeltaCriticalAllocator(),
]


class TestFullPipeline:
    @pytest.mark.parametrize(
        "make_ptg",
        [
            lambda: generate_fft(8, rng=1),
            lambda: generate_strassen(rng=1),
            lambda: generate_daggen(
                DaggenParams(
                    num_tasks=30,
                    width=0.5,
                    regularity=0.2,
                    density=0.5,
                    jump=2,
                ),
                rng=1,
            ),
        ],
        ids=["fft", "strassen", "irregular"],
    )
    @pytest.mark.parametrize(
        "model", [AmdahlModel(), SyntheticModel()], ids=["m1", "m2"]
    )
    def test_every_algorithm_on_every_workload(self, make_ptg, model):
        ptg = make_ptg()
        cluster = chti()
        table = TimeTable.build(model, ptg, cluster)

        makespans = {}
        for h in ALL_HEURISTICS:
            schedule = h.schedule(ptg, table)
            schedule.validate()
            sim = simulate(schedule, table)
            assert sim.makespan == pytest.approx(schedule.makespan)
            makespans[h.name] = schedule.makespan

        result = emts5(generations=2).schedule(
            ptg, cluster, table, rng=1
        )
        simulate(result.schedule, table)
        # EMTS beats (or ties) every seed heuristic
        for name in ("mcpa", "hcpa", "delta-critical"):
            assert result.makespan <= makespans[name] + 1e-9

    def test_serialized_workload_schedules_identically(self, tmp_path):
        ptg = generate_fft(8, rng=9)
        path = tmp_path / "ptg.json"
        save_ptg(ptg, path)
        restored = load_ptg(path)

        cluster = grelon()
        table_a = TimeTable.build(SyntheticModel(), ptg, cluster)
        table_b = TimeTable.build(SyntheticModel(), restored, cluster)
        alloc_a = McpaAllocator().allocate(ptg, table_a)
        alloc_b = McpaAllocator().allocate(restored, table_b)
        assert np.array_equal(alloc_a, alloc_b)
        assert makespan_of(ptg, table_a, alloc_a) == pytest.approx(
            makespan_of(restored, table_b, alloc_b)
        )

    def test_statistics_over_many_instances(self):
        """A miniature Figure 4 column computed end to end."""
        cluster = chti()
        model = AmdahlModel()
        ratios = []
        for seed in range(6):
            ptg = generate_fft(4, rng=seed)
            table = TimeTable.build(model, ptg, cluster)
            hcpa_ms = makespan_of(
                ptg, table, HcpaAllocator().allocate(ptg, table)
            )
            result = emts5(generations=3).schedule(
                ptg, cluster, table, rng=seed
            )
            ratios.append(hcpa_ms / result.makespan)
        ci = mean_confidence_interval(np.array(ratios))
        assert ci.mean >= 1.0
        assert ci.n == 6

    def test_paper_scenario_shape(self):
        """The paper's headline comparison on one irregular instance:
        under Model 2 on Grelon, EMTS5 clearly beats both baselines."""
        ptg = generate_daggen(
            DaggenParams(
                num_tasks=50,
                width=0.5,
                regularity=0.2,
                density=0.2,
                jump=2,
            ),
            rng=77,
        )
        cluster = grelon()
        table = TimeTable.build(SyntheticModel(), ptg, cluster)
        result = emts5().schedule(ptg, cluster, table, rng=77)
        assert result.improvement_over("mcpa") > 1.05
        assert result.improvement_over("hcpa") > 1.05


class TestRuntimeHarness:
    def test_measure_runtimes_structure(self):
        from repro.experiments import measure_runtimes

        report = measure_runtimes(seed=1, repetitions=1)
        assert len(report.cells) == 6
        emts10_cell = report.cell("emts10", "grelon", "100-node")
        emts5_cell = report.cell("emts5", "grelon", "100-node")
        assert emts10_cell.mean_seconds > emts5_cell.mean_seconds
        out = report.render()
        assert "paper mean" in out
        with pytest.raises(KeyError):
            report.cell("emts99", "grelon", "100-node")
