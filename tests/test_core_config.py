"""Unit tests for EMTSConfig and the paper presets."""

import pytest

from repro.core import EMTSConfig, emts5_config, emts10_config
from repro.exceptions import ConfigurationError


class TestPresets:
    def test_emts5_is_5_plus_25(self):
        c = emts5_config()
        assert (c.mu, c.lam, c.generations) == (5, 25, 5)
        assert c.name == "emts5"

    def test_emts10_is_10_plus_100(self):
        c = emts10_config()
        assert (c.mu, c.lam, c.generations) == (10, 100, 10)

    def test_paper_parameters(self):
        c = emts5_config()
        assert c.fm == 0.33
        assert c.sigma_stretch == 5.0
        assert c.sigma_shrink == 5.0
        assert c.shrink_probability == 0.2
        assert c.delta == 0.9
        assert c.selection == "plus"

    def test_default_seeds_are_papers(self):
        c = emts5_config()
        assert set(c.seed_heuristics) == {
            "mcpa",
            "hcpa",
            "delta-critical",
        }


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(mu=0),
            dict(lam=0),
            dict(generations=0),
            dict(fm=0.0),
            dict(fm=1.5),
            dict(sigma_stretch=0.0),
            dict(sigma_shrink=-1.0),
            dict(shrink_probability=-0.1),
            dict(shrink_probability=1.1),
            dict(delta=2.0),
            dict(seed_heuristics=()),
            dict(selection="rank"),
            dict(time_budget_seconds=0.0),
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            EMTSConfig(**kwargs)

    def test_with_updates(self):
        c = emts5_config().with_updates(generations=20)
        assert c.generations == 20
        assert c.mu == 5

    def test_frozen(self):
        with pytest.raises(AttributeError):
            emts5_config().mu = 99
