"""The shared backoff helper and the named crash-point machinery."""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.util import (
    CRASH_ENV_VAR,
    CRASH_EXIT_CODE,
    KNOWN_CRASH_POINTS,
    Backoff,
    crash_point,
    decorrelated_jitter,
    exponential_delay,
    reset_crash_counts,
)


class TestExponentialDelay:
    def test_classic_ladder(self):
        assert exponential_delay(0.5, 1) == 0.5
        assert exponential_delay(0.5, 2) == 1.0
        assert exponential_delay(0.5, 3) == 2.0
        assert exponential_delay(0.5, 4) == 4.0

    def test_custom_factor(self):
        assert exponential_delay(1.0, 3, factor=3.0) == 9.0

    def test_cap_clamps(self):
        assert exponential_delay(1.0, 10, cap=5.0) == 5.0
        assert exponential_delay(1.0, 1, cap=5.0) == 1.0

    def test_zero_base_disables_sleeping(self):
        assert exponential_delay(0.0, 1) == 0.0
        assert exponential_delay(-1.0, 7) == 0.0

    def test_attempt_must_be_positive(self):
        with pytest.raises(ValueError):
            exponential_delay(1.0, 0)

    def test_bit_identical_to_legacy_expression(self):
        # The three migrated call sites used exactly this expression;
        # a reordered multiply would change online simulated-time
        # traces, so the extraction must preserve it to the bit.
        for base in (0.05, 0.1, 1.5, 2.0):
            for attempt in range(1, 12):
                for factor in (1.5, 2.0, 3.0):
                    assert exponential_delay(
                        base, attempt, factor=factor
                    ) == base * factor ** (attempt - 1)


class TestDecorrelatedJitter:
    def test_bounds(self):
        import random

        rng = random.Random(3)
        previous = 0.1
        for _ in range(200):
            delay = decorrelated_jitter(rng, previous, 0.1, 2.0)
            assert 0.1 <= delay <= 2.0
            previous = delay

    def test_seeded_stream_is_reproducible(self):
        import random

        a = [
            decorrelated_jitter(random.Random(11), 0.1, 0.1, 5.0)
            for _ in range(3)
        ]
        b = [
            decorrelated_jitter(random.Random(11), 0.1, 0.1, 5.0)
            for _ in range(3)
        ]
        assert a == b

    def test_zero_base_disables(self):
        import random

        assert decorrelated_jitter(random.Random(0), 1.0, 0.0, 5.0) == 0.0


class TestBackoff:
    def test_deterministic_ladder_without_jitter(self):
        b = Backoff(base=0.1, cap=10.0, jitter="none")
        assert [b.next_delay() for _ in range(4)] == [
            pytest.approx(0.1),
            pytest.approx(0.2),
            pytest.approx(0.4),
            pytest.approx(0.8),
        ]

    def test_jittered_schedule_reproducible_from_seed(self):
        a = Backoff(base=0.05, cap=2.0, seed=42)
        b = Backoff(base=0.05, cap=2.0, seed=42)
        assert [a.next_delay() for _ in range(5)] == [
            b.next_delay() for _ in range(5)
        ]

    def test_reset_rewinds_the_schedule(self):
        b = Backoff(base=0.05, cap=2.0, seed=9)
        first = [b.next_delay() for _ in range(4)]
        b.reset()
        assert [b.next_delay() for _ in range(4)] == first

    def test_cap_respected(self):
        b = Backoff(base=1.0, cap=1.5, jitter="none")
        delays = [b.next_delay() for _ in range(5)]
        assert delays[-1] == 1.5
        assert max(delays) <= 1.5

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"base": -0.1},
            {"base": 2.0, "cap": 1.0},
            {"factor": 0.5},
            {"jitter": "full"},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            Backoff(**kwargs)


class TestCrashPoint:
    def setup_method(self):
        reset_crash_counts()
        os.environ.pop(CRASH_ENV_VAR, None)

    def teardown_method(self):
        reset_crash_counts()
        os.environ.pop(CRASH_ENV_VAR, None)

    def test_unarmed_is_a_noop(self):
        for name in KNOWN_CRASH_POINTS:
            crash_point(name)  # must not die

    def test_armed_for_a_different_point_is_a_noop(self):
        os.environ[CRASH_ENV_VAR] = "mid-checkpoint"
        crash_point("post-enqueue")  # must not die

    def test_detonation_exits_with_the_crash_code(self):
        code = (
            "from repro.util import crash_point, CRASH_ENV_VAR\n"
            "import os\n"
            "os.environ[CRASH_ENV_VAR] = 'post-enqueue'\n"
            "crash_point('post-enqueue')\n"
            "print('survived')\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True
        )
        assert proc.returncode == CRASH_EXIT_CODE
        assert "survived" not in proc.stdout

    def test_hit_count_detonates_on_nth_crossing(self):
        code = (
            "from repro.util import crash_point, CRASH_ENV_VAR\n"
            "import os\n"
            "os.environ[CRASH_ENV_VAR] = 'mid-checkpoint:3'\n"
            "for i in range(10):\n"
            "    print('crossing', i, flush=True)\n"
            "    crash_point('mid-checkpoint')\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True
        )
        assert proc.returncode == CRASH_EXIT_CODE
        crossings = [
            line
            for line in proc.stdout.splitlines()
            if line.startswith("crossing")
        ]
        assert len(crossings) == 3  # died during the third crossing
