"""HTTP end-to-end tests: a live daemon on an ephemeral port."""

from __future__ import annotations

import json
import threading

import pytest

from repro.exceptions import ServiceError
from repro.graph import ptg_to_dict
from repro.service import (
    QueueFullError,
    SchedulingService,
    ServiceClient,
)
from repro.workloads import generate_fft


def make_doc(size=4, seed=7, **extra):
    doc = {
        "ptg": ptg_to_dict(generate_fft(size, rng=7)),
        "platform": "chti",
        "model": "amdahl",
        "algorithm": "emts5",
        "seed": seed,
    }
    doc.update(extra)
    return doc


@pytest.fixture
def live_service(tmp_path):
    """A daemon on an ephemeral port; drained and joined on teardown."""
    import asyncio

    service = SchedulingService(port=0, workers=2)
    ready = threading.Event()

    def run():
        async def main():
            await service.start()
            ready.set()
            await service._drained.wait()
            assert service._server is not None
            service._server.close()
            await service._server.wait_closed()

        asyncio.run(main())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert ready.wait(timeout=15), "service did not start"
    client = ServiceClient(port=service.bound_port, timeout=30.0)
    yield service, client
    service.request_drain()
    thread.join(timeout=30)


class TestEndpoints:
    def test_healthz(self, live_service):
        _, client = live_service
        assert client.healthz() == {"status": "ok"}

    def test_submit_and_wait(self, live_service):
        _, client = live_service
        doc = client.schedule(make_doc(), timeout=60)
        job, result = doc["job"], doc["result"]
        assert job["state"] == "done"
        assert job["served_from"] == "run"
        assert result["verified"] is True
        assert result["makespan"] > 0
        assert result["schedule"]["format"] == "repro-schedule"
        assert len(result["problem_fingerprint"]) == 64

    def test_repeat_request_hits_result_cache(self, live_service):
        service, client = live_service
        first = client.schedule(make_doc(seed=11), timeout=60)
        second = client.schedule(make_doc(seed=11), timeout=60)
        assert second["job"]["served_from"] == "result-cache"
        # bit-identical deterministic sections
        assert json.dumps(
            first["result"], sort_keys=True
        ) == json.dumps(second["result"], sort_keys=True)
        assert service.result_cache.stats.hits >= 1

    def test_poll_endpoint(self, live_service):
        _, client = live_service
        submitted = client.submit(make_doc(seed=13))
        job_id = submitted["job"]["id"]
        doc = client.wait_for(job_id, timeout=60)
        assert doc["job"]["id"] == job_id
        assert doc["job"]["state"] == "done"

    def test_unknown_job_404(self, live_service):
        _, client = live_service
        with pytest.raises(ServiceError) as err:
            client.get_job("job-nonsuch")
        assert err.value.status == 404

    def test_bad_request_400(self, live_service):
        _, client = live_service
        with pytest.raises(ServiceError) as err:
            client.submit({"ptg": {"format": "nope"}})
        assert err.value.status == 400

    def test_job_listing(self, live_service):
        _, client = live_service
        client.schedule(make_doc(seed=17), timeout=60)
        status, _, doc = client._request("GET", "/v1/jobs")
        assert status == 200
        assert any(j["seed"] == 17 for j in doc["jobs"])

    def test_metrics_exposition(self, live_service):
        _, client = live_service
        client.schedule(make_doc(seed=19), timeout=60)
        text = client.metrics_text()
        assert "repro_service_jobs_submitted" in text
        assert "repro_service_request_seconds" in text
        assert "repro_service_queue_depth" in text

    def test_stats_endpoint(self, live_service):
        _, client = live_service
        client.schedule(make_doc(seed=23), timeout=60)
        stats = client.stats()
        assert stats["queue"]["depth"] >= 0
        assert stats["latency"]["p99_seconds"] >= 0
        assert stats["draining"] is False

    def test_404_for_unknown_route(self, live_service):
        _, client = live_service
        status, _, _ = client._request("GET", "/nonsuch")
        assert status == 404


class TestBackpressureHTTP:
    def test_429_with_retry_after(self, tmp_path):
        import asyncio

        # one worker, tiny queue: the flood must hit backpressure
        service = SchedulingService(
            port=0, workers=1, queue_limit=1, tenant_quota=1
        )
        ready = threading.Event()

        def run():
            async def main():
                await service.start()
                ready.set()
                await service._drained.wait()

            asyncio.run(main())

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        assert ready.wait(timeout=15)
        client = ServiceClient(port=service.bound_port, timeout=30.0)
        try:
            rejected = None
            # distinct seeds so nothing is served from the result cache
            for seed in range(40):
                try:
                    client.submit(make_doc(seed=100 + seed))
                except QueueFullError as exc:
                    rejected = exc
                    break
            assert rejected is not None, "flood never saw a 429"
            assert rejected.status == 429
            assert rejected.retry_after is not None
        finally:
            service.request_drain()
            thread.join(timeout=30)
