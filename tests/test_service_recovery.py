"""Kill-restart acceptance suite: the no-loss / no-duplicate contract.

For every named crash point the daemon is armed via ``REPRO_CRASH_POINT``,
driven until the injected ``os._exit`` lands (verified by the dedicated
exit code), restarted on the same spool, and then held to the contract:

* **no acked job is lost** — anything the client got a 202 for reaches
  ``done`` after the restart;
* **no duplicate execution** — a keyed resubmit lands on the surviving
  job (at most one spool record per idempotency key, ever);
* **bit-identical results** — the recovered result equals one
  uninterrupted offline run of the same request;
* **corrupt debris is quarantined**, never fatal.

These run the real ``repro-emts serve`` daemon as a subprocess (the
in-process drain tests cannot model ``kill -9``).
"""

from __future__ import annotations

import functools
import json
import time

import pytest

from repro.core import emts5
from repro.graph import ptg_to_dict
from repro.platform import by_name
from repro.service import (
    RetryingServiceClient,
    RetryPolicy,
    ServiceClient,
)
from repro.exceptions import ServiceError
from repro.mapping import schedule_to_dict
from repro.obs import read_flight_dump
from repro.testing import (
    ServiceDaemon,
    quarantined_files,
    spool_job_ids,
)
from repro.timemodels import TimeTable
from repro.util import CRASH_EXIT_CODE
from repro.workloads import generate_fft

SEED = 31
#: long enough that run-time crash points land mid-run with room for
#: several per-generation checkpoints; cheap on fft(4)
LONG_GENERATIONS = 150
#: submit-time crash points never start the run; keep the replay tiny
SHORT_GENERATIONS = 3


def make_doc(generations, key):
    return {
        "ptg": ptg_to_dict(generate_fft(4, rng=7)),
        "platform": "chti",
        "model": "amdahl",
        "algorithm": "emts5",
        "seed": SEED,
        "generations": generations,
        "idempotency_key": key,
    }


@functools.lru_cache(maxsize=None)
def offline_reference(generations):
    """One undisturbed run of the request — the bit-identity oracle."""
    from repro.cli import _make_model

    ptg = generate_fft(4, rng=7)
    cluster = by_name("chti")
    table = TimeTable.build(_make_model("amdahl"), ptg, cluster)
    result = emts5(generations=generations).schedule(
        ptg, cluster, table, rng=SEED
    )
    return {
        "makespan": result.makespan,
        "schedule": json.dumps(
            schedule_to_dict(result.schedule), sort_keys=True
        ),
    }


def assert_contract(spool, final_doc, key, generations):
    """The recovery contract, asserted after the restarted run."""
    assert final_doc["job"]["state"] == "done"
    # no duplicate execution: exactly one spool record carries the key
    records = [
        json.loads(p.read_text())
        for p in (spool / "jobs").glob("*.json")
    ]
    with_key = [
        r
        for r in records
        if r["request"].get("idempotency_key") == key
    ]
    assert len(with_key) == 1, (
        f"expected exactly one job for key {key!r}, "
        f"got {[r['id'] for r in with_key]}"
    )
    assert with_key[0]["id"] == final_doc["job"]["id"]
    # bit-identical to the undisturbed offline run
    reference = offline_reference(generations)
    result = final_doc["result"]
    assert result["makespan"] == reference["makespan"]
    assert (
        json.dumps(result["schedule"], sort_keys=True)
        == reference["schedule"]
    )


def assert_flight_dump(spool, point):
    """Every induced crash leaves a parseable flight-recorder dump."""
    dumps = sorted((spool / "flight").glob(f"flight-{point}-*.json"))
    assert dumps, (
        f"no flight-recorder dump for crash point {point!r} under "
        f"{spool / 'flight'}"
    )
    for dump in dumps:
        doc = read_flight_dump(dump)  # raises if malformed
        assert doc["reason"] == f"crash-point:{point}"
        assert doc["events"], "flight dump recorded no breadcrumbs"


def recovered_schedule(spool, doc):
    """Restart on the spool and drive the keyed request to done."""
    with ServiceDaemon(spool=spool) as daemon:
        client = RetryingServiceClient(
            port=daemon.port,
            policy=RetryPolicy(base=0.02, cap=0.2, seed=3),
        )
        return client.schedule(doc, timeout=300)


def wait_running(client, job_id, timeout=60):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            if client.get_job(job_id)["job"]["state"] == "running":
                return
        except ServiceError:
            return  # daemon already died at the crash point
        time.sleep(0.01)
    pytest.fail(f"job {job_id} never started running")


# ----------------------------------------------------------------------
SUBMIT_TIME_POINTS = (
    "pre-spool-write",   # record not yet durable: job may vanish
    "mid-spool-write",   # torn write: .tmp debris must be quarantined
    "post-spool-write",  # durable but never acked
    "post-enqueue",      # durable + queued but never acked
)


@pytest.mark.parametrize("point", SUBMIT_TIME_POINTS)
def test_submit_time_crash(tmp_path, point):
    """Daemon dies inside the submit path; the ack never arrives.

    The client cannot know whether the POST landed — exactly the case
    the idempotency key exists for.  After restart, a keyed retry must
    end with ONE completed job, whichever side of the crash the record
    ended up on.
    """
    spool = tmp_path / "spool"
    key = f"idem-{point}"
    doc = make_doc(SHORT_GENERATIONS, key)

    daemon = ServiceDaemon(spool=spool, crash_point=point)
    daemon.start()
    client = ServiceClient(port=daemon.port, timeout=10)
    try:
        client.submit(doc)
        pytest.fail("submit should have died with the daemon")
    except ServiceError:
        pass
    assert daemon.wait(timeout=30) == CRASH_EXIT_CODE
    assert_flight_dump(spool, point)

    durable = spool_job_ids(spool)
    if point in ("post-spool-write", "post-enqueue"):
        assert len(durable) == 1, "record should have been durable"
    else:
        assert durable == set(), "record should not exist yet"

    final = recovered_schedule(spool, doc)
    assert_contract(spool, final, key, SHORT_GENERATIONS)
    if durable:
        # the retry was answered by the job the crash left behind
        assert final["job"]["id"] in durable
    if point == "mid-spool-write":
        # the torn temp file was parked, not deleted and not fatal
        assert any(
            p.name.endswith(".json.tmp") for p in quarantined_files(spool)
        )


RUN_TIME_POINTS = (
    # five clean checkpoints, then die mid-journal: restart resumes
    # from generation 4's checkpoint
    "mid-checkpoint:5",
    # the run finished but its result never became durable: restart
    # must re-derive it (resume from the last checkpoint)
    "pre-result-persist",
)


@pytest.mark.parametrize("spec", RUN_TIME_POINTS)
def test_run_time_crash_recovers_acked_job(tmp_path, spec):
    """An ACKED job must survive a mid-run kill and finish correctly."""
    spool = tmp_path / "spool"
    key = f"idem-{spec.split(':')[0]}"
    doc = make_doc(LONG_GENERATIONS, key)

    daemon = ServiceDaemon(spool=spool, crash_point=spec)
    daemon.start()
    client = ServiceClient(port=daemon.port, timeout=10)
    acked = client.submit(doc)  # 202 before the run begins
    acked_id = acked["job"]["id"]
    assert daemon.wait(timeout=120) == CRASH_EXIT_CODE
    assert_flight_dump(spool, spec.split(":")[0])
    assert acked_id in spool_job_ids(spool), "acked job lost"

    final = recovered_schedule(spool, doc)
    assert final["job"]["id"] == acked_id, "acked job lost on restart"
    assert_contract(spool, final, key, LONG_GENERATIONS)


def test_mid_drain_crash_recovers_acked_job(tmp_path):
    """SIGKILL landing mid-graceful-shutdown still loses nothing."""
    spool = tmp_path / "spool"
    key = "idem-mid-drain"
    doc = make_doc(LONG_GENERATIONS, key)

    daemon = ServiceDaemon(spool=spool, crash_point="mid-drain")
    daemon.start()
    client = ServiceClient(port=daemon.port, timeout=10)
    acked_id = client.submit(doc)["job"]["id"]
    wait_running(client, acked_id)
    daemon.terminate()  # SIGTERM starts the drain; the point detonates
    assert daemon.returncode == CRASH_EXIT_CODE
    assert_flight_dump(spool, "mid-drain")
    assert acked_id in spool_job_ids(spool), "acked job lost"

    final = recovered_schedule(spool, doc)
    assert final["job"]["id"] == acked_id
    assert_contract(spool, final, key, LONG_GENERATIONS)


def test_plain_sigkill_mid_run(tmp_path):
    """No crash point at all — a raw ``kill -9`` mid-run recovers too."""
    spool = tmp_path / "spool"
    key = "idem-sigkill"
    doc = make_doc(LONG_GENERATIONS, key)

    daemon = ServiceDaemon(spool=spool)
    daemon.start()
    client = ServiceClient(port=daemon.port, timeout=10)
    acked_id = client.submit(doc)["job"]["id"]
    wait_running(client, acked_id)
    daemon.kill()

    final = recovered_schedule(spool, doc)
    assert final["job"]["id"] == acked_id
    assert_contract(spool, final, key, LONG_GENERATIONS)
