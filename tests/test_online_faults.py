"""FaultPlan construction, validation and seed-reproducible sampling.

The contract under test: a plan is pure data with hard validity
invariants (no double faults, no plan that kills every processor), and
:meth:`FaultPlan.sampled` is a pure function of its seed whose zero-rate
fault types consume no randomness.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.online import (
    FaultPlan,
    ProcessorCrash,
    Straggler,
    TaskFailure,
)


def test_default_plan_is_empty_and_valid():
    plan = FaultPlan()
    assert plan.is_empty
    plan.validate(10, 4)  # must not raise


def test_nonempty_flags():
    assert not FaultPlan(
        crashes=(ProcessorCrash(0, 1.0),)
    ).is_empty
    assert not FaultPlan(failures=(TaskFailure(0),)).is_empty
    assert not FaultPlan(stragglers=(Straggler(0),)).is_empty


@pytest.mark.parametrize(
    "plan",
    [
        FaultPlan(max_retries=-1),
        FaultPlan(backoff_seconds=-0.1),
        FaultPlan(backoff_factor=0.5),
        FaultPlan(crashes=(ProcessorCrash(4, 1.0),)),
        FaultPlan(
            crashes=(
                ProcessorCrash(1, 1.0),
                ProcessorCrash(1, 2.0),
            )
        ),
        FaultPlan(crashes=(ProcessorCrash(0, -1.0),)),
        FaultPlan(crashes=(ProcessorCrash(0, float("inf")),)),
        FaultPlan(failures=(TaskFailure(10),)),
        FaultPlan(failures=(TaskFailure(0), TaskFailure(0))),
        FaultPlan(failures=(TaskFailure(0, attempts=0),)),
        FaultPlan(failures=(TaskFailure(0, at_fraction=0.0),)),
        FaultPlan(failures=(TaskFailure(0, at_fraction=1.5),)),
        FaultPlan(stragglers=(Straggler(10),)),
        FaultPlan(stragglers=(Straggler(0), Straggler(0))),
        FaultPlan(stragglers=(Straggler(0, factor=0.5),)),
        FaultPlan(stragglers=(Straggler(0, factor=float("nan")),)),
    ],
)
def test_invalid_plans_raise(plan):
    with pytest.raises(ConfigurationError):
        plan.validate(10, 4)


def test_crashing_every_processor_is_rejected():
    plan = FaultPlan(
        crashes=tuple(ProcessorCrash(p, 1.0) for p in range(4))
    )
    with pytest.raises(ConfigurationError, match="every processor"):
        plan.validate(10, 4)


def test_task_may_both_fail_and_straggle():
    plan = FaultPlan(
        failures=(TaskFailure(3),), stragglers=(Straggler(3),)
    )
    plan.validate(10, 4)


# ----------------------------------------------------------------------
# sampled plans


def test_sampled_is_a_pure_function_of_the_seed():
    kwargs = dict(
        horizon=100.0,
        crash_rate=0.2,
        failure_rate=0.3,
        straggler_rate=0.3,
        straggler_factor=2.5,
    )
    a = FaultPlan.sampled(42, 50, 8, **kwargs)
    b = FaultPlan.sampled(42, 50, 8, **kwargs)
    assert a == b
    assert not a.is_empty
    a.validate(50, 8)


def test_sampled_zero_rates_consume_no_randomness():
    """Adding a later-sampled fault type never perturbs earlier draws."""
    base = FaultPlan.sampled(
        7, 50, 8, horizon=100.0, failure_rate=0.3
    )
    extended = FaultPlan.sampled(
        7, 50, 8, horizon=100.0, failure_rate=0.3, straggler_rate=0.5
    )
    assert base.failures == extended.failures
    assert base.crashes == extended.crashes == ()
    assert base.stragglers == ()
    assert extended.stragglers


def test_sampled_spares_the_last_processor():
    plan = FaultPlan.sampled(
        3, 10, 1, horizon=50.0, crash_rate=1.0
    )
    assert plan.crashes == ()
    plan = FaultPlan.sampled(
        3, 10, 4, horizon=50.0, crash_rate=1.0
    )
    assert len(plan.crashes) == 3
    plan.validate(10, 4)


def test_sampled_scales_backoff_to_horizon():
    plan = FaultPlan.sampled(1, 10, 4, horizon=200.0)
    assert plan.backoff_seconds == pytest.approx(4.0)


def test_sampled_crash_times_within_horizon():
    plan = FaultPlan.sampled(
        11, 10, 8, horizon=60.0, crash_rate=0.9
    )
    for crash in plan.crashes:
        assert 0.0 <= crash.time <= 60.0


@pytest.mark.parametrize("horizon", [0.0, -1.0, float("inf")])
def test_sampled_rejects_bad_horizon(horizon):
    with pytest.raises(ConfigurationError, match="horizon"):
        FaultPlan.sampled(1, 10, 4, horizon=horizon)


def test_sampled_accepts_generator():
    gen = np.random.default_rng(5)
    plan = FaultPlan.sampled(
        gen, 30, 6, horizon=10.0, failure_rate=0.4
    )
    assert plan == FaultPlan.sampled(
        np.random.default_rng(5), 30, 6, horizon=10.0, failure_rate=0.4
    )


def test_summary_counts():
    plan = FaultPlan(
        crashes=(ProcessorCrash(0, 1.0),),
        failures=(TaskFailure(1), TaskFailure(2)),
        stragglers=(Straggler(3),),
    )
    assert plan.summary() == {
        "crashes": 1,
        "failures": 2,
        "stragglers": 1,
    }
