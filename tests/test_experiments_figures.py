"""Tests for the figure-data generators (quick variants of E1-E6).

Figures 4/5 run on heavily reduced corpora here — the full-scale runs
live in benchmarks/.  These tests check the *structure* and the paper's
qualitative invariants, not the exact values.
"""

import numpy as np
import pytest

from repro.experiments.figures import (
    PANEL_ORDER,
    build_panels,
    generate_figure1,
    generate_figure2,
    generate_figure3,
    generate_figure4,
    generate_figure5,
    generate_figure6,
)


class TestFigure1:
    def test_both_curves_non_monotone(self):
        fig = generate_figure1()
        assert fig.non_monotone(1024)
        assert fig.non_monotone(2048)

    def test_matrix_sizes_match_paper(self):
        assert generate_figure1().matrix_sizes == (1024, 2048)

    def test_larger_matrix_slower(self):
        fig = generate_figure1()
        assert np.all(fig.times[2048] > fig.times[1024])

    def test_render(self):
        out = generate_figure1().render()
        assert "n=1024" in out
        assert "non-monotone=True" in out

    def test_spikes_at_awkward_counts(self):
        fig = generate_figure1()
        spikes = set(fig.spikes(2048))
        # primes force 1 x p grids: they must be among the spikes
        assert spikes & {5, 7, 11, 13}


class TestFigure2:
    def test_five_node_example(self):
        fig = generate_figure2()
        assert fig.ptg.num_tasks == 5
        assert fig.genome.tolist() == [3, 2, 1, 2, 1]

    def test_render_shows_encoding(self):
        out = generate_figure2().render()
        assert "individual I = [3, 2, 1, 2, 1]" in out
        assert "node1" in out


class TestFigure3:
    @pytest.fixture(scope="class")
    def fig(self):
        return generate_figure3(samples=100_000, rng=3)

    def test_empirical_matches_analytic(self, fig):
        assert fig.max_abs_error < 0.01

    def test_shrink_mass_near_a(self, fig):
        assert fig.shrink_mass == pytest.approx(0.2, abs=0.01)

    def test_no_zero_adjustment(self, fig):
        zero_idx = np.flatnonzero(fig.support == 0)
        assert fig.empirical[zero_idx].sum() == 0.0

    def test_render(self, fig):
        out = fig.render()
        assert "shrink mass" in out


class TestComparisonFigures:
    """One tiny corpus shared by the Figure 4/5 structural tests."""

    @pytest.fixture(scope="class")
    def panels(self):
        from repro.workloads import generate_fft, generate_daggen
        from repro.workloads import DaggenParams

        return {
            "fft": [generate_fft(4, rng=s) for s in range(2)],
            "irregular-100": [
                generate_daggen(
                    DaggenParams(
                        num_tasks=30,
                        width=0.5,
                        regularity=0.2,
                        density=0.2,
                        jump=2,
                    ),
                    rng=s,
                )
                for s in range(2)
            ],
        }

    def test_figure4_structure(self, panels):
        fig = generate_figure4(seed=1, panels=panels)
        assert fig.model_name == "model1-amdahl"
        assert fig.emts_name == "emts5"
        assert set(fig.baselines) == {"mcpa", "hcpa"}
        assert set(fig.platforms) == {"chti", "grelon"}
        for panel in panels:
            for platform in ("chti", "grelon"):
                for baseline in ("mcpa", "hcpa"):
                    ci = fig.cell(panel, platform, baseline)
                    assert ci.mean >= 1.0 - 1e-9  # EMTS never loses

    def test_figure4_render(self, panels):
        out = generate_figure4(seed=1, panels=panels).render()
        assert "T_base/T_emts5" in out

    def test_figure5_rows(self, panels):
        fig = generate_figure5(seed=1, panels=panels)
        assert fig.emts5_row.model_name.startswith("model2")
        assert fig.emts10_row.emts_name == "emts10"
        out = fig.render()
        assert "EMTS5 row" in out and "EMTS10 row" in out

    def test_panel_order_constant(self):
        assert PANEL_ORDER == (
            "fft",
            "strassen",
            "layered-100",
            "irregular-100",
        )

    def test_build_panels_scaled(self):
        panels = build_panels(seed=1, scale=0.01)
        assert set(panels) == set(PANEL_ORDER)
        assert all(len(v) >= 1 for v in panels.values())
        assert all(
            p.num_tasks == 100 for p in panels["irregular-100"]
        )


class TestFigure6:
    @pytest.fixture(scope="class")
    def fig(self):
        from repro.workloads import DaggenParams, generate_daggen

        # a smaller instance than the paper's for test speed
        ptg = generate_daggen(
            DaggenParams(
                num_tasks=40,
                width=0.5,
                regularity=0.2,
                density=0.2,
                jump=2,
            ),
            rng=2,
        )
        return generate_figure6(seed=2, ptg=ptg)

    def test_emts_wins(self, fig):
        assert fig.speedup >= 1.0

    def test_emts_utilization_higher(self, fig):
        assert (
            fig.emts_schedule.utilization
            >= fig.mcpa_schedule.utilization
        )

    def test_schedules_valid(self, fig):
        fig.mcpa_schedule.validate()
        fig.emts_schedule.validate()

    def test_render_and_svg(self, fig, tmp_path):
        out = fig.render()
        assert "MCPA" in out and "EMTS10" in out
        p1, p2 = fig.save_svgs(tmp_path)
        assert p1.exists() and p2.exists()
        assert p1.read_text().startswith("<svg")
