"""Property-based tests (hypothesis) for the graph substrate.

Strategy: generate random DAGs by drawing a node count and an edge mask
over the strictly-upper-triangular adjacency (guaranteeing acyclicity),
then check the analysis invariants that every scheduler relies on.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    PTG,
    Task,
    bottom_levels,
    critical_path,
    critical_path_length,
    level_members,
    precedence_levels,
    top_levels,
)


@st.composite
def random_dags(draw, max_nodes=12):
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    tasks = [
        Task(
            f"t{i}",
            work=draw(
                st.floats(
                    min_value=1e6,
                    max_value=1e12,
                    allow_nan=False,
                    allow_infinity=False,
                )
            ),
            alpha=draw(st.floats(min_value=0.0, max_value=1.0)),
        )
        for i in range(n)
    ]
    edges = []
    for u in range(n):
        for v in range(u + 1, n):
            if draw(st.booleans()):
                edges.append((u, v))
    return PTG(tasks, edges, name="hypothesis-dag")


@st.composite
def dags_with_times(draw):
    ptg = draw(random_dags())
    times = np.array(
        [
            draw(
                st.floats(
                    min_value=0.0,
                    max_value=1e6,
                    allow_nan=False,
                    allow_infinity=False,
                )
            )
            for _ in range(ptg.num_tasks)
        ]
    )
    return ptg, times


@given(dags_with_times())
@settings(max_examples=60, deadline=None)
def test_bottom_level_dominates_own_time(case):
    ptg, times = case
    bl = bottom_levels(ptg, times)
    assert np.all(bl >= times - 1e-9)


@given(dags_with_times())
@settings(max_examples=60, deadline=None)
def test_bottom_level_parent_exceeds_child(case):
    """bl(u) >= times[u] + bl(v) for every edge u -> v."""
    ptg, times = case
    bl = bottom_levels(ptg, times)
    for u, v in ptg.edges:
        assert bl[u] >= times[u] + bl[v] - 1e-6


@given(dags_with_times())
@settings(max_examples=60, deadline=None)
def test_tl_plus_bl_bounded_by_cp(case):
    ptg, times = case
    tl = top_levels(ptg, times)
    bl = bottom_levels(ptg, times)
    t_cp = critical_path_length(ptg, times)
    assert np.all(tl + bl <= t_cp + max(1e-9, 1e-12 * t_cp) + 1e-6)


@given(dags_with_times())
@settings(max_examples=60, deadline=None)
def test_critical_path_realizes_cp_length(case):
    ptg, times = case
    path = critical_path(ptg, times)
    total = sum(times[v] for v in path)
    assert total == pytest_approx(critical_path_length(ptg, times))


def pytest_approx(x, rel=1e-6):
    import pytest

    return pytest.approx(x, rel=rel, abs=1e-9)


@given(random_dags())
@settings(max_examples=60, deadline=None)
def test_precedence_levels_strictly_increase_on_edges(ptg):
    lv = precedence_levels(ptg)
    for u, v in ptg.edges:
        assert lv[v] >= lv[u] + 1


@given(random_dags())
@settings(max_examples=60, deadline=None)
def test_level_members_partition_nodes(ptg):
    members = level_members(ptg)
    seen = sorted(
        int(v) for level in members for v in level
    )
    assert seen == list(range(ptg.num_tasks))


@given(random_dags())
@settings(max_examples=60, deadline=None)
def test_topological_order_respects_edges(ptg):
    pos = {int(v): i for i, v in enumerate(ptg.topological_order)}
    for u, v in ptg.edges:
        assert pos[u] < pos[v]


@given(random_dags())
@settings(max_examples=40, deadline=None)
def test_serialization_roundtrip(ptg):
    from repro.graph import ptg_from_dict, ptg_to_dict

    assert ptg_from_dict(ptg_to_dict(ptg)) == ptg
