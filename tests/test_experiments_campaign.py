"""Tests for the crash-only campaign runner and its harness bridge.

The trial bodies live at module level so the campaign runner can ship
them to subprocesses under any :mod:`multiprocessing` start method.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.core import emts5, make_allocator
from repro.exceptions import CampaignError
from repro.experiments import (
    CampaignResult,
    Trial,
    campaign_status,
    comparison_trials,
    record_from_dict,
    record_to_dict,
    run_campaign,
    run_comparison,
    run_comparison_campaign,
)
from repro.timemodels import SyntheticModel


# -- module-level trial bodies (must be importable in a subprocess) -----
def square_trial(x: int) -> dict:
    return {"value": x * x}


def failing_trial(message: str = "boom") -> dict:
    raise ValueError(message)


def flaky_trial(marker: str) -> dict:
    """Fails on the first attempt, succeeds once ``marker`` exists."""
    path = Path(marker)
    if path.exists():
        return {"recovered": True}
    path.write_text("attempted", encoding="utf-8")
    raise RuntimeError("transient failure")


def sleepy_trial(seconds: float) -> dict:
    time.sleep(seconds)
    return {"slept": seconds}


def crashing_trial() -> dict:
    os._exit(7)  # simulates a segfault: no exception, no result


def unserializable_trial() -> dict:
    return {"bad": {1, 2, 3}}  # sets do not survive json.dumps


def trials_for(n: int) -> list[Trial]:
    return [
        Trial(key=f"t{i:02d}", func=square_trial, kwargs={"x": i})
        for i in range(n)
    ]


class TestTrial:
    def test_rejects_unsafe_key(self):
        with pytest.raises(CampaignError):
            Trial(key="a/b", func=square_trial)
        with pytest.raises(CampaignError):
            Trial(key=".hidden", func=square_trial)

    def test_rejects_non_callable(self):
        with pytest.raises(CampaignError):
            Trial(key="ok", func="not-a-function")

    def test_func_id_names_module(self):
        t = Trial(key="ok", func=square_trial)
        assert t.func_id.endswith(":square_trial")


class TestRunCampaign:
    def test_runs_and_persists(self, tmp_path):
        result = run_campaign(trials_for(3), tmp_path / "c")
        assert result.complete
        assert result.executed == ("t00", "t01", "t02")
        assert result.aggregate() == [
            {"value": 0},
            {"value": 1},
            {"value": 4},
        ]
        stored = json.loads(
            (tmp_path / "c" / "trials" / "t01.json").read_text()
        )
        assert stored["payload"] == {"value": 1}
        manifest = json.loads(
            (tmp_path / "c" / "manifest.json").read_text()
        )
        assert manifest["trials"] == ["t00", "t01", "t02"]

    def test_duplicate_keys_rejected(self, tmp_path):
        trials = trials_for(2) + trials_for(1)
        with pytest.raises(CampaignError, match="duplicate"):
            run_campaign(trials, tmp_path / "c")

    def test_resume_skips_persisted(self, tmp_path):
        out = tmp_path / "c"
        first = run_campaign(trials_for(3), out)
        again = run_campaign(trials_for(3), out)
        assert again.executed == ()
        assert again.resumed == ("t00", "t01", "t02")
        assert again.aggregate_json() == first.aggregate_json()

    def test_interrupt_and_resume_bit_identical(self, tmp_path):
        uninterrupted = run_campaign(trials_for(5), tmp_path / "a")
        partial = run_campaign(
            trials_for(5), tmp_path / "b", max_trials=2
        )
        assert not partial.complete
        assert partial.pending == ("t02", "t03", "t04")
        finished = run_campaign(trials_for(5), tmp_path / "b")
        assert finished.complete
        assert finished.resumed == ("t00", "t01")
        assert (
            finished.aggregate_json() == uninterrupted.aggregate_json()
        )

    def test_torn_result_file_is_reexecuted(self, tmp_path):
        out = tmp_path / "c"
        run_campaign(trials_for(2), out)
        # simulate a torn write (can't happen with os.replace, but a
        # disk error or manual tampering can still truncate the file)
        (out / "trials" / "t01.json").write_text('{"format": "repr')
        again = run_campaign(trials_for(2), out)
        assert again.executed == ("t01",)
        assert again.results["t01"] == {"value": 1}

    def test_different_campaign_rejected(self, tmp_path):
        out = tmp_path / "c"
        run_campaign(trials_for(2), out)
        with pytest.raises(CampaignError, match="different campaign"):
            run_campaign(trials_for(3), out)
        with pytest.raises(CampaignError, match="different campaign"):
            run_campaign(
                [Trial(key="t00", func=failing_trial),
                 Trial(key="t01", func=failing_trial)],
                out,
            )

    def test_corrupt_manifest_rejected(self, tmp_path):
        out = tmp_path / "c"
        run_campaign(trials_for(1), out)
        (out / "manifest.json").write_text("{not json")
        with pytest.raises(CampaignError, match="unreadable"):
            run_campaign(trials_for(1), out)

    def test_failure_quarantined_run_continues(self, tmp_path):
        trials = [
            Trial(key="bad", func=failing_trial,
                  kwargs={"message": "exploded"}),
            Trial(key="good", func=square_trial, kwargs={"x": 3}),
        ]
        result = run_campaign(
            trials, tmp_path / "c", max_retries=1, retry_backoff=0.0
        )
        assert result.complete
        assert result.results == {"good": {"value": 9}}
        failure = result.quarantined["bad"]
        assert failure.kind == "exception"
        assert failure.attempts == 2  # first try + one retry
        assert "exploded" in failure.error
        # the quarantine record is carried forward on resume
        again = run_campaign(
            trials, tmp_path / "c", max_retries=1, retry_backoff=0.0
        )
        assert again.executed == ()
        assert again.quarantined["bad"].kind == "exception"

    def test_retry_recovers_transient_failure(self, tmp_path):
        marker = tmp_path / "marker"
        trials = [
            Trial(
                key="flaky",
                func=flaky_trial,
                kwargs={"marker": str(marker)},
            )
        ]
        result = run_campaign(
            trials, tmp_path / "c", max_retries=2, retry_backoff=0.0
        )
        assert result.results["flaky"] == {"recovered": True}
        assert not result.quarantined

    def test_timeout_quarantines(self, tmp_path):
        trials = [
            Trial(key="slow", func=sleepy_trial, kwargs={"seconds": 30.0})
        ]
        result = run_campaign(
            trials,
            tmp_path / "c",
            trial_timeout=0.3,
            max_retries=0,
        )
        assert result.quarantined["slow"].kind == "timeout"

    def test_subprocess_crash_quarantines(self, tmp_path):
        trials = [Trial(key="crash", func=crashing_trial)]
        result = run_campaign(
            trials, tmp_path / "c", max_retries=0, retry_backoff=0.0
        )
        failure = result.quarantined["crash"]
        assert failure.kind == "crash"
        assert "exit code 7" in failure.error

    def test_unserializable_payload_quarantines(self, tmp_path):
        trials = [Trial(key="bad", func=unserializable_trial)]
        result = run_campaign(trials, tmp_path / "c", max_retries=5)
        failure = result.quarantined["bad"]
        assert failure.kind == "unserializable"
        assert failure.attempts == 1  # retrying cannot help

    def test_retry_quarantined(self, tmp_path):
        marker = tmp_path / "marker"
        trials = [
            Trial(
                key="flaky",
                func=flaky_trial,
                kwargs={"marker": str(marker)},
            )
        ]
        out = tmp_path / "c"
        first = run_campaign(
            trials, out, max_retries=0, retry_backoff=0.0
        )
        assert "flaky" in first.quarantined  # marker now exists
        stuck = run_campaign(trials, out)
        assert "flaky" in stuck.quarantined  # carried forward
        healed = run_campaign(trials, out, retry_quarantined=True)
        assert healed.results["flaky"] == {"recovered": True}

    def test_progress_callback(self, tmp_path):
        seen = []
        run_campaign(
            trials_for(2),
            tmp_path / "c",
            progress=lambda key, state: seen.append((key, state)),
        )
        assert seen == [("t00", "ok"), ("t01", "ok")]

    def test_status(self, tmp_path):
        out = tmp_path / "c"
        trials = trials_for(3) + [
            Trial(key="bad", func=failing_trial)
        ]
        run_campaign(
            trials, out, max_trials=2, max_retries=0, retry_backoff=0.0
        )
        status = campaign_status(out)
        assert status["done"] == 2
        assert status["pending"] == 2
        run_campaign(trials, out, max_retries=0, retry_backoff=0.0)
        status = campaign_status(out)
        assert status["done"] == 3
        assert status["quarantined"] == 1
        assert status["pending"] == 0
        assert status["status"]["bad"] == "quarantined"

    def test_status_without_manifest(self, tmp_path):
        with pytest.raises(CampaignError):
            campaign_status(tmp_path / "nope")

    def test_invalid_parameters(self, tmp_path):
        with pytest.raises(CampaignError, match="max_retries"):
            run_campaign(trials_for(1), tmp_path / "c", max_retries=-1)
        with pytest.raises(CampaignError, match="retry_backoff"):
            run_campaign(
                trials_for(1), tmp_path / "d", retry_backoff=-0.5
            )


class TestHarnessBridge:
    def test_record_round_trip(self, fft8_ptg, grelon_cluster):
        emts = emts5(generations=1)
        result = run_comparison(
            {"fft": [fft8_ptg]},
            [grelon_cluster],
            SyntheticModel(),
            emts,
            [make_allocator("hcpa")],
            seed=7,
        )
        record = result.records[0]
        data = record_to_dict(record)
        json.dumps(data)  # must be JSON-serializable
        assert record_from_dict(data) == record

    def test_campaign_matches_monolithic_harness(
        self, fft8_ptg, diamond_ptg, grelon_cluster, tmp_path
    ):
        ptgs = {"fft": [fft8_ptg], "diamond": [diamond_ptg]}
        emts = emts5(generations=1)
        model = SyntheticModel()
        baselines = [make_allocator("hcpa"), make_allocator("mcpa")]
        direct = run_comparison(
            ptgs, [grelon_cluster], model, emts, baselines, seed=3
        )
        comparison, campaign = run_comparison_campaign(
            ptgs,
            [grelon_cluster],
            model,
            emts,
            baselines,
            tmp_path / "c",
            seed=3,
        )
        assert isinstance(campaign, CampaignResult)
        assert campaign.complete and not campaign.quarantined
        key = lambda r: (r.platform, r.ptg_class, r.ptg_name)  # noqa: E731
        for mine, theirs in zip(
            sorted(comparison.records, key=key),
            sorted(direct.records, key=key),
        ):
            assert mine.emts_makespan == theirs.emts_makespan
            assert mine.baseline_makespans == theirs.baseline_makespans
            assert mine.emts_evaluations == theirs.emts_evaluations

    def test_campaign_resume_reuses_records(
        self, fft8_ptg, grelon_cluster, tmp_path
    ):
        ptgs = {"fft": [fft8_ptg]}
        emts = emts5(generations=1)
        model = SyntheticModel()
        baselines = [make_allocator("hcpa")]
        out = tmp_path / "c"
        first, campaign1 = run_comparison_campaign(
            ptgs, [grelon_cluster], model, emts, baselines, out, seed=5
        )
        second, campaign2 = run_comparison_campaign(
            ptgs, [grelon_cluster], model, emts, baselines, out, seed=5
        )
        assert campaign2.executed == ()
        assert campaign2.resumed == campaign1.executed
        # resumed records are loaded from disk: bit-identical, seconds
        # and all
        assert second.records == first.records

    def test_trial_keys_are_stable_and_safe(
        self, fft8_ptg, grelon_cluster
    ):
        trials = comparison_trials(
            {"fft": [fft8_ptg]},
            [grelon_cluster],
            SyntheticModel(),
            emts5(generations=1),
            [make_allocator("hcpa")],
            seed=1,
        )
        assert len(trials) == 1
        assert trials[0].key.startswith("grelon.fft.000.")
        # building the list twice gives identical trials (same seeds)
        again = comparison_trials(
            {"fft": [fft8_ptg]},
            [grelon_cluster],
            SyntheticModel(),
            emts5(generations=1),
            [make_allocator("hcpa")],
            seed=1,
        )
        assert [t.key for t in again] == [t.key for t in trials]
        assert (
            again[0].kwargs["rng_seed"] == trials[0].kwargs["rng_seed"]
        )
