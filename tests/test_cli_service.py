"""CLI round trip: a real `repro-emts serve` daemon driven by `submit`."""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import EXIT_QUEUE_FULL, EXIT_TIMEOUT, build_parser

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")


@pytest.fixture
def daemon(tmp_path):
    """`repro-emts serve` as a subprocess on an ephemeral port."""
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--port", "0",
            "--service-workers", "1",
            "--spool", str(tmp_path / "spool"),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    port = None
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line and proc.poll() is not None:
            break
        m = re.search(r"listening on http://[\d.]+:(\d+)", line)
        if m:
            port = int(m.group(1))
            break
    if port is None:
        proc.kill()
        pytest.fail("serve never printed its bound address")
    yield proc, port, env
    if proc.poll() is None:
        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()


def run_submit(port, env, *extra):
    return subprocess.run(
        [
            sys.executable, "-m", "repro.cli", "submit",
            "--port", str(port),
            "--kind", "fft", "--size", "4", "--seed", "7",
            "--platform", "chti", "--model", "amdahl",
            "--timeout", "120",
            *extra,
        ],
        capture_output=True,
        text=True,
        env=env,
        timeout=180,
    )


class TestServeSubmitRoundTrip:
    def test_submit_succeeds_and_prints_makespan(self, daemon, tmp_path):
        proc, port, env = daemon
        out_path = tmp_path / "response.json"
        result = run_submit(port, env, "--output", str(out_path))
        assert result.returncode == 0, result.stderr
        assert "makespan" in result.stdout
        doc = json.loads(out_path.read_text())
        assert doc["job"]["state"] == "done"
        assert doc["result"]["verified"] is True

        # a repeat submission is served from the cross-request cache
        again = run_submit(port, env, "--json")
        assert again.returncode == 0, again.stderr
        doc2 = json.loads(again.stdout)
        assert doc2["job"]["served_from"] == "result-cache"
        assert json.dumps(
            doc["result"], sort_keys=True
        ) == json.dumps(doc2["result"], sort_keys=True)

    def test_sigterm_drains_cleanly(self, daemon):
        proc, port, env = daemon
        assert run_submit(port, env).returncode == 0
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=30) == 0
        rest = proc.stdout.read()
        assert "drain complete" in rest

    def test_unreachable_daemon_exit_code(self, daemon):
        _, port, env = daemon
        # a port nothing listens on: generic failure, not 75/124
        result = run_submit(1, env)
        assert result.returncode == 1
        assert "error" in result.stderr


class TestExitCodes:
    def test_exit_code_constants(self):
        # sysexits EX_TEMPFAIL and timeout(1) conventions, pinned so
        # shell scripts can rely on them
        assert EXIT_QUEUE_FULL == 75
        assert EXIT_TIMEOUT == 124

    def test_parser_has_serve_and_submit(self):
        parser = build_parser()
        args = parser.parse_args(
            ["serve", "--port", "0", "--service-workers", "3"]
        )
        assert args.func.__name__ == "_cmd_serve"
        assert args.service_workers == 3
        args = parser.parse_args(
            ["submit", "--kind", "fft", "--size", "4", "--priority", "2"]
        )
        assert args.func.__name__ == "_cmd_submit"
        assert args.priority == 2
