"""Unit tests for Downey's speedup model — repro.timemodels.downey."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.graph import Task
from repro.platform import Cluster
from repro.timemodels import DowneyModel, TimeTable, downey_speedup


@pytest.fixture
def cluster():
    return Cluster("c", num_processors=64, speed_gflops=1.0)


class TestDowneySpeedup:
    def test_single_processor_no_speedup(self):
        assert downey_speedup(1, A=16.0, sigma=0.5) == pytest.approx(1.0)

    def test_speedup_caps_at_A_low_variance(self):
        A = 8.0
        assert downey_speedup(64, A=A, sigma=0.5) == pytest.approx(A)

    def test_speedup_caps_at_A_high_variance(self):
        A = 8.0
        assert downey_speedup(1000, A=A, sigma=2.0) == pytest.approx(A)

    def test_linear_speedup_when_sigma_zero(self):
        # sigma = 0: perfectly parallel up to A processors
        for n in (1, 2, 4, 8):
            assert downey_speedup(n, A=8.0, sigma=0.0) == pytest.approx(
                float(n)
            )

    def test_monotone_nondecreasing(self):
        n = np.arange(1, 65)
        for sigma in (0.0, 0.5, 1.0, 2.0):
            s = downey_speedup(n, A=16.0, sigma=sigma)
            assert np.all(np.diff(s) >= -1e-12)

    def test_never_below_one(self):
        n = np.arange(1, 200)
        s = downey_speedup(n, A=4.0, sigma=5.0)
        assert np.all(s >= 1.0)

    def test_higher_variance_lower_speedup(self):
        n = np.arange(2, 17)
        s_low = downey_speedup(n, A=16.0, sigma=0.2)
        s_high = downey_speedup(n, A=16.0, sigma=2.0)
        assert np.all(s_high <= s_low + 1e-12)

    def test_invalid_parameters(self):
        with pytest.raises(ModelError):
            downey_speedup(4, A=0.5, sigma=0.5)
        with pytest.raises(ModelError):
            downey_speedup(4, A=8.0, sigma=-1.0)


class TestDowneyModel:
    def test_monotone_table(self, fft8_ptg, cluster):
        table = TimeTable.build(DowneyModel(), fft8_ptg, cluster)
        assert table.is_monotone()

    def test_alpha_derived_parallelism(self, cluster):
        # alpha = 0.25 -> A = 4: time bottoms out at seq/4
        t = Task("t", work=8e9, alpha=0.25)
        model = DowneyModel(sigma=0.0)
        assert model.time(t, 64, cluster) == pytest.approx(2.0)

    def test_alpha_zero_means_full_machine(self, cluster):
        t = Task("t", work=64e9, alpha=0.0)
        model = DowneyModel(sigma=0.0)
        assert model.time(t, 64, cluster) == pytest.approx(1.0)

    def test_fixed_parallelism_mode(self, cluster):
        t = Task("t", work=8e9, alpha=0.9)  # alpha ignored
        model = DowneyModel(
            sigma=0.0,
            parallelism_from_alpha=False,
            fixed_parallelism=8.0,
        )
        assert model.time(t, 64, cluster) == pytest.approx(1.0)

    def test_table_matches_scalar(self, fft8_ptg, cluster):
        model = DowneyModel(sigma=0.7)
        table = model.build_table(fft8_ptg, cluster)
        for v in (0, 20):
            for p in (1, 5, 64):
                assert table[v, p - 1] == pytest.approx(
                    model.time(fft8_ptg.task(v), p, cluster)
                )

    def test_invalid_config(self):
        with pytest.raises(ModelError):
            DowneyModel(sigma=-0.1)
        with pytest.raises(ModelError):
            DowneyModel(fixed_parallelism=0.0)
