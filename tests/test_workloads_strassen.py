"""Unit tests for the Strassen PTG generator."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graph import precedence_levels, validate_ptg
from repro.workloads import generate_strassen, strassen_task_count


class TestTaskCount:
    def test_single_level_is_23(self):
        assert strassen_task_count(1) == 23

    def test_recursive_counts(self):
        # count(k) = 16 + 7*count(k-1)
        assert strassen_task_count(2) == 16 + 7 * 23

    def test_invalid_depth(self):
        with pytest.raises(GraphError):
            strassen_task_count(0)


class TestStructure:
    def test_generated_size(self):
        assert generate_strassen(rng=1).num_tasks == 23

    def test_single_source_single_sink(self):
        g = generate_strassen(rng=2)
        assert len(g.sources) == 1
        assert len(g.sinks) == 1
        assert g.task(g.sources[0]).kind == "strassen-split"
        assert g.task(g.sinks[0]).kind == "strassen-assemble"

    def test_seven_multiplications(self):
        g = generate_strassen(rng=3)
        mults = [t for t in g.tasks if t.kind == "strassen-mult"]
        assert len(mults) == 7

    def test_ten_additions_four_combines(self):
        g = generate_strassen(rng=4)
        assert sum(t.kind == "strassen-add" for t in g.tasks) == 10
        assert sum(t.kind == "strassen-combine" for t in g.tasks) == 4

    def test_five_precedence_levels(self):
        g = generate_strassen(rng=5)
        lv = precedence_levels(g)
        assert int(lv.max()) == 4  # partition, adds, mults, combines, sink

    def test_mults_depend_on_their_operands(self):
        g = generate_strassen(rng=6)
        m1 = g.index("M1")
        pred_names = {g.task(u).name for u in g.predecessors(m1)}
        assert pred_names == {"S1", "S2"}

    def test_combine_terms(self):
        g = generate_strassen(rng=7)
        c11 = g.index("C11")
        pred_names = {g.task(u).name for u in g.predecessors(c11)}
        assert pred_names == {"M1", "M4", "M5", "M7"}

    def test_validates(self):
        rep = validate_ptg(
            generate_strassen(rng=8), require_connected=True
        )
        assert rep.ok, str(rep)


class TestRecursive:
    def test_depth2_size(self):
        g = generate_strassen(rng=9, depth=2)
        assert g.num_tasks == strassen_task_count(2)

    def test_depth2_validates(self):
        rep = validate_ptg(
            generate_strassen(rng=10, depth=2), require_connected=True
        )
        assert rep.ok, str(rep)

    def test_invalid_depth(self):
        with pytest.raises(GraphError):
            generate_strassen(rng=1, depth=0)


class TestCosts:
    def test_mult_cost_dominates_adds(self):
        g = generate_strassen(rng=11, data_size=1e8)
        mult_work = min(
            t.work for t in g.tasks if t.kind == "strassen-mult"
        )
        add_work = max(
            t.work for t in g.tasks if t.kind == "strassen-add"
        )
        assert mult_work > add_work

    def test_fixed_data_size(self):
        g = generate_strassen(rng=12, data_size=4e6)
        src = g.task(g.sources[0])
        assert src.data_size == 4e6

    def test_same_seed_reproducible(self):
        assert generate_strassen(rng=13) == generate_strassen(rng=13)
