"""Bit-identity property suite for the compiled scheduling kernel.

The compiled :class:`~repro.mapping.kernel.ScheduleKernel` promises
results **bit-identical** to the reference list scheduler — not merely
approximately equal.  This suite sweeps seeded daggen graphs crossed
with both paper time models (Model 1 = Amdahl, Model 2 = synthetic) and
random allocation vectors, comparing makespans, start times, finish
times and committed processor sets against the ``compiled=False``
reference engine with exact ``==`` / ``array_equal`` checks.

The seeded sweep covers well over 200 (graph, model, allocation) cases;
``test_case_count_floor`` pins that floor so a parameter edit cannot
silently shrink the coverage.
"""

import os
import pickle
from pathlib import Path

import numpy as np
import pytest

from repro._rng import spawn
from repro.exceptions import AllocationError
from repro.graph import bottom_levels, top_levels
from repro.mapping import makespan_of, map_allocations
from repro.mapping.kernel import ScheduleKernel, kernel_for
from repro.platform import Cluster
from repro.timemodels import AmdahlModel, SyntheticModel, TimeTable
from repro.workloads import DaggenParams, generate_daggen

# The sweep: |GRAPH_CASES| x |MODELS| x ALLOCS_PER_CASE cases.
GRAPH_CASES = [
    # (daggen seed, num_tasks, width, density, jump, P)
    (11, 12, 0.3, 0.4, 1, 3),
    (12, 20, 0.5, 0.5, 2, 8),
    (13, 30, 0.8, 0.2, 1, 16),
    (14, 40, 0.2, 0.6, 3, 5),
    (15, 25, 0.5, 0.8, 2, 32),
    (16, 50, 0.6, 0.3, 2, 12),
    (17, 35, 0.4, 0.5, 4, 24),
    (18, 15, 0.9, 0.7, 1, 2),
    (19, 45, 0.5, 0.4, 2, 64),
    (20, 28, 0.7, 0.6, 3, 7),
]
MODELS = [AmdahlModel, SyntheticModel]
ALLOCS_PER_CASE = 12


def _problem(case, model_cls):
    seed, n, width, density, jump, P = case
    ptg = generate_daggen(
        DaggenParams(
            num_tasks=n,
            width=width,
            regularity=0.2,
            density=density,
            jump=jump,
        ),
        rng=seed,
    )
    cluster = Cluster(f"prop{P}", num_processors=P, speed_gflops=1.0)
    table = TimeTable.build(model_cls(), ptg, cluster)
    return ptg, table


def _random_allocs(case, model_cls, num):
    seed, n, *_rest, P = case
    rng = spawn(seed, "kernel-prop", model_cls.__name__)
    return rng.integers(1, P + 1, size=(num, n), dtype=np.int64)


def test_case_count_floor():
    total = len(GRAPH_CASES) * len(MODELS) * ALLOCS_PER_CASE
    assert total >= 200


@pytest.mark.parametrize("model_cls", MODELS)
@pytest.mark.parametrize("case", GRAPH_CASES)
def test_kernel_bit_identical_to_reference(case, model_cls):
    """Makespan, start/finish times and processor choices match the
    reference engine exactly on every random allocation."""
    ptg, table = _problem(case, model_cls)
    for alloc in _random_allocs(case, model_cls, ALLOCS_PER_CASE):
        fast = makespan_of(ptg, table, alloc, compiled=True)
        ref = makespan_of(ptg, table, alloc, compiled=False)
        assert fast == ref  # bitwise, no tolerance

        sched = map_allocations(ptg, table, alloc, compiled=True)
        oracle = map_allocations(ptg, table, alloc, compiled=False)
        assert np.array_equal(sched.start, oracle.start)
        assert np.array_equal(sched.finish, oracle.finish)
        assert len(sched.proc_sets) == len(oracle.proc_sets)
        for got, want in zip(sched.proc_sets, oracle.proc_sets):
            assert np.array_equal(got, want)


@pytest.mark.parametrize("model_cls", MODELS)
@pytest.mark.parametrize("case", GRAPH_CASES)
def test_kernel_abort_bit_identical(case, model_cls):
    """The rejection path agrees exactly with the reference: same
    decision (inf vs finite) and the same value when finite."""
    ptg, table = _problem(case, model_cls)
    allocs = _random_allocs(case, model_cls, 4)
    honest = [
        makespan_of(ptg, table, a, compiled=False) for a in allocs
    ]
    # bounds below, at, and above each honest makespan
    for alloc, ms in zip(allocs, honest):
        for bound in (ms * 0.5, ms, ms * 1.5, min(honest)):
            fast = makespan_of(
                ptg, table, alloc, abort_above=bound, compiled=True
            )
            ref = makespan_of(
                ptg, table, alloc, abort_above=bound, compiled=False
            )
            assert fast == ref or (
                np.isinf(fast) and np.isinf(ref)
            )


@pytest.mark.parametrize("model_cls", MODELS)
def test_makespan_batch_matches_scalar(model_cls):
    case = GRAPH_CASES[1]
    ptg, table = _problem(case, model_cls)
    kernel = kernel_for(table)
    block = _random_allocs(case, model_cls, 20)
    batch = kernel.makespan_batch(block)
    for value, alloc in zip(batch, block):
        assert value == kernel.makespan(alloc)
    bound = float(np.median(batch))
    bounded = kernel.makespan_batch(block, abort_above=bound)
    for value, alloc in zip(bounded, block):
        assert value == kernel.makespan(alloc, abort_above=bound)


@pytest.mark.parametrize("model_cls", MODELS)
def test_levels_match_graph_analysis(model_cls):
    """kernel.levels() reproduces the vectorized graph sweeps bitwise
    (CPA/HCPA/MCPA rely on this for identical allocation decisions)."""
    for case in GRAPH_CASES[:5]:
        ptg, table = _problem(case, model_cls)
        kernel = kernel_for(table)
        for alloc in _random_allocs(case, model_cls, 3):
            times = table.times_for(alloc)
            bl, tl = kernel.levels(times)
            assert np.array_equal(bl, bottom_levels(ptg, times))
            assert np.array_equal(tl, top_levels(ptg, times))


def test_pickle_roundtrip_bit_identical():
    """Workers receive the kernel by pickle; the rebuilt kernel (with
    regenerated compiled sweeps) must agree bitwise."""
    case = GRAPH_CASES[2]
    ptg, table = _problem(case, SyntheticModel)
    kernel = ScheduleKernel(ptg, table)
    clone = pickle.loads(pickle.dumps(kernel))
    for alloc in _random_allocs(case, SyntheticModel, 6):
        assert clone.makespan(alloc) == kernel.makespan(alloc)
        ms_c, st_c, fi_c, ps_c = clone.run(alloc, build_schedule=True)
        ms_k, st_k, fi_k, ps_k = kernel.run(alloc, build_schedule=True)
        assert ms_c == ms_k
        assert np.array_equal(st_c, st_k)
        assert np.array_equal(fi_c, fi_k)
        for a, b in zip(ps_c, ps_k):
            assert np.array_equal(a, b)


def test_native_loop_matches_python_loop():
    """The C scheduling loop agrees bitwise with the numpy loop on the
    same kernel instance — scalar, batch and bounded entry points."""
    case = GRAPH_CASES[4]
    ptg, table = _problem(case, SyntheticModel)
    kernel = ScheduleKernel(ptg, table)
    if kernel._c is None:
        pytest.skip("native scheduler unavailable on this host")
    allocs = _random_allocs(case, SyntheticModel, 8)
    native = [kernel.makespan(a) for a in allocs]
    native_batch = kernel.makespan_batch(allocs)
    bound = sorted(native)[len(native) // 2]
    native_bounded = [
        kernel.makespan(a, abort_above=bound) for a in allocs
    ]
    kernel._c = None  # same buffers, numpy loop
    assert [kernel.makespan(a) for a in allocs] == native
    assert kernel.makespan_batch(allocs) == native_batch
    assert [
        kernel.makespan(a, abort_above=bound) for a in allocs
    ] == native_bounded
    assert any(np.isinf(v) for v in native_bounded)
    assert any(np.isfinite(v) for v in native_bounded)


def test_no_ckernel_env_forces_python_loop(monkeypatch):
    """REPRO_NO_CKERNEL=1 disables the native loop; results and the
    public behaviour are unchanged."""
    from repro.mapping import _cscheduler

    monkeypatch.setenv("REPRO_NO_CKERNEL", "1")
    monkeypatch.setattr(_cscheduler, "_tried", False)
    monkeypatch.setattr(_cscheduler, "_ffi", None)
    monkeypatch.setattr(_cscheduler, "_lib", None)
    case = GRAPH_CASES[0]
    ptg, table = _problem(case, SyntheticModel)
    kernel = ScheduleKernel(ptg, table)
    assert kernel._c is None
    for alloc in _random_allocs(case, SyntheticModel, 3):
        assert kernel.makespan(alloc) == makespan_of(
            ptg, table, alloc, compiled=False
        )


def test_interpreted_sweep_fallback_bit_identical(monkeypatch):
    """Above the unroll limit the kernel falls back to interpreted
    level sweeps; force that path (native loop off) and re-check
    bit-identity."""
    from repro.mapping import kernel as kernel_mod

    monkeypatch.setattr(kernel_mod, "_BL_UNROLL_LIMIT", 0)
    case = GRAPH_CASES[3]
    ptg, table = _problem(case, AmdahlModel)
    kernel = ScheduleKernel(ptg, table)
    kernel._c = None  # exercise the interpreted Python sweeps
    assert kernel._bl_compiled is None
    assert kernel._tl_compiled is None
    for alloc in _random_allocs(case, AmdahlModel, 4):
        assert kernel.makespan(alloc) == makespan_of(
            ptg, table, alloc, compiled=False
        )
        times = table.times_for(alloc)
        bl, tl = kernel.levels(times)
        assert np.array_equal(bl, bottom_levels(ptg, times))
        assert np.array_equal(tl, top_levels(ptg, times))


class TestErrorPaths:
    @pytest.fixture(scope="class")
    def kernel(self):
        _, table = _problem(GRAPH_CASES[0], SyntheticModel)
        return kernel_for(table)

    def test_alloc_below_range(self, kernel):
        alloc = np.ones(kernel.num_tasks, dtype=np.int64)
        alloc[0] = 0
        with pytest.raises(AllocationError):
            kernel.makespan(alloc)

    def test_alloc_above_range(self, kernel):
        alloc = np.ones(kernel.num_tasks, dtype=np.int64)
        alloc[-1] = kernel.num_processors + 1
        with pytest.raises(AllocationError):
            kernel.makespan(alloc)

    def test_alloc_wrong_shape(self, kernel):
        with pytest.raises(AllocationError):
            kernel.makespan(
                np.ones(kernel.num_tasks + 1, dtype=np.int64)
            )

    def test_batch_out_of_range(self, kernel):
        block = np.ones((3, kernel.num_tasks), dtype=np.int64)
        block[1, 2] = -4
        with pytest.raises(AllocationError):
            kernel.makespan_batch(block)

    def test_batch_wrong_shape(self, kernel):
        with pytest.raises(AllocationError):
            kernel.makespan_batch(
                np.ones((2, kernel.num_tasks + 1), dtype=np.int64)
            )

    def test_batch_non_integral_floats(self, kernel):
        block = np.ones((2, kernel.num_tasks), dtype=np.float64)
        block[0, 0] = 1.5
        with pytest.raises(AllocationError):
            kernel.makespan_batch(block)

    def test_levels_wrong_shape(self, kernel):
        with pytest.raises(AllocationError):
            kernel.levels(np.ones(kernel.num_tasks + 2))

    def test_batch_integral_floats_accepted(self, kernel):
        block = np.full((2, kernel.num_tasks), 2.0)
        exact = np.full((2, kernel.num_tasks), 2, dtype=np.int64)
        assert kernel.makespan_batch(block) == kernel.makespan_batch(
            exact
        )


class TestNativeCacheRecovery:
    """The cffi build cache degrades gracefully: corrupt cached
    libraries are rebuilt once, build failures fall back to numpy."""

    def _reset_loader(self, monkeypatch, cache_dir):
        from repro.mapping import _cscheduler

        monkeypatch.delenv("REPRO_NO_CKERNEL", raising=False)
        monkeypatch.setenv("REPRO_CKERNEL_CACHE", str(cache_dir))
        monkeypatch.setattr(_cscheduler, "_tried", False)
        monkeypatch.setattr(_cscheduler, "_ffi", None)
        monkeypatch.setattr(_cscheduler, "_lib", None)
        return _cscheduler

    def test_corrupt_cached_library_is_rebuilt(self, tmp_path, monkeypatch):
        pytest.importorskip("cffi")
        _cscheduler = self._reset_loader(monkeypatch, tmp_path)
        # both build variants (with and without OpenMP) have their own
        # cached artifact; corrupt them all so whichever the loader
        # picks must go through the delete-and-rebuild path
        garbage = b"not an ELF shared object"
        candidates = [
            _cscheduler._lib_path(openmp) for openmp in (True, False)
        ]
        for path in candidates:
            path.write_bytes(garbage)

        ffi, lib = _cscheduler.load()
        if ffi is None:
            pytest.skip("no C compiler available to rebuild the cache")
        assert lib is not None
        # the loaded variant's garbage file was deleted and replaced
        # by a real build
        assert any(
            path.exists() and path.read_bytes() != garbage
            for path in candidates
        )
        assert lib.schedule_makespan is not None

    def test_build_failure_degrades_to_numpy_path(
        self, tmp_path, monkeypatch, caplog
    ):
        import logging

        pytest.importorskip("cffi")
        _cscheduler = self._reset_loader(monkeypatch, tmp_path)
        monkeypatch.setenv("CC", str(tmp_path / "no-such-compiler"))
        with caplog.at_level(logging.WARNING, "repro.mapping.ckernel"):
            assert _cscheduler.load() == (None, None)
        assert any(
            "falling back to the numpy path" in r.message
            for r in caplog.records
        )


class TestCompileCacheLock:
    """The cffi build cache is file-locked: concurrent workers cannot
    race the delete+rebuild path into loading a half-written library."""

    def test_lock_excludes_concurrent_holder(self, tmp_path):
        import threading
        import time as _time

        pytest.importorskip("fcntl")
        from repro.mapping._cscheduler import _compile_cache_lock

        events = []
        entered = threading.Event()
        release = threading.Event()

        def holder():
            with _compile_cache_lock(tmp_path):
                events.append("holder-in")
                entered.set()
                release.wait(timeout=10)
                events.append("holder-out")

        t = threading.Thread(target=holder)
        t.start()
        assert entered.wait(timeout=10)
        # flock is per-fd, so a second acquisition in this process
        # must block until the holder releases — same as a second
        # worker process would
        waiter_done = threading.Event()

        def waiter():
            with _compile_cache_lock(tmp_path):
                events.append("waiter-in")
            waiter_done.set()

        w = threading.Thread(target=waiter)
        w.start()
        _time.sleep(0.1)
        assert not waiter_done.is_set(), "lock did not exclude"
        release.set()
        assert waiter_done.wait(timeout=10)
        t.join(timeout=10)
        w.join(timeout=10)
        assert events == ["holder-in", "holder-out", "waiter-in"]

    def test_lock_file_lives_in_cache_dir(self, tmp_path):
        pytest.importorskip("fcntl")
        from repro.mapping._cscheduler import _compile_cache_lock

        with _compile_cache_lock(tmp_path):
            assert (tmp_path / ".build.lock").exists()

    def test_concurrent_fresh_builds_all_load(self, tmp_path):
        """N processes pointed at one empty cache all get a working
        kernel; the lock serializes the compile instead of letting the
        unlink/rebuild races corrupt it."""
        import subprocess
        import sys

        pytest.importorskip("cffi")
        from repro.mapping import _cscheduler

        if _cscheduler.load()[0] is None:
            pytest.skip("no C compiler available")
        code = (
            "from repro.mapping import _cscheduler\n"
            "ffi, lib = _cscheduler.load()\n"
            "assert lib is not None and lib.schedule_makespan is not None\n"
            "print('loaded')\n"
        )
        env = dict(os.environ)
        env["REPRO_CKERNEL_CACHE"] = str(tmp_path)
        env.pop("REPRO_NO_CKERNEL", None)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", code],
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
                env=env,
            )
            for _ in range(3)
        ]
        for p in procs:
            out, err = p.communicate(timeout=300)
            assert p.returncode == 0, err
            assert "loaded" in out
