"""Unit tests for reproducible RNG-stream management."""

import numpy as np
import pytest

from repro._rng import (
    DEFAULT_SEED,
    ensure_generator,
    iter_seeds,
    key_to_int,
    spawn,
    spawn_children,
)


class TestSpawn:
    def test_same_path_same_stream(self):
        a = spawn(1, "x", "y").random(5)
        b = spawn(1, "x", "y").random(5)
        assert np.array_equal(a, b)

    def test_different_keys_differ(self):
        a = spawn(1, "x").random(5)
        b = spawn(1, "y").random(5)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = spawn(1, "x").random(5)
        b = spawn(2, "x").random(5)
        assert not np.array_equal(a, b)

    def test_none_uses_default(self):
        a = spawn(None, "x").random(3)
        b = spawn(DEFAULT_SEED, "x").random(3)
        assert np.array_equal(a, b)

    def test_key_order_matters(self):
        a = spawn(1, "x", "y").random(3)
        b = spawn(1, "y", "x").random(3)
        assert not np.array_equal(a, b)


class TestKeyToInt:
    def test_stable(self):
        assert key_to_int("workloads") == key_to_int("workloads")

    def test_32bit(self):
        assert 0 <= key_to_int("anything") < 2**32


class TestEnsureGenerator:
    def test_passthrough(self):
        g = np.random.default_rng(0)
        assert ensure_generator(g) is g

    def test_int_seed(self):
        a = ensure_generator(5, "k").random(3)
        b = ensure_generator(5, "k").random(3)
        assert np.array_equal(a, b)


class TestChildren:
    def test_spawn_children_independent(self):
        parent = np.random.default_rng(3)
        kids = spawn_children(parent, 3)
        draws = [k.random(4) for k in kids]
        assert not np.array_equal(draws[0], draws[1])
        assert not np.array_equal(draws[1], draws[2])

    def test_spawn_children_negative(self):
        with pytest.raises(ValueError):
            spawn_children(np.random.default_rng(0), -1)

    def test_iter_seeds_stream(self):
        it = iter_seeds(np.random.default_rng(1))
        seeds = [next(it) for _ in range(5)]
        assert len(set(seeds)) == 5
        assert all(isinstance(s, int) for s in seeds)
