"""Unit tests for the PDGEMM-like model (Figure 1 substrate)."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.graph import Task
from repro.platform import Cluster
from repro.timemodels import (
    PdgemmLikeModel,
    TimeTable,
    best_grid,
    pdgemm_time,
)


class TestBestGrid:
    @pytest.mark.parametrize(
        "p,expected",
        [
            (1, (1, 1)),
            (2, (1, 2)),
            (4, (2, 2)),
            (6, (2, 3)),
            (12, (3, 4)),
            (16, (4, 4)),
            (24, (4, 6)),
            (36, (6, 6)),
            (120, (10, 12)),
        ],
    )
    def test_squarest_factorization(self, p, expected):
        assert best_grid(p) == expected

    def test_prime_degenerates(self):
        assert best_grid(13) == (1, 13)
        assert best_grid(31) == (1, 31)

    def test_invalid(self):
        with pytest.raises(ModelError):
            best_grid(0)


class TestPdgemmTime:
    def test_sequential_is_pure_compute(self):
        t = pdgemm_time(512, 1, speed_flops=1e9)
        assert t == pytest.approx(2 * 512**3 / 1e9)

    def test_positive(self):
        for p in range(1, 33):
            assert pdgemm_time(1024, p) > 0

    def test_non_monotone_over_range(self):
        times = np.array([pdgemm_time(1024, p) for p in range(1, 33)])
        assert np.any(np.diff(times) > 0)

    def test_prime_spike(self):
        # 7 processors force a 1x7 grid: slower than the 2x3 grid of 6
        assert pdgemm_time(2048, 7) > pdgemm_time(2048, 6)

    def test_large_scale_still_helps(self):
        # despite the spikes, 16 procs beat 2 for a big matrix
        assert pdgemm_time(4096, 16) < pdgemm_time(4096, 2)

    def test_invalid_matrix(self):
        with pytest.raises(ModelError):
            pdgemm_time(0, 4)


class TestPdgemmLikeModel:
    def test_usable_as_time_model(self, fft8_ptg):
        cluster = Cluster("c", num_processors=16, speed_gflops=1.0)
        table = TimeTable.build(PdgemmLikeModel(), fft8_ptg, cluster)
        assert table.shape == (39, 16)
        assert not table.is_monotone()

    def test_work_recovers_dimension(self):
        cluster = Cluster("c", num_processors=4, speed_gflops=1.0)
        n = 256
        task = Task("mm", work=2.0 * n**3)
        model = PdgemmLikeModel()
        assert model.time(task, 1, cluster) == pytest.approx(
            pdgemm_time(n, 1, speed_flops=1e9)
        )

    def test_invalid_config(self):
        with pytest.raises(ModelError):
            PdgemmLikeModel(bandwidth=0.0)
        with pytest.raises(ModelError):
            PdgemmLikeModel(latency=-1.0)
        with pytest.raises(ModelError):
            PdgemmLikeModel(imbalance=-0.1)
