"""Tests for :mod:`repro.verify` — verifier, differential replay, and
the online verifying evaluator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EMTS, EMTSConfig, emts5
from repro.core.evaluator import create_evaluator
from repro.exceptions import ConfigurationError, VerificationError
from repro.mapping import map_allocations
from repro.mapping.kernel import kernel_for
from repro.testing.chaos import ChaosEvaluator, ChaosPlan
from repro.verify import (
    VERIFY_MODES,
    DifferentialReport,
    ScheduleVerifier,
    VerifyingEvaluator,
    differential_check,
)


@pytest.fixture
def alloc(fft8_ptg, synthetic_table):
    gen = np.random.default_rng(99)
    return gen.integers(
        1, synthetic_table.num_processors + 1, size=fft8_ptg.num_tasks
    )


class TestScheduleVerifier:
    def test_valid_schedule_passes(self, fft8_ptg, synthetic_table, alloc):
        schedule = map_allocations(fft8_ptg, synthetic_table, alloc)
        report = ScheduleVerifier(fft8_ptg, synthetic_table).verify(
            schedule, expected_makespan=schedule.makespan
        )
        assert report.tasks == fft8_ptg.num_tasks
        assert report.edges_checked == fft8_ptg.num_edges
        assert report.durations_checked
        assert report.makespan == schedule.makespan
        assert "verified" in str(report)

    def test_without_table_needs_cluster(self, fft8_ptg, grelon_cluster):
        v = ScheduleVerifier(fft8_ptg, cluster=grelon_cluster)
        assert v.table is None
        with pytest.raises(VerificationError):
            ScheduleVerifier(fft8_ptg)

    def test_structural_only_without_table(
        self, fft8_ptg, synthetic_table, grelon_cluster, alloc
    ):
        schedule = map_allocations(fft8_ptg, synthetic_table, alloc)
        report = ScheduleVerifier(
            fft8_ptg, cluster=grelon_cluster
        ).verify(schedule)
        assert not report.durations_checked

    def test_wrong_graph_rejected(
        self, fft8_ptg, diamond_ptg, synthetic_table, alloc
    ):
        schedule = map_allocations(fft8_ptg, synthetic_table, alloc)
        with pytest.raises(VerificationError) as err:
            ScheduleVerifier(
                diamond_ptg, cluster=synthetic_table.cluster
            ).verify(schedule)
        assert err.value.kind == "graph-mismatch"

    def test_wrong_cluster_rejected(
        self, fft8_ptg, synthetic_table, chti_cluster, alloc
    ):
        schedule = map_allocations(fft8_ptg, synthetic_table, alloc)
        with pytest.raises(VerificationError) as err:
            ScheduleVerifier(fft8_ptg, cluster=chti_cluster).verify(
                schedule
            )
        assert err.value.kind == "platform-mismatch"

    def test_wrong_reported_makespan(
        self, fft8_ptg, synthetic_table, alloc
    ):
        schedule = map_allocations(fft8_ptg, synthetic_table, alloc)
        with pytest.raises(VerificationError) as err:
            ScheduleVerifier(fft8_ptg, synthetic_table).verify(
                schedule, expected_makespan=schedule.makespan * 1.001
            )
        assert err.value.kind == "makespan-mismatch"


class TestDifferentialCheck:
    def test_all_engines_agree(self, fft8_ptg, synthetic_table, alloc):
        report = differential_check(fft8_ptg, synthetic_table, alloc)
        assert isinstance(report, DifferentialReport)
        assert report.invariants_checked
        assert {"kernel-numpy", "reference", "simulator"} <= set(
            report.engines
        )
        assert report.makespan == report.engines["reference"]
        assert "agree" in str(report)

    def test_expected_matches(self, fft8_ptg, synthetic_table, alloc):
        kernel = kernel_for(synthetic_table)
        ms = kernel.makespan(alloc)
        report = differential_check(
            fft8_ptg, synthetic_table, alloc, expected=ms
        )
        assert report.engines["reported"] == ms

    def test_wrong_expected_diverges(
        self, fft8_ptg, synthetic_table, alloc
    ):
        kernel = kernel_for(synthetic_table)
        ms = kernel.makespan(alloc)
        with pytest.raises(VerificationError) as err:
            differential_check(
                fft8_ptg, synthetic_table, alloc, expected=ms * 1.01
            )
        assert err.value.kind == "engine-divergence"

    def test_nan_expected_diverges(
        self, fft8_ptg, synthetic_table, alloc
    ):
        with pytest.raises(VerificationError) as err:
            differential_check(
                fft8_ptg, synthetic_table, alloc, expected=float("nan")
            )
        assert err.value.kind == "engine-divergence"


class TestVerifyingEvaluator:
    def test_modes(self):
        assert VERIFY_MODES == ("off", "sample", "full")

    def test_rejects_bad_mode(self, fft8_ptg, synthetic_table):
        inner = create_evaluator(fft8_ptg, synthetic_table)
        with pytest.raises(ConfigurationError):
            VerifyingEvaluator(
                inner, fft8_ptg, synthetic_table, mode="off"
            )
        with pytest.raises(ConfigurationError):
            VerifyingEvaluator(
                inner,
                fft8_ptg,
                synthetic_table,
                mode="sample",
                sample_interval=0,
            )

    def test_full_mode_verifies_everything(
        self, fft8_ptg, synthetic_table, alloc
    ):
        with create_evaluator(
            fft8_ptg, synthetic_table, verify="full"
        ) as ev:
            assert isinstance(ev, VerifyingEvaluator)
            genomes = [alloc, np.maximum(alloc - 1, 1)]
            values = ev.evaluate(genomes)
            assert ev.verified == 2
            assert values[0] == kernel_for(synthetic_table).makespan(
                alloc
            )

    def test_sample_mode_samples_first_batch(
        self, fft8_ptg, synthetic_table, alloc
    ):
        with create_evaluator(
            fft8_ptg, synthetic_table, verify="sample", verify_interval=1000
        ) as ev:
            ev.evaluate([alloc] * 5)
            assert ev.verified == 1  # first batch always spot-checked
            ev.evaluate([alloc] * 5)
            assert ev.verified == 1  # budget not yet exhausted

    def test_sample_interval_counts_genomes(
        self, fft8_ptg, synthetic_table, alloc
    ):
        with create_evaluator(
            fft8_ptg, synthetic_table, verify="sample", verify_interval=6
        ) as ev:
            ev.evaluate([alloc] * 5)  # verifies 1, budget = 6
            ev.evaluate([alloc] * 5)  # budget 1 left
            assert ev.verified == 1
            ev.evaluate([alloc] * 5)  # budget exhausted -> verify again
            assert ev.verified == 2

    def test_nan_detected_in_every_mode(
        self, fft8_ptg, synthetic_table, alloc
    ):
        for mode in ("sample", "full"):
            inner = create_evaluator(fft8_ptg, synthetic_table)
            chaotic = ChaosEvaluator(
                inner, ChaosPlan(nan_batches=frozenset({0}))
            )
            ev = VerifyingEvaluator(
                chaotic, fft8_ptg, synthetic_table, mode=mode
            )
            with pytest.raises(VerificationError) as err:
                ev.evaluate([alloc])
            assert err.value.kind == "engine-divergence"
            assert ev.divergences == 1
            ev.close()

    def test_rejections_skipped(self, fft8_ptg, synthetic_table, alloc):
        with create_evaluator(
            fft8_ptg, synthetic_table, verify="full"
        ) as ev:
            values = ev.evaluate([alloc], abort_above=1e-9)
            assert values[0] == float("inf")
            assert ev.verified == 0

    def test_delegates_interface(self, fft8_ptg, synthetic_table, alloc):
        with create_evaluator(
            fft8_ptg, synthetic_table, verify="full"
        ) as ev:
            backend = ev.inner.inner  # verifier -> cache -> backend
            assert ev.genome_key(alloc) == backend.genome_key(alloc)
            ev([alloc][0])
            assert ev.stats.evaluations >= 1

    def test_create_evaluator_rejects_bad_verify(
        self, fft8_ptg, synthetic_table
    ):
        with pytest.raises(ConfigurationError):
            create_evaluator(fft8_ptg, synthetic_table, verify="maybe")

    def test_off_adds_no_wrapper(self, fft8_ptg, synthetic_table):
        ev = create_evaluator(fft8_ptg, synthetic_table, verify="off")
        assert not isinstance(ev, VerifyingEvaluator)
        ev.close()


class TestChaosCorruptionDetection:
    """The chaos kernel-corruption fault must not survive verification."""

    def test_corruption_detected_full(
        self, fft8_ptg, synthetic_table, alloc
    ):
        inner = create_evaluator(fft8_ptg, synthetic_table, cache=False)
        chaotic = ChaosEvaluator(
            inner, ChaosPlan(corrupt_batches=frozenset({0}))
        )
        ev = VerifyingEvaluator(
            chaotic, fft8_ptg, synthetic_table, mode="full"
        )
        with pytest.raises(VerificationError) as err:
            ev.evaluate([alloc])
        assert err.value.kind == "engine-divergence"
        assert chaotic.faults_injected == 1
        ev.close()

    def test_corruption_detected_by_sampling(
        self, fft8_ptg, synthetic_table, alloc
    ):
        inner = create_evaluator(fft8_ptg, synthetic_table, cache=False)
        chaotic = ChaosEvaluator(
            inner, ChaosPlan(corrupt_batches=frozenset({0}))
        )
        ev = VerifyingEvaluator(
            chaotic, fft8_ptg, synthetic_table, mode="sample"
        )
        # the sampler always spot-checks the first batch
        with pytest.raises(VerificationError):
            ev.evaluate([alloc])
        ev.close()

    def test_corruption_passes_unverified(
        self, fft8_ptg, synthetic_table, alloc
    ):
        # sanity: without verification the corrupted value sails through
        inner = create_evaluator(fft8_ptg, synthetic_table, cache=False)
        chaotic = ChaosEvaluator(
            inner,
            ChaosPlan(
                corrupt_batches=frozenset({0}), corrupt_factor=1.01
            ),
        )
        honest = kernel_for(synthetic_table).makespan(alloc)
        values = chaotic.evaluate([alloc])
        assert values[0] == pytest.approx(honest * 1.01)
        chaotic.close()


class TestEMTSIntegration:
    def test_config_validates_verify(self):
        with pytest.raises(ConfigurationError):
            EMTSConfig(verify="everything")
        assert EMTSConfig(verify="sample").verify == "sample"

    def test_verified_run_is_bit_identical(
        self, fft8_ptg, grelon_cluster, synthetic_table
    ):
        cfg = emts5().config.with_updates(generations=2)
        plain = EMTS(cfg).schedule(
            fft8_ptg, grelon_cluster, synthetic_table, rng=11
        )
        checked = EMTS(cfg.with_updates(verify="full")).schedule(
            fft8_ptg, grelon_cluster, synthetic_table, rng=11
        )
        assert checked.makespan == plain.makespan
        assert np.array_equal(checked.allocation, plain.allocation)

    def test_chaos_corruption_fails_emts_run(
        self, fft8_ptg, grelon_cluster, synthetic_table
    ):
        cfg = emts5().config.with_updates(
            generations=2, verify="full", fitness_cache=False
        )

        def wrapper(ev):
            # corrupt UNDER the verifier: chaos wraps the backend, the
            # verifying evaluator wraps chaos
            return VerifyingEvaluator(
                ChaosEvaluator(
                    ev.inner,
                    ChaosPlan(corrupt_batches=frozenset({1})),
                ),
                fft8_ptg,
                synthetic_table,
                mode="full",
            )

        with pytest.raises(VerificationError):
            EMTS(cfg).schedule(
                fft8_ptg,
                grelon_cluster,
                synthetic_table,
                rng=11,
                evaluator_wrapper=wrapper,
            )
