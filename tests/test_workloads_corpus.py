"""Unit tests for the evaluation-corpus builders (Section IV-C counts)."""

import pytest

from repro.graph import is_layered
from repro.workloads import (
    Corpus,
    fft_corpus,
    irregular_corpus,
    layered_corpus,
    paper_corpus,
    strassen_corpus,
)


class TestScaledCorpora:
    """Tests run on reduced corpora; the full sizes are asserted
    arithmetically (building 932 PTGs here would be wasteful)."""

    def test_fft_classes_present(self):
        c = fft_corpus(rng=1, scale=0.02)  # 2 per size
        sizes = sorted({p.num_tasks for p in c})
        assert sizes == [5, 15, 39, 95]
        assert len(c) == 8

    def test_strassen_count(self):
        c = strassen_corpus(rng=1, scale=0.05)
        assert len(c) == 5
        assert all(p.num_tasks == 23 for p in c)

    def test_layered_all_layered(self):
        c = layered_corpus(rng=1, scale=0.34, sizes=(20,))
        assert c
        assert all(is_layered(p) for p in c)

    def test_layered_covers_parameter_grid(self):
        c = layered_corpus(rng=1, scale=0.34)
        # 3 sizes x 3 widths x 2 regs x 2 densities x 1 instance = 36
        assert len(c) == 36

    def test_irregular_covers_parameter_grid(self):
        c = irregular_corpus(rng=1, scale=0.34, sizes=(20,))
        # 1 size x 3 widths x 2 regs x 2 dens x 3 jumps x 1 inst = 36
        assert len(c) == 36

    def test_irregular_sizes_match(self):
        c = irregular_corpus(rng=1, scale=0.34, sizes=(50,))
        assert all(p.num_tasks == 50 for p in c)

    def test_full_scale_sizes_arithmetic(self):
        """The paper's corpus sizes, computed without generating."""
        # 4 FFT sizes x 100 = 400; 100 Strassen
        # layered: 3*3*2*2*1 combos x 3 = 108
        # irregular: 3*3*2*2*3 combos x 3 = 324
        assert 4 * 100 == 400
        assert 3 * 3 * 2 * 2 * 1 * 3 == 108
        assert 3 * 3 * 2 * 2 * 3 * 3 == 324

    def test_paper_corpus_scaled(self):
        corpus = paper_corpus(seed=1, scale=0.01)
        assert len(corpus.fft) == 4  # 1 per size
        assert len(corpus.strassen) == 1
        assert len(corpus.layered) == 36  # 1 instance per combo
        assert len(corpus.irregular) == 108
        assert len(corpus) == 4 + 1 + 36 + 108

    def test_corpus_by_class(self):
        corpus = paper_corpus(seed=1, scale=0.01)
        assert corpus.by_class("fft") is corpus.fft
        with pytest.raises(KeyError):
            corpus.by_class("unknown")

    def test_corpus_classes_order(self):
        assert Corpus().classes == (
            "fft",
            "strassen",
            "layered",
            "irregular",
        )

    def test_summary(self):
        corpus = paper_corpus(seed=1, scale=0.01)
        s = corpus.summary()
        assert "fft=4" in s

    def test_reproducible(self):
        c1 = paper_corpus(seed=3, scale=0.01)
        c2 = paper_corpus(seed=3, scale=0.01)
        assert c1.fft == c2.fft
        assert c1.irregular == c2.irregular

    def test_unique_names(self):
        corpus = paper_corpus(seed=1, scale=0.01)
        names = [
            p.name
            for cls in corpus.classes
            for p in corpus.by_class(cls)
        ]
        assert len(names) == len(set(names))
