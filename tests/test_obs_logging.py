"""Tests for the single logging configuration point (repro.obs.log)."""

import io
import json
import logging

import pytest

from repro.obs import (
    JsonFormatter,
    LOG_LEVELS,
    configure_logging,
    get_logger,
    reset_logging,
)


@pytest.fixture(autouse=True)
def clean_logging():
    """Leave the process's logging state as we found it."""
    reset_logging()
    yield
    reset_logging()


class TestGetLogger:
    def test_relative_name_lands_under_repro(self):
        assert get_logger("core.emts").name == "repro.core.emts"

    def test_qualified_name_passes_through(self):
        assert get_logger("repro.ea").name == "repro.ea"

    def test_root_name(self):
        assert get_logger("repro").name == "repro"

    def test_module_loggers_use_the_hierarchy(self):
        """Every instrumented module hangs off the repro root."""
        from repro.core import emts, evaluator
        from repro.ea import strategy
        from repro.mapping import _cscheduler

        for module in (emts, evaluator, strategy, _cscheduler):
            assert module._log.name.startswith("repro.")


class TestConfigureLogging:
    def test_installs_exactly_one_handler(self):
        root = configure_logging(level="info")
        assert len(root.handlers) == 1

    def test_reconfiguration_does_not_stack_handlers(self):
        """The CLI double-invocation bug: records must print once."""
        stream = io.StringIO()
        for _ in range(3):
            configure_logging(level="info", stream=stream)
        get_logger("core.emts").info("hello")
        lines = [
            line for line in stream.getvalue().splitlines() if line
        ]
        assert lines == ["INFO repro.core.emts: hello"]

    def test_level_filtering(self):
        stream = io.StringIO()
        configure_logging(level="warning", stream=stream)
        log = get_logger("ea")
        log.info("quiet")
        log.warning("loud")
        assert "quiet" not in stream.getvalue()
        assert "loud" in stream.getvalue()

    def test_numeric_level(self):
        root = configure_logging(level=logging.DEBUG)
        assert root.level == logging.DEBUG

    def test_unknown_level_raises(self):
        with pytest.raises(ValueError, match="unknown log level"):
            configure_logging(level="chatty")

    def test_all_documented_levels_accepted(self):
        for level in LOG_LEVELS:
            configure_logging(level=level)

    def test_foreign_handlers_are_left_alone(self):
        root = logging.getLogger("repro")
        foreign = logging.NullHandler()
        root.addHandler(foreign)
        try:
            configure_logging()
            configure_logging()
            assert foreign in root.handlers
            ours = [h for h in root.handlers if h is not foreign]
            assert len(ours) == 1
        finally:
            root.removeHandler(foreign)

    def test_reset_removes_installed_handler(self):
        configure_logging()
        reset_logging()
        root = logging.getLogger("repro")
        assert root.handlers == []
        assert root.propagate


class TestJsonFormatter:
    def record(self, **kwargs):
        return logging.LogRecord(
            name="repro.core.emts",
            level=logging.WARNING,
            pathname=__file__,
            lineno=1,
            msg="evaluated %d genomes",
            args=(25,),
            exc_info=kwargs.get("exc_info"),
        )

    def test_fields(self):
        payload = json.loads(JsonFormatter().format(self.record()))
        assert payload["level"] == "warning"
        assert payload["logger"] == "repro.core.emts"
        assert payload["message"] == "evaluated 25 genomes"
        assert isinstance(payload["ts"], float)

    def test_exception_info(self):
        try:
            raise RuntimeError("boom")
        except RuntimeError:
            import sys

            record = self.record(exc_info=sys.exc_info())
        payload = json.loads(JsonFormatter().format(record))
        assert "boom" in payload["exc"]

    def test_json_stream_end_to_end(self):
        stream = io.StringIO()
        configure_logging(level="info", json_output=True, stream=stream)
        get_logger("mapping.ckernel").info("kernel ready")
        payload = json.loads(stream.getvalue())
        assert payload["message"] == "kernel ready"
        assert payload["logger"] == "repro.mapping.ckernel"


class TestTraceStamping:
    """``--log-json`` records join the active distributed trace."""

    def test_active_context_stamped_onto_records(self):
        from repro.obs import TraceContext, use_context

        stream = io.StringIO()
        configure_logging(level="info", json_output=True, stream=stream)
        ctx = TraceContext(trace_id="ab" * 16, span_id="cd" * 8)
        with use_context(ctx):
            get_logger("service.worker").info("job started")
        payload = json.loads(stream.getvalue())
        assert payload["trace_id"] == ctx.trace_id
        assert payload["span_id"] == ctx.span_id

    def test_no_context_no_trace_fields(self):
        stream = io.StringIO()
        configure_logging(level="info", json_output=True, stream=stream)
        get_logger("service.worker").info("idle")
        payload = json.loads(stream.getvalue())
        assert "trace_id" not in payload
        assert "span_id" not in payload

    def test_context_is_thread_local(self):
        import threading

        from repro.obs import TraceContext, use_context

        stream = io.StringIO()
        configure_logging(level="info", json_output=True, stream=stream)
        ctx = TraceContext(trace_id="ab" * 16, span_id="cd" * 8)

        def other_thread():
            get_logger("service.worker").info("from elsewhere")

        with use_context(ctx):
            t = threading.Thread(target=other_thread)
            t.start()
            t.join()
        payload = json.loads(stream.getvalue())
        assert "trace_id" not in payload
