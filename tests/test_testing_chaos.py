"""Fault injection against the evaluation engine and the EMTS loop.

The contract under test: worker crashes, hangs, flaky exceptions and
interrupts never change the optimization outcome — recovery is
bit-identical to a fault-free run — and permanent failures surface as
:class:`~repro.exceptions.EvaluationError` with genome context.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import emts5, grelon, SyntheticModel
from repro.core import ProcessPoolEvaluator, SerialEvaluator
from repro.exceptions import EvaluationError
from repro.testing import (
    AlwaysFailFault,
    ChaosError,
    ChaosEvaluator,
    ChaosPlan,
    FlakyChunkFault,
    ProcessorCrashFault,
    SleepFault,
    WorkerKillFault,
    kill_one_worker,
    sample_indices,
)
from repro.timemodels import TimeTable
from repro.workloads import generate_fft

PTG = generate_fft(4, rng=7)
CLUSTER = grelon()
MODEL = SyntheticModel()


@pytest.fixture(scope="module")
def table() -> TimeTable:
    return TimeTable.build(MODEL, PTG, CLUSTER)


@pytest.fixture(scope="module")
def genomes(table) -> list[np.ndarray]:
    rng = np.random.default_rng(3)
    return [
        rng.integers(1, table.num_processors + 1, size=PTG.num_tasks)
        for _ in range(40)
    ]


@pytest.fixture(scope="module")
def expected(table, genomes) -> list[float]:
    serial = SerialEvaluator(PTG, table)
    try:
        return serial.evaluate(genomes)
    finally:
        serial.close()


# ----------------------------------------------------------------------
# pool-level recovery


def test_killed_worker_recovers_bit_identical(table, genomes, expected):
    """SIGKILL a live worker mid-run; the batch completes exactly."""
    pool = ProcessPoolEvaluator(PTG, table, workers=2, retry_backoff=0.0)
    try:
        pool._ensure_executor()
        first = pool.evaluate(genomes[:20])
        pid = kill_one_worker(pool)
        assert pid is not None
        second = pool.evaluate(genomes[20:])
        assert first + second == expected
        assert pool.stats.pool_rebuilds >= 1
        assert pool.stats.retries >= 1
    finally:
        pool.close()


def test_worker_suicide_fault_mid_batch(table, genomes, expected, tmp_path):
    """A worker killing itself mid-batch is recovered bit-identically."""
    pool = ProcessPoolEvaluator(
        PTG,
        table,
        workers=2,
        retry_backoff=0.0,
        fault_hook=WorkerKillFault(marker_dir=str(tmp_path), failures=1),
    )
    try:
        assert pool.evaluate(genomes) == expected
        assert pool.stats.pool_rebuilds >= 1
    finally:
        pool.close()


def test_flaky_chunks_within_retry_budget(table, genomes, expected, tmp_path):
    """Transient in-worker exceptions are retried and counted."""
    pool = ProcessPoolEvaluator(
        PTG,
        table,
        workers=2,
        retry_backoff=0.0,
        fault_hook=FlakyChunkFault(marker_dir=str(tmp_path), failures=2),
    )
    try:
        assert pool.evaluate(genomes) == expected
        assert pool.stats.retries >= 1
    finally:
        pool.close()


def test_exhausted_retries_raise_with_genome_indices(table, genomes):
    """Permanent failure names the genomes of the failing chunk."""
    pool = ProcessPoolEvaluator(
        PTG,
        table,
        workers=2,
        max_retries=1,
        retry_backoff=0.0,
        fault_hook=AlwaysFailFault(),
    )
    try:
        with pytest.raises(EvaluationError) as err:
            pool.evaluate(genomes)
        assert len(err.value.genome_indices) >= 1
        assert all(
            0 <= i < len(genomes) for i in err.value.genome_indices
        )
        assert "serial fallback" in str(err.value)
    finally:
        pool.close()


def test_serial_fallback_saves_run_after_retries(
    table, genomes, expected, tmp_path
):
    """More faults than retries: the serial fallback still succeeds."""
    pool = ProcessPoolEvaluator(
        PTG,
        table,
        workers=2,
        max_retries=1,
        retry_backoff=0.0,
        # kill budget far above what 1 retry can absorb: every pool
        # attempt dies, and only the in-driver serial fallback (where
        # the kill hook is inert) can finish the batch
        fault_hook=WorkerKillFault(marker_dir=str(tmp_path), failures=100),
    )
    try:
        assert pool.evaluate(genomes) == expected
    finally:
        pool.close()


def test_hung_worker_times_out_and_recovers(table, genomes, expected, tmp_path):
    """chunk_timeout converts a hang into a retriable failure."""
    pool = ProcessPoolEvaluator(
        PTG,
        table,
        workers=2,
        chunk_timeout=0.75,
        retry_backoff=0.0,
        fault_hook=SleepFault(
            marker_dir=str(tmp_path), failures=1, seconds=30.0
        ),
    )
    try:
        assert pool.evaluate(genomes) == expected
        assert pool.stats.retries >= 1
    finally:
        pool.close()


def test_kill_one_worker_is_noop_for_serial(table):
    serial = SerialEvaluator(PTG, table)
    assert kill_one_worker(serial) is None


# ----------------------------------------------------------------------
# ChaosEvaluator (driver-side injection)


def test_chaos_plan_sampled_is_seed_reproducible():
    a = ChaosPlan.sampled(42, 100, kill_rate=0.2, nan_rate=0.1)
    b = ChaosPlan.sampled(42, 100, kill_rate=0.2, nan_rate=0.1)
    assert a == b
    assert a.kill_batches  # 20 expected hits in 100 draws


def test_chaos_evaluator_nan_and_delay(table, genomes, expected):
    inner = SerialEvaluator(PTG, table)
    chaos = ChaosEvaluator(
        inner,
        ChaosPlan(
            nan_batches=frozenset({0}),
            delay_batches=frozenset({1}),
            delay_seconds=0.001,
        ),
    )
    try:
        first = chaos.evaluate(genomes[:5])
        assert np.isnan(first[0])
        assert first[1:] == expected[1:5]
        assert chaos.evaluate(genomes[5:10]) == expected[5:10]
        assert chaos.faults_injected == 2
    finally:
        chaos.close()


def test_chaos_evaluator_corruption(table, genomes, expected):
    chaos = ChaosEvaluator(
        SerialEvaluator(PTG, table),
        ChaosPlan(corrupt_batches=frozenset({0}), corrupt_factor=1.01),
    )
    try:
        first = chaos.evaluate(genomes[:5])
        # the first finite value is silently perturbed by 1% — the kind
        # of corruption only differential verification can catch (see
        # tests/test_verify.py::TestChaosCorruptionDetection)
        assert first[0] == pytest.approx(expected[0] * 1.01)
        assert first[1:] == expected[1:5]
        assert chaos.faults_injected == 1
        assert chaos.evaluate(genomes[:5]) == expected[:5]
    finally:
        chaos.close()


def test_chaos_plan_sampled_corrupt_rate():
    plan = ChaosPlan.sampled(7, 100, corrupt_rate=0.2, corrupt_factor=1.5)
    assert plan.corrupt_batches
    assert plan.corrupt_factor == 1.5
    assert plan == ChaosPlan.sampled(
        7, 100, corrupt_rate=0.2, corrupt_factor=1.5
    )


def test_chaos_evaluator_raise(table, genomes):
    chaos = ChaosEvaluator(
        SerialEvaluator(PTG, table),
        ChaosPlan(raise_batches=frozenset({0})),
    )
    try:
        with pytest.raises(ChaosError):
            chaos.evaluate(genomes[:5])
        # subsequent batches are clean
        assert chaos.evaluate(genomes[:5])
    finally:
        chaos.close()


def test_nan_fitness_degrades_to_rejection_in_emts():
    """An injected NaN discards one offspring; the run still finishes."""
    plan = ChaosPlan(nan_batches=frozenset({2}))
    result = emts5().schedule(
        PTG,
        CLUSTER,
        MODEL,
        rng=7,
        evaluator_wrapper=lambda ev: ChaosEvaluator(ev, plan),
    )
    assert not result.interrupted
    assert np.isfinite(result.makespan)
    assert result.makespan <= min(result.seed_makespans.values()) + 1e-12


# ----------------------------------------------------------------------
# shared sampling primitive and the straggler/crash fault extensions


def test_sample_indices_zero_rate_consumes_no_randomness():
    gen = np.random.default_rng(9)
    before = gen.bit_generator.state
    assert sample_indices(gen, 1000, 0.0) == frozenset()
    assert gen.bit_generator.state == before


def test_sample_indices_rate_one_selects_everything():
    gen = np.random.default_rng(9)
    assert sample_indices(gen, 10, 1.1) == frozenset(range(10))


def test_sample_indices_is_reproducible():
    a = sample_indices(np.random.default_rng(4), 200, 0.3)
    b = sample_indices(np.random.default_rng(4), 200, 0.3)
    assert a == b
    assert a  # 60 expected hits in 200 draws
    assert all(0 <= i < 200 for i in a)


def test_straggler_batch_delays_but_preserves_values(
    table, genomes, expected
):
    """Straggled results are correct, just late."""
    import time as _time

    chaos = ChaosEvaluator(
        SerialEvaluator(PTG, table),
        ChaosPlan(
            straggler_batches=frozenset({0}),
            straggler_seconds=0.05,
        ),
    )
    try:
        t0 = _time.perf_counter()
        first = chaos.evaluate(genomes[:5])
        elapsed = _time.perf_counter() - t0
        assert first == expected[:5]
        assert elapsed >= 0.05
        assert chaos.faults_injected == 1
        # subsequent batches are on time and clean
        assert chaos.evaluate(genomes[5:10]) == expected[5:10]
    finally:
        chaos.close()


def test_chaos_plan_sampled_straggler_rate():
    plan = ChaosPlan.sampled(
        5, 100, straggler_rate=0.2, straggler_seconds=0.25
    )
    assert plan.straggler_batches
    assert plan.straggler_seconds == 0.25
    assert plan == ChaosPlan.sampled(
        5, 100, straggler_rate=0.2, straggler_seconds=0.25
    )


def test_chaos_plan_straggler_sampling_is_backward_compatible():
    """Plans sampled before the straggler fault existed reproduce."""
    old = ChaosPlan.sampled(42, 100, kill_rate=0.2, nan_rate=0.1)
    new = ChaosPlan.sampled(
        42, 100, kill_rate=0.2, nan_rate=0.1, straggler_rate=0.3
    )
    assert old.kill_batches == new.kill_batches
    assert old.nan_batches == new.nan_batches


def test_processor_crash_fault_kills_planned_chunk_ordinals(
    table, genomes, expected, tmp_path
):
    """The worker drawing a planned ordinal dies; recovery completes."""
    pool = ProcessPoolEvaluator(
        PTG,
        table,
        workers=2,
        retry_backoff=0.0,
        fault_hook=ProcessorCrashFault(
            marker_dir=str(tmp_path), at_chunks=frozenset({1})
        ),
    )
    try:
        assert pool.evaluate(genomes) == expected
        assert pool.stats.pool_rebuilds >= 1
    finally:
        pool.close()


def test_processor_crash_fault_is_inert_in_driver(tmp_path):
    hook = ProcessorCrashFault(
        marker_dir=str(tmp_path), at_chunks=frozenset({0})
    )
    hook(None)  # driver pid: must neither kill nor claim an ordinal
    import os

    assert not os.listdir(tmp_path)


def test_processor_crash_fault_ordinals_are_atomic(tmp_path):
    """Each call claims a fresh ordinal, even across instances."""
    a = ProcessorCrashFault(
        marker_dir=str(tmp_path), at_chunks=frozenset(), driver_pid=-1
    )
    b = ProcessorCrashFault(
        marker_dir=str(tmp_path), at_chunks=frozenset(), driver_pid=-1
    )
    assert a._next_ordinal() == 0
    assert b._next_ordinal() == 1
    assert a._next_ordinal() == 2


# ----------------------------------------------------------------------
# the acceptance test: chaos determinism end to end


def test_chaos_run_bit_identical_to_fault_free(tmp_path, monkeypatch):
    """Worker kills + forced kernel fallback + interrupt/resume cycle
    reach the same final makespan as a fault-free serial run."""
    # force the numpy scheduling path in this process and (via the
    # inherited environment) in every pool worker
    from repro.mapping import _cscheduler

    monkeypatch.setenv("REPRO_NO_CKERNEL", "1")
    monkeypatch.setattr(_cscheduler, "_tried", True)
    monkeypatch.setattr(_cscheduler, "_ffi", None)
    monkeypatch.setattr(_cscheduler, "_lib", None)

    baseline = emts5(workers=0).schedule(PTG, CLUSTER, MODEL, rng=7)

    # segment 1: parallel run; a worker is killed before the batch of
    # generation 2 (batch 3), and an operator interrupt fires after the
    # batch of generation 3 (batch 4)
    path = tmp_path / "run.ckpt"
    stop = threading.Event()
    segment1 = ChaosEvaluator(
        inner=None,
        plan=ChaosPlan(
            kill_batches=frozenset({3}), stop_after_batch=4
        ),
        stop_event=stop,
    )

    def wrap1(ev):
        segment1.inner = ev
        return segment1

    partial = emts5(workers=2).schedule(
        PTG,
        CLUSTER,
        MODEL,
        rng=7,
        checkpoint_path=path,
        stop_event=stop,
        evaluator_wrapper=wrap1,
    )
    assert partial.interrupted
    assert segment1.faults_injected >= 1
    assert partial.evaluation_stats.pool_rebuilds >= 1

    # segment 2: resume under more worker kills; finishes the horizon
    segment2 = ChaosEvaluator(
        inner=None, plan=ChaosPlan(kill_batches=frozenset({0}))
    )

    def wrap2(ev):
        segment2.inner = ev
        return segment2

    resumed = emts5(workers=2).schedule(
        PTG,
        CLUSTER,
        MODEL,
        rng=7,
        resume_from=path,
        evaluator_wrapper=wrap2,
    )
    assert not resumed.interrupted
    assert resumed.makespan == baseline.makespan
    assert np.array_equal(resumed.allocation, baseline.allocation)
    assert list(resumed.log.best_trajectory()) == list(
        baseline.log.best_trajectory()
    )
    assert resumed.evaluations == baseline.evaluations
