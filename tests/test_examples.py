"""Smoke tests: every example script must run to completion.

Examples are part of the public deliverable; they are executed in a
subprocess (as a user would) and their headline output is checked.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

CASES = [
    ("quickstart.py", "EMTS5 makespan"),
    ("scientific_workflow.py", "relative makespans"),
    ("custom_time_model.py", "cluster utilization"),
    ("gantt_comparison.py", "SVG Gantt charts written"),
    ("time_budget.py", "T_mcpa/T_emts"),
    ("convergence_study.py", "final improvement"),
    ("profile_fitness.py", "cProfile of one EMTS10 run"),
]


@pytest.mark.parametrize(
    "script,expected", CASES, ids=[c[0] for c in CASES]
)
def test_example_runs(script, expected):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"missing example {script}"
    proc = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert expected in proc.stdout


def test_all_examples_are_smoke_tested():
    """Adding an example without wiring it here should fail loudly."""
    scripts = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    covered = {c[0] for c in CASES}
    assert scripts == covered
