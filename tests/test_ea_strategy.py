"""Unit tests for the (mu + lambda) evolution strategy engine.

Uses a simple integer test problem (minimize distance to a target vector)
so EA behaviour is verifiable independently of the scheduling domain.
"""

import numpy as np
import pytest

from repro.ea import (
    EvolutionStrategy,
    GenerationLimit,
    Individual,
    StagnationLimit,
    UniformIntegerMutation,
    UniformPointCrossover,
)
from repro.exceptions import ConfigurationError

TARGET = np.array([3, 7, 2, 9, 5], dtype=np.int64)


def fitness(genome: np.ndarray) -> float:
    return float(np.abs(genome - TARGET).sum())


def initial_pop(n=3):
    return [
        Individual(
            genome=np.full(5, i + 1, dtype=np.int64),
            origin=f"seed{i}",
        )
        for i in range(n)
    ]


def make_strategy(**kwargs):
    defaults = dict(
        mu=3,
        lam=12,
        mutation=UniformIntegerMutation(low=1, high=10, rate=0.4),
    )
    defaults.update(kwargs)
    return EvolutionStrategy(**defaults)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(mu=0),
            dict(lam=0),
            dict(selection="tournament"),
            dict(selection="comma", mu=5, lam=3),
            dict(crossover_rate=1.5),
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            make_strategy(**kwargs)


class TestEvolve:
    def test_improves_over_initial(self, rng):
        strat = make_strategy()
        result = strat.evolve(
            initial_pop(), fitness, rng, total_generations=15
        )
        initial_best = min(fitness(i.genome) for i in initial_pop())
        assert result.best_fitness <= initial_best
        assert result.generations == 15

    def test_plus_is_monotone(self, rng):
        result = make_strategy().evolve(
            initial_pop(), fitness, rng, total_generations=10
        )
        assert result.log.is_monotone()

    def test_population_size_is_mu(self, rng):
        result = make_strategy(mu=3).evolve(
            initial_pop(5), fitness, rng, total_generations=2
        )
        assert len(result.population) == 3

    def test_evaluation_count(self, rng):
        result = make_strategy(mu=2, lam=7).evolve(
            initial_pop(2), fitness, rng, total_generations=4
        )
        # 2 initial + 4 * 7 offspring
        assert result.evaluations == 2 + 28

    def test_comma_selection_runs(self, rng):
        result = make_strategy(
            mu=3, lam=12, selection="comma"
        ).evolve(initial_pop(), fitness, rng, total_generations=5)
        assert len(result.population) == 3

    def test_crossover_enabled(self, rng):
        strat = make_strategy(
            crossover=UniformPointCrossover(), crossover_rate=1.0
        )
        result = strat.evolve(
            initial_pop(), fitness, rng, total_generations=5
        )
        origins = {i.origin for i in result.population}
        # at least some survivors should be crossover products
        assert result.best_fitness <= 20

    def test_requires_initial_population(self, rng):
        with pytest.raises(ConfigurationError):
            make_strategy().evolve([], fitness, rng, total_generations=2)

    def test_requires_termination_or_generations(self, rng):
        with pytest.raises(ConfigurationError):
            make_strategy().evolve(initial_pop(), fitness, rng)

    def test_explicit_termination(self, rng):
        result = make_strategy().evolve(
            initial_pop(),
            fitness,
            rng,
            termination=GenerationLimit(3),
        )
        assert result.generations == 3

    def test_stagnation_termination(self, rng):
        # a constant fitness stagnates immediately after patience gens
        result = make_strategy().evolve(
            initial_pop(),
            lambda g: 1.0,
            rng,
            termination=StagnationLimit(patience=2),
            total_generations=5,
        )
        assert result.generations <= 4

    def test_deterministic_given_seed(self):
        r1 = make_strategy().evolve(
            initial_pop(),
            fitness,
            np.random.default_rng(7),
            total_generations=8,
        )
        r2 = make_strategy().evolve(
            initial_pop(),
            fitness,
            np.random.default_rng(7),
            total_generations=8,
        )
        assert r1.best_fitness == r2.best_fitness
        assert np.array_equal(r1.best.genome, r2.best.genome)

    def test_inf_fitness_rejected_individuals(self, rng):
        """Individuals may be rejected with inf; the EA keeps going."""

        def gated(genome):
            f = fitness(genome)
            return float("inf") if f > 15 else f

        init = [
            Individual(genome=TARGET.copy(), origin="seed")
        ]  # fitness 0
        result = make_strategy(mu=1, lam=5).evolve(
            init, gated, rng, total_generations=3
        )
        assert result.best_fitness == 0.0

    def test_finds_optimum_eventually(self):
        rng = np.random.default_rng(123)
        strat = make_strategy(mu=5, lam=40)
        result = strat.evolve(
            initial_pop(5), fitness, rng, total_generations=60
        )
        assert result.best_fitness == 0.0

    def test_initial_individuals_not_mutated_in_place(self, rng):
        init = initial_pop()
        genomes_before = [i.genome.copy() for i in init]
        make_strategy().evolve(init, fitness, rng, total_generations=3)
        for ind, before in zip(init, genomes_before):
            assert np.array_equal(ind.genome, before)

    def test_on_generation_start_hook(self, rng):
        calls = []

        def hook(parents, generation):
            calls.append(
                (generation, [p.evaluated_fitness() for p in parents])
            )

        make_strategy(mu=2).evolve(
            initial_pop(2),
            fitness,
            rng,
            total_generations=4,
            on_generation_start=hook,
        )
        assert [c[0] for c in calls] == [1, 2, 3, 4]
        # parents handed to the hook are always evaluated
        assert all(
            all(np.isfinite(f) for f in fits) for _, fits in calls
        )

    def test_hook_bound_rejection_equivalence(self, rng):
        """Rejecting offspring at the worst-parent cutoff must not
        change the trajectory (the EMTS rejection-strategy invariant,
        checked at the engine level)."""

        def run(with_rejection: bool):
            bound = [float("inf")]

            def hook(parents, generation):
                if with_rejection:
                    bound[0] = max(
                        p.evaluated_fitness() for p in parents
                    )

            def gated_fitness(genome):
                f = fitness(genome)
                if f >= bound[0]:
                    return float("inf")
                return f

            return make_strategy().evolve(
                initial_pop(),
                gated_fitness,
                np.random.default_rng(77),
                total_generations=8,
                on_generation_start=hook,
            )

        plain = run(False)
        gated = run(True)
        assert plain.best_fitness == gated.best_fitness
        assert np.array_equal(plain.best.genome, gated.best.genome)
