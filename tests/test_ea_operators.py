"""Unit tests for the generic EA variation operators."""

import numpy as np
import pytest

from repro.ea import (
    OnePointCrossover,
    UniformIntegerMutation,
    UniformPointCrossover,
)
from repro.exceptions import ConfigurationError


class TestUniformIntegerMutation:
    def test_stays_in_domain(self, rng):
        op = UniformIntegerMutation(low=1, high=9, rate=1.0)
        g = np.full(50, 5, dtype=np.int64)
        child = op.mutate(g, rng, 1, 10)
        assert child.min() >= 1
        assert child.max() <= 9

    def test_parent_untouched(self, rng):
        op = UniformIntegerMutation(low=1, high=9, rate=1.0)
        g = np.full(20, 5, dtype=np.int64)
        op.mutate(g, rng, 1, 10)
        assert np.all(g == 5)

    def test_rate_controls_positions(self, rng):
        op = UniformIntegerMutation(low=100, high=200, rate=0.25)
        g = np.zeros(100, dtype=np.int64)
        child = op.mutate(g, rng, 1, 10)
        assert np.count_nonzero(child) == 25

    def test_mutates_at_least_one(self, rng):
        op = UniformIntegerMutation(low=5, high=5, rate=0.001)
        g = np.zeros(10, dtype=np.int64)
        child = op.mutate(g, rng, 1, 10)
        assert np.count_nonzero(child == 5) == 1

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            UniformIntegerMutation(low=5, high=1)
        with pytest.raises(ConfigurationError):
            UniformIntegerMutation(low=1, high=5, rate=0.0)


class TestCrossover:
    def test_uniform_mixes_parents(self, rng):
        a = np.zeros(100, dtype=np.int64)
        b = np.ones(100, dtype=np.int64)
        child = UniformPointCrossover().crossover(a, b, rng)
        assert 0 < child.sum() < 100  # some of each

    def test_uniform_requires_equal_length(self, rng):
        with pytest.raises(ConfigurationError):
            UniformPointCrossover().crossover(
                np.zeros(3, dtype=np.int64),
                np.zeros(4, dtype=np.int64),
                rng,
            )

    def test_one_point_structure(self, rng):
        a = np.zeros(50, dtype=np.int64)
        b = np.ones(50, dtype=np.int64)
        child = OnePointCrossover().crossover(a, b, rng)
        # prefix of zeros followed by suffix of ones
        ones = np.flatnonzero(child)
        assert ones.size > 0
        assert np.array_equal(
            ones, np.arange(ones[0], 50)
        )

    def test_one_point_single_gene(self, rng):
        a = np.array([7])
        b = np.array([9])
        child = OnePointCrossover().crossover(a, b, rng)
        assert child[0] == 9  # cut at 0: everything from parent b
