"""Unit tests for task-complexity sampling (Section IV-C parameters)."""

import math

import numpy as np
import pytest

from repro.workloads import (
    ALPHA_MAX,
    A_MAX,
    A_MIN,
    MAX_DATA_SIZE,
    MIN_DATA_SIZE,
    ComplexityPattern,
    flop_count,
    sample_task_spec,
    sample_task_specs,
)


class TestFlopCount:
    def test_stencil(self):
        assert flop_count(ComplexityPattern.STENCIL, 1e6, 100.0) == 1e8

    def test_sort(self):
        d = 1024.0
        assert flop_count(
            ComplexityPattern.SORT, d, 2.0
        ) == pytest.approx(2 * d * 10)

    def test_matmul_ignores_a(self):
        d = 1e6
        assert flop_count(
            ComplexityPattern.MATMUL, d, 999.0
        ) == pytest.approx(d**1.5)

    def test_tiny_d_rejected(self):
        with pytest.raises(ValueError):
            flop_count(ComplexityPattern.SORT, 1.0, 2.0)


class TestSampling:
    def test_bounds_hold(self, rng):
        for _ in range(200):
            spec = sample_task_spec(rng)
            assert MIN_DATA_SIZE <= spec.data_size <= MAX_DATA_SIZE
            assert A_MIN <= spec.a <= A_MAX
            assert 0.0 <= spec.alpha <= ALPHA_MAX
            assert spec.work > 0

    def test_paper_constants(self):
        # the paper's exact parameter ranges
        assert MAX_DATA_SIZE == 125e6
        assert A_MIN == 2.0**6
        assert A_MAX == 2.0**9
        assert ALPHA_MAX == 0.25

    def test_fixed_pattern_respected(self, rng):
        for _ in range(20):
            spec = sample_task_spec(
                rng, pattern=ComplexityPattern.MATMUL
            )
            assert spec.pattern is ComplexityPattern.MATMUL
            assert spec.kind == "matmul"

    def test_all_patterns_drawn(self, rng):
        patterns = {
            sample_task_spec(rng).pattern for _ in range(100)
        }
        assert patterns == set(ComplexityPattern)

    def test_work_matches_pattern(self, rng):
        spec = sample_task_spec(rng, pattern=ComplexityPattern.SORT)
        assert spec.work == pytest.approx(
            spec.a * spec.data_size * math.log2(spec.data_size)
        )

    def test_reproducible_with_seed(self):
        s1 = sample_task_spec(42)
        s2 = sample_task_spec(42)
        assert s1 == s2

    def test_sample_many(self, rng):
        specs = sample_task_specs(17, rng)
        assert len(specs) == 17
        # independent draws: not all identical
        assert len({s.data_size for s in specs}) > 1

    def test_log_uniform_spread(self, rng):
        """d spans orders of magnitude (not clustered at the top)."""
        ds = np.array(
            [sample_task_spec(rng).data_size for _ in range(300)]
        )
        assert np.median(ds) < MAX_DATA_SIZE / 10
