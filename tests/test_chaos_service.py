"""Service chaos harness: fault-injecting proxy + spool corruptors.

The headline acceptance test lives here: a submit whose ack is eaten
by a connection reset (the POST landed, the client never heard) is
retried through :class:`RetryingServiceClient` and comes back with the
ORIGINAL job id — no duplicate job, no lost work.
"""

from __future__ import annotations

import asyncio
import json
import threading

import pytest

from repro.graph import ptg_to_dict
from repro.service import (
    JobStore,
    RetryingServiceClient,
    RetryPolicy,
    SchedulingService,
    ServiceClient,
    ServiceUnavailable,
    parse_request,
)
from repro.testing import (
    CORRUPTION_MODES,
    ChaosProxy,
    ProxyPlan,
    corrupt_record,
    quarantined_files,
)
from repro.workloads import generate_fft


def make_doc(seed=31, generations=1, key=None):
    doc = {
        "ptg": ptg_to_dict(generate_fft(4, rng=7)),
        "platform": "chti",
        "model": "amdahl",
        "algorithm": "emts5",
        "seed": seed,
        "generations": generations,
    }
    if key is not None:
        doc["idempotency_key"] = key
    return doc


def start_service(spool=None):
    service = SchedulingService(
        port=0, workers=1, spool=str(spool) if spool else None
    )
    ready = threading.Event()

    def run():
        async def main():
            await service.start()
            ready.set()
            await service._drained.wait()
            assert service._server is not None
            service._server.close()
            await service._server.wait_closed()

        asyncio.run(main())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert ready.wait(timeout=15), "service did not start"
    return service, thread


def stop_service(service, thread):
    service.request_drain()
    thread.join(timeout=60)


@pytest.fixture
def service(tmp_path):
    service, thread = start_service(tmp_path / "spool")
    yield service
    stop_service(service, thread)


def retrying_client(port, **policy_kwargs):
    policy_kwargs.setdefault("seed", 7)
    policy_kwargs.setdefault("base", 0.01)
    policy_kwargs.setdefault("cap", 0.05)
    return RetryingServiceClient(
        port=port, policy=RetryPolicy(**policy_kwargs)
    )


class TestChaosProxy:
    def test_clean_passthrough(self, service):
        with ChaosProxy(service.bound_port) as proxy:
            client = ServiceClient(port=proxy.port, timeout=10)
            assert client.healthz()["status"] == "ok"
            doc = client.schedule(make_doc(), timeout=60)
            assert doc["job"]["state"] == "done"
            assert proxy.faults_injected == 0
            assert proxy.connections >= 2

    def test_dropped_connection_surfaces_as_unavailable(self, service):
        plan = ProxyPlan(drop_connections=frozenset({0}))
        with ChaosProxy(service.bound_port, plan=plan) as proxy:
            client = ServiceClient(port=proxy.port, timeout=10)
            with pytest.raises(ServiceUnavailable):
                client.healthz()
            assert client.healthz()["status"] == "ok"  # connection 1
            assert proxy.faults_injected == 1

    @pytest.mark.parametrize("cut", [5, 200])
    def test_truncated_response_surfaces_as_unavailable(
        self, service, cut
    ):
        # cut=5 tears the status line (BadStatusLine); cut=200 tears
        # the body short of its Content-Length (IncompleteRead) — both
        # must surface as the retryable ServiceUnavailable
        plan = ProxyPlan(
            truncate_response=frozenset({0}), truncate_bytes=cut
        )
        with ChaosProxy(service.bound_port, plan=plan) as proxy:
            client = ServiceClient(port=proxy.port, timeout=10)
            with pytest.raises(ServiceUnavailable):
                client.stats()

    def test_retrying_client_rides_through_drops(self, service):
        plan = ProxyPlan(drop_connections=frozenset({0, 1}))
        with ChaosProxy(service.bound_port, plan=plan) as proxy:
            client = retrying_client(proxy.port)
            assert client.healthz()["status"] == "ok"
            assert client.stats.retries == 2

    def test_reset_after_post_retry_returns_original_job(self, service):
        """THE exactly-once acceptance test.

        Connection 0 carries the POST: the daemon processes it (job
        created, queued, durable) but the ack is replaced by an RST.
        The retried POST on connection 1 must find the original job by
        idempotency key — never enqueue a twin.
        """
        plan = ProxyPlan(reset_after_request=frozenset({0}))
        with ChaosProxy(service.bound_port, plan=plan) as proxy:
            client = retrying_client(proxy.port)
            doc = client.submit(make_doc(generations=2))
            assert client.stats.retries == 1
            assert doc["deduplicated"] is True  # found the first POST
            assert len(service.store) == 1  # exactly one job exists
            only_job = service.store.jobs()[0]
            assert doc["job"]["id"] == only_job.id
            final = client.wait_for(doc["job"]["id"], timeout=60)
            assert final["job"]["state"] == "done"
            assert len(service.store) == 1

    def test_sampled_plan_is_reproducible(self):
        a = ProxyPlan.sampled(
            50, seed=3, drop_rate=0.2, reset_rate=0.1
        )
        b = ProxyPlan.sampled(
            50, seed=3, drop_rate=0.2, reset_rate=0.1
        )
        assert a == b
        assert a.drop_connections  # the rates actually sampled faults
        assert a.drop_connections.isdisjoint(a.reset_after_request)

    def test_schedule_under_sampled_chaos(self, service):
        plan = ProxyPlan.sampled(
            100,
            seed=5,
            drop_rate=0.2,
            reset_rate=0.1,
            delay_rate=0.1,
            delay_seconds=0.01,
        )
        with ChaosProxy(service.bound_port, plan=plan) as proxy:
            client = retrying_client(proxy.port, max_attempts=10)
            doc = client.schedule(make_doc(seed=77), timeout=120)
            assert doc["job"]["state"] == "done"
            # chaos must not have spawned duplicate jobs
            assert len(service.store) == 1


class TestSpoolCorruption:
    def populated_store(self, tmp_path, n=3):
        spool = tmp_path / "spool"
        store = JobStore(spool)
        jobs = []
        for i in range(n):
            job = store.create(
                parse_request(make_doc(seed=i, key=f"idem-{i}"))
            )
            job.state = "done"
            job.result = {"makespan": 1.0 + i}
            job.done_event.set()
            store.persist(job)
            jobs.append(job)
        return spool, jobs

    @pytest.mark.parametrize("mode", CORRUPTION_MODES)
    def test_each_corruption_shape_is_quarantined(self, tmp_path, mode):
        spool, jobs = self.populated_store(tmp_path)
        victim = spool / "jobs" / f"{jobs[0].id}.json"
        corrupt_record(victim, mode, seed=1)

        fresh = JobStore(spool)
        fresh.recover()
        assert len(fresh.quarantined) == 1
        assert quarantined_files(spool) == fresh.quarantined
        # healthy records recovered untouched
        survivors = {j.id for j in fresh.jobs()}
        expected = {j.id for j in jobs[1:]}
        if mode == "tamper":
            # a tampered record may still parse; if it did, it was
            # adopted — the quarantine claim only covers unreadable
            # records, so just require the healthy ones survived
            assert expected <= survivors
        else:
            assert jobs[0].id not in survivors
            assert survivors == expected

    def test_tampered_record_does_not_parse(self, tmp_path):
        # byte-flipping the middle of a compact JSON document breaks
        # it with overwhelming probability for these seeds; pin one
        spool, jobs = self.populated_store(tmp_path, n=1)
        victim = spool / "jobs" / f"{jobs[0].id}.json"
        corrupt_record(victim, "tamper", seed=1)
        with pytest.raises(Exception):
            json.loads(victim.read_text())

    def test_multiple_corrupt_records_all_quarantined(self, tmp_path):
        spool, jobs = self.populated_store(tmp_path, n=4)
        for job, mode in zip(jobs[:3], ("truncate", "zero", "tamper")):
            corrupt_record(
                spool / "jobs" / f"{job.id}.json", mode, seed=1
            )
        fresh = JobStore(spool)
        recovered = fresh.recover()
        assert len(fresh.quarantined) >= 2  # tamper may still parse
        assert recovered == []  # survivors were all done
        assert {j.id for j in fresh.jobs()} >= {jobs[3].id}

    def test_quarantine_preserves_bytes_for_forensics(self, tmp_path):
        spool, jobs = self.populated_store(tmp_path, n=1)
        victim = spool / "jobs" / f"{jobs[0].id}.json"
        corrupt_record(victim, "truncate")
        corrupted_bytes = victim.read_bytes()
        fresh = JobStore(spool)
        fresh.recover()
        assert not victim.exists()
        assert fresh.quarantined[0].read_bytes() == corrupted_bytes

    def test_unknown_mode_rejected(self, tmp_path):
        spool, jobs = self.populated_store(tmp_path, n=1)
        with pytest.raises(ValueError):
            corrupt_record(
                spool / "jobs" / f"{jobs[0].id}.json", "bitrot"
            )

    def test_daemon_counts_quarantined_records(self, tmp_path):
        spool, jobs = self.populated_store(tmp_path)
        corrupt_record(
            spool / "jobs" / f"{jobs[0].id}.json", "zero"
        )
        service, thread = start_service(spool)
        try:
            assert (
                service.metrics.value("service.spool.quarantined") == 1
            )
            # the daemon still serves: healthy records were adopted
            client = ServiceClient(port=service.bound_port, timeout=10)
            assert client.healthz()["status"] == "ok"
        finally:
            stop_service(service, thread)
