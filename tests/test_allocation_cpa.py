"""Unit tests for CPA and the CPA-family machinery."""

import numpy as np
import pytest

from repro.allocation import (
    CpaAllocator,
    cpa_quantities,
    critical_path_mask,
)
from repro.graph import PTG, Task, chain
from repro.mapping import makespan_of
from repro.platform import Cluster
from repro.timemodels import AmdahlModel, SyntheticModel, TimeTable


def table_for(ptg, P=8, model=None, speed=1.0):
    cluster = Cluster("c", num_processors=P, speed_gflops=speed)
    return TimeTable.build(model or AmdahlModel(), ptg, cluster)


class TestCpaQuantities:
    def test_chain_all_ones(self):
        ptg = chain([1e9, 2e9, 3e9])
        table = table_for(ptg, P=4)
        alloc = np.ones(3, dtype=np.int64)
        t_cp, t_a = cpa_quantities(ptg, table, alloc)
        assert t_cp == pytest.approx(6.0)
        assert t_a == pytest.approx(6.0 / 4)


class TestCriticalPathMask:
    def test_diamond(self, diamond_ptg):
        # times: a=1, b=2, c=4, d=1 -> CP is a-c-d
        t = np.array([1.0, 2.0, 4.0, 1.0])
        mask, t_cp = critical_path_mask(diamond_ptg, t)
        assert t_cp == pytest.approx(6.0)
        assert mask.tolist() == [True, False, True, True]

    def test_parallel_equal_branches_all_critical(self, fork_join_ptg):
        t = np.ones(8)
        mask, _ = critical_path_mask(fork_join_ptg, t)
        assert mask.all()  # every branch ties for criticality


class TestCpaMonotone:
    def test_allocations_grow_beyond_one(self):
        ptg = chain([8e9, 8e9])
        table = table_for(ptg, P=8)
        alloc = CpaAllocator().allocate(ptg, table)
        assert alloc.max() > 1

    def test_allocation_in_bounds(self, irregular_ptg):
        table = table_for(irregular_ptg, P=8)
        alloc = CpaAllocator().allocate(irregular_ptg, table)
        assert alloc.min() >= 1
        assert alloc.max() <= 8

    def test_stops_when_tcp_below_ta(self, fork_join_ptg):
        table = table_for(fork_join_ptg, P=4)
        alloc = CpaAllocator().allocate(fork_join_ptg, table)
        from repro.allocation import cpa_quantities

        t_cp, t_a = cpa_quantities(fork_join_ptg, table, alloc)
        # after termination either the balance holds or nothing on the CP
        # could still improve; for this perfectly-scalable monotone case
        # the balance is reachable
        assert t_cp <= t_a * (1 + 1e-9) or alloc.max() == 4

    def test_improves_over_serial(self, fft8_ptg, grelon_cluster):
        table = TimeTable.build(
            AmdahlModel(), fft8_ptg, grelon_cluster
        )
        serial_ms = makespan_of(
            fft8_ptg, table, np.ones(39, dtype=np.int64)
        )
        cpa_ms = makespan_of(
            fft8_ptg, table, CpaAllocator().allocate(fft8_ptg, table)
        )
        assert cpa_ms < serial_ms

    def test_single_task_gets_everything_or_balance(self):
        # one perfectly parallel task: CPA grows it until T_CP <= T_A;
        # with alpha=0, T_A is constant = T(1)/P, so it grows to P
        ptg = PTG([Task("t", work=8e9, alpha=0.0)], [])
        table = table_for(ptg, P=8)
        alloc = CpaAllocator().allocate(ptg, table)
        assert alloc[0] == 8


class TestCpaNonMonotoneGuard:
    def test_allocations_stall_under_model2(self, fft8_ptg):
        """The paper's observation: under Model 2 allocations stop at
        4-8 processors."""
        table = table_for(fft8_ptg, P=120, model=SyntheticModel())
        alloc = CpaAllocator().allocate(fft8_ptg, table)
        assert alloc.max() <= 8

    def test_terminates_under_model2(self, irregular_ptg):
        table = table_for(
            irregular_ptg, P=64, model=SyntheticModel()
        )
        alloc = CpaAllocator().allocate(irregular_ptg, table)
        assert alloc.shape == (irregular_ptg.num_tasks,)

    def test_never_grows_at_negative_gain(self):
        ptg = PTG([Task("t", work=6e9, alpha=0.3)], [])
        table = table_for(ptg, P=3, model=SyntheticModel())
        alloc = CpaAllocator().allocate(ptg, table)
        # T(3) > T(2) at alpha=0.3: the guard must stop at 2
        assert alloc[0] == 2

    def test_allow_negative_gain_flag(self):
        ptg = PTG([Task("t", work=6e9, alpha=0.3)], [])
        table = table_for(ptg, P=3, model=SyntheticModel())
        loose = CpaAllocator(allow_negative_gain=True)
        alloc = loose.allocate(ptg, table)
        # without the guard the loop pushes past the inversion (and is
        # stopped by T_CP <= T_A or the cap)
        assert alloc[0] >= 2

    def test_max_iterations_cap(self, fft8_ptg, grelon_cluster):
        table = TimeTable.build(
            AmdahlModel(), fft8_ptg, grelon_cluster
        )
        capped = CpaAllocator(max_iterations=3).allocate(
            fft8_ptg, table
        )
        # at most 3 growth steps from all-ones
        assert (capped - 1).sum() <= 3
