"""Checks on the package's public surface: exports resolve, versioning,
exception hierarchy, and docstring coverage of public items."""

import importlib
import inspect

import pytest

import repro
from repro import exceptions


class TestExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.graph",
            "repro.platform",
            "repro.timemodels",
            "repro.workloads",
            "repro.mapping",
            "repro.allocation",
            "repro.ea",
            "repro.core",
            "repro.simulator",
            "repro.experiments",
            "repro.experiments.figures",
        ],
    )
    def test_subpackage_all_resolves(self, module_name):
        mod = importlib.import_module(module_name)
        for name in mod.__all__:
            assert hasattr(mod, name), f"{module_name}.{name}"


class TestExceptionHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in exceptions.__all__:
            exc = getattr(exceptions, name)
            assert issubclass(exc, exceptions.ReproError)

    def test_catchable_at_base(self):
        from repro.graph import PTG

        with pytest.raises(exceptions.ReproError):
            PTG([], [])


class TestDocstrings:
    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.graph",
            "repro.timemodels",
            "repro.mapping",
            "repro.allocation",
            "repro.ea",
            "repro.core",
            "repro.simulator",
            "repro.experiments",
        ],
    )
    def test_public_items_documented(self, module_name):
        mod = importlib.import_module(module_name)
        undocumented = []
        for name in mod.__all__:
            obj = getattr(mod, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ or "").strip():
                    undocumented.append(f"{module_name}.{name}")
                if inspect.isclass(obj):
                    for mname, meth in vars(obj).items():
                        if mname.startswith("_"):
                            continue
                        if not inspect.isfunction(meth):
                            continue
                        if (meth.__doc__ or "").strip():
                            continue
                        # overriding a documented base method inherits
                        # its contract — that counts as documented
                        inherited = any(
                            (
                                getattr(
                                    base, mname, None
                                ).__doc__
                                or ""
                            ).strip()
                            for base in obj.__mro__[1:]
                            if getattr(base, mname, None) is not None
                        )
                        if not inherited:
                            undocumented.append(
                                f"{module_name}.{name}.{mname}"
                            )
        assert not undocumented, undocumented

    def test_package_docstring_mentions_paper(self):
        assert "Hunold" in repro.__doc__
        assert "CLUSTER 2011" in repro.__doc__
