"""Tests for the metrics registry (repro.obs.metrics)."""

import json
import math

import pytest

from repro.obs import (
    DEFAULT_SECONDS_BUCKETS,
    MetricsRegistry,
)


class TestInstruments:
    def test_counter(self):
        reg = MetricsRegistry()
        c = reg.counter("emts.evaluations", help="genomes")
        c.inc()
        c.inc(9)
        assert c.value == 10
        assert c.to_dict() == {"kind": "counter", "value": 10}

    def test_counter_rejects_negative(self):
        c = MetricsRegistry().counter("c")
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1)

    def test_gauge(self):
        g = MetricsRegistry().gauge("emts.makespan")
        g.set(21.8)
        g.set(19.5)
        assert g.value == 19.5

    def test_timer(self):
        t = MetricsRegistry().timer("emts.run_seconds")
        t.observe(0.5)
        t.observe(1.5)
        assert t.count == 2
        assert t.total == pytest.approx(2.0)
        assert t.min == pytest.approx(0.5)
        assert t.max == pytest.approx(1.5)
        assert t.mean == pytest.approx(1.0)

    def test_timer_rejects_negative(self):
        t = MetricsRegistry().timer("t")
        with pytest.raises(ValueError, match="negative"):
            t.observe(-0.1)

    def test_histogram_buckets(self):
        h = MetricsRegistry().histogram(
            "lat", buckets=(0.001, 0.01, 0.1)
        )
        for v in (0.0005, 0.005, 0.005, 0.05, 5.0):
            h.observe(v)
        # per-bucket (non-cumulative) counts + implicit +inf bucket
        assert h.counts == [1, 2, 1, 1]
        assert h.total == 5
        assert h.sum == pytest.approx(5.0605)

    def test_histogram_rejects_bad_bounds(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="increasing"):
            reg.histogram("h", buckets=(0.1, 0.1))
        with pytest.raises(ValueError, match="bucket"):
            reg.histogram("h2", buckets=())

    def test_default_buckets_cover_decades(self):
        assert DEFAULT_SECONDS_BUCKETS[0] == pytest.approx(1e-4)
        assert DEFAULT_SECONDS_BUCKETS[-1] == pytest.approx(100.0)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert len(reg) == 1

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")

    def test_names_and_contains(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.gauge("a")
        assert reg.names() == ["a", "b"]
        assert "a" in reg and "c" not in reg
        assert reg.get("c") is None

    def test_value_shortcut(self):
        reg = MetricsRegistry()
        reg.counter("n").inc(3)
        assert reg.value("n") == 3

    def test_snapshot_is_json_serializable(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.timer("t").observe(0.1)
        reg.histogram("h").observe(0.01)
        json.dumps(reg.snapshot())  # must not raise

    def test_merge_accumulates(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(2)
        a.timer("t").observe(1.0)
        b.counter("c").inc(3)
        b.timer("t").observe(3.0)
        a.merge(b.snapshot())
        assert a.value("c") == 5
        t = a.get("t")
        assert t.count == 2 and t.total == pytest.approx(4.0)
        assert t.min == pytest.approx(1.0)
        assert t.max == pytest.approx(3.0)

    def test_merge_creates_missing_metrics(self):
        parent, worker = MetricsRegistry(), MetricsRegistry()
        worker.counter("worker.genomes").inc(25)
        worker.histogram("worker.lat", buckets=(0.1, 1.0)).observe(0.5)
        parent.merge(worker.snapshot())
        assert parent.value("worker.genomes") == 25
        assert parent.get("worker.lat").counts == [0, 1, 0]

    def test_merge_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown kind"):
            MetricsRegistry().merge({"m": {"kind": "exotic"}})

    def test_merge_rejects_bucket_mismatch(self):
        parent = MetricsRegistry()
        parent.histogram("h", buckets=(0.1,))
        worker = MetricsRegistry()
        worker.histogram("h", buckets=(0.2,)).observe(0.1)
        with pytest.raises(ValueError, match="buckets"):
            parent.merge(worker.snapshot())

    def test_drain_resets_for_delta_shipping(self):
        """Chunk-boundary protocol: each drain ships only the delta."""
        worker = MetricsRegistry()
        worker.counter("g").inc(10)
        first = worker.drain()
        assert first["g"]["value"] == 10
        assert worker.value("g") == 0
        worker.counter("g").inc(4)
        second = worker.drain()
        assert second["g"]["value"] == 4
        parent = MetricsRegistry()
        parent.merge(first)
        parent.merge(second)
        assert parent.value("g") == 14

    def test_merged_empty_timer_keeps_min_clean(self):
        parent = MetricsRegistry()
        parent.timer("t").observe(1.0)
        worker = MetricsRegistry()
        worker.timer("t")  # never observed
        parent.merge(worker.snapshot())
        t = parent.get("t")
        assert t.count == 1 and t.min == pytest.approx(1.0)
        assert not math.isinf(t.min)


class TestExporters:
    @pytest.fixture
    def reg(self):
        reg = MetricsRegistry()
        reg.counter("emts.evaluations", help="genomes").inc(130)
        reg.gauge("emts.makespan").set(21.8)
        reg.timer("emts.run_seconds").observe(0.04)
        reg.histogram(
            "evaluation.batch_seconds", buckets=(0.001, 0.1)
        ).observe(0.01)
        return reg

    def test_render_text(self, reg):
        text = reg.render_text()
        assert "emts.evaluations" in text
        assert "130" in text

    def test_render_prometheus(self, reg):
        prom = reg.render_prometheus()
        assert "# TYPE repro_emts_evaluations counter" in prom
        assert "repro_emts_evaluations 130" in prom
        assert "repro_emts_makespan 21.8" in prom
        assert 'le="+Inf"' in prom

    def test_prometheus_does_not_double_seconds_suffix(self, reg):
        prom = reg.render_prometheus()
        assert "repro_emts_run_seconds_sum" in prom
        assert "seconds_seconds" not in prom
        # a timer without the unit in its name gains it on export
        reg.timer("campaign.trial").observe(1.0)
        assert "repro_campaign_trial_seconds_count" in (
            reg.render_prometheus()
        )

    def test_dump_json_and_prom(self, reg, tmp_path):
        out = reg.dump(tmp_path / "m.json")
        data = json.loads(out.read_text())
        assert data["emts.evaluations"]["value"] == 130
        prom = reg.dump(tmp_path / "m.prom")
        assert prom.read_text().startswith("# TYPE ")

    def test_to_json_round_trips(self, reg):
        data = json.loads(reg.to_json())
        fresh = MetricsRegistry()
        fresh.merge(data)
        assert fresh.value("emts.evaluations") == 130


class TestHistogramQuantile:
    """Prometheus-style linear-interpolated quantiles, used by the
    scheduling service to derive p50/p99 latencies for its gates."""

    def _hist(self, values, buckets=(1.0, 2.0, 5.0, 10.0)):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=buckets)
        for v in values:
            h.observe(v)
        return h

    def test_empty_histogram_returns_zero(self):
        assert self._hist([]).quantile(0.99) == 0.0

    def test_median_interpolates_within_bucket(self):
        # 100 samples spread uniformly over (0, 1]: the p50 estimate
        # lands mid-bucket
        h = self._hist([i / 100 for i in range(1, 101)])
        assert 0.4 <= h.quantile(0.5) <= 0.6

    def test_monotone_in_q(self):
        h = self._hist([0.5, 1.5, 3.0, 7.0, 9.0, 9.5])
        qs = [h.quantile(q) for q in (0.1, 0.5, 0.9, 0.99)]
        assert qs == sorted(qs)

    def test_p99_hits_upper_buckets(self):
        h = self._hist([0.1] * 99 + [9.0])
        assert h.quantile(0.5) <= 1.0
        assert h.quantile(0.999) > 5.0

    def test_overflow_clamps_to_last_finite_bound(self):
        h = self._hist([100.0, 200.0])  # all in the +inf bucket
        assert h.quantile(0.99) == 10.0

    def test_validates_q(self):
        h = self._hist([1.0])
        with pytest.raises(ValueError):
            h.quantile(0.0)
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_merge_preserves_quantiles(self):
        a = self._hist([0.5] * 50)
        b = self._hist([9.0] * 50)
        merged = self._hist([])
        merged.merge(a.to_dict())
        merged.merge(b.to_dict())
        assert merged.total == 100
        assert merged.quantile(0.25) <= 1.0
        assert merged.quantile(0.9) > 5.0
