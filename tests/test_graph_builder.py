"""Unit tests for PTGBuilder and the convenience factories."""

import pytest

from repro.exceptions import GraphError
from repro.graph import PTGBuilder, chain, fork_join


class TestPTGBuilder:
    def test_add_task_returns_index(self):
        b = PTGBuilder()
        assert b.add_task("a", work=1.0) == 0
        assert b.add_task("b", work=1.0) == 1
        assert b.num_tasks == 2

    def test_duplicate_name_rejected(self):
        b = PTGBuilder()
        b.add_task("a", work=1.0)
        with pytest.raises(GraphError, match="duplicate"):
            b.add_task("a", work=2.0)

    def test_edge_by_name(self):
        b = PTGBuilder()
        b.add_task("a", work=1.0)
        b.add_task("b", work=1.0)
        b.add_edge("a", "b")
        g = b.build()
        assert g.num_edges == 1
        assert g.successors(g.index("a")) == (g.index("b"),)

    def test_edge_by_index(self):
        b = PTGBuilder()
        i = b.add_task("a", work=1.0)
        j = b.add_task("b", work=1.0)
        b.add_edge(i, j)
        assert b.build().num_edges == 1

    def test_unknown_name_rejected(self):
        b = PTGBuilder()
        b.add_task("a", work=1.0)
        with pytest.raises(GraphError, match="unknown task name"):
            b.add_edge("a", "zzz")

    def test_index_out_of_range_rejected(self):
        b = PTGBuilder()
        b.add_task("a", work=1.0)
        with pytest.raises(GraphError, match="out of range"):
            b.add_edge(0, 5)

    def test_self_loop_rejected_eagerly(self):
        b = PTGBuilder()
        b.add_task("a", work=1.0)
        with pytest.raises(GraphError, match="self-loop"):
            b.add_edge("a", "a")

    def test_add_edges_bulk(self):
        b = PTGBuilder()
        for n in "abc":
            b.add_task(n, work=1.0)
        b.add_edges([("a", "b"), ("b", "c")])
        assert b.build().num_edges == 2

    def test_contains(self):
        b = PTGBuilder()
        b.add_task("a", work=1.0)
        assert "a" in b
        assert "b" not in b

    def test_build_detects_cycle(self):
        b = PTGBuilder()
        for n in "ab":
            b.add_task(n, work=1.0)
        b.add_edge("a", "b")
        b.add_edge("b", "a")
        from repro.exceptions import CycleError

        with pytest.raises(CycleError):
            b.build()

    def test_builder_name_propagates(self):
        b = PTGBuilder("myname")
        b.add_task("a", work=1.0)
        assert b.build().name == "myname"


class TestFactories:
    def test_chain_structure(self):
        g = chain([1.0, 2.0, 3.0])
        assert g.num_tasks == 3
        assert g.num_edges == 2
        assert g.sources == (0,)
        assert g.sinks == (2,)

    def test_chain_single(self):
        g = chain([5.0])
        assert g.num_tasks == 1
        assert g.num_edges == 0

    def test_fork_join_structure(self):
        g = fork_join([1.0] * 4, head_work=2.0, tail_work=3.0)
        assert g.num_tasks == 6
        assert len(g.sources) == 1
        assert len(g.sinks) == 1
        head = g.index("head")
        tail = g.index("tail")
        assert len(g.successors(head)) == 4
        assert len(g.predecessors(tail)) == 4

    def test_fork_join_no_branches(self):
        g = fork_join([])
        assert g.num_tasks == 2
        assert g.num_edges == 1  # head -> tail directly

    def test_chain_empty_rejected(self):
        with pytest.raises(GraphError):
            chain([])
