"""Unit tests for the allocation-vector encoding helpers (Figure 2)."""

import numpy as np
import pytest

from repro.core import (
    clamp_allocations,
    describe_genome,
    random_allocations,
    validate_genome,
)
from repro.exceptions import AllocationError
from repro.graph import chain


class TestClamp:
    def test_clamps_both_sides(self):
        g = np.array([-5, 0, 1, 8, 99])
        assert clamp_allocations(g, 8).tolist() == [1, 1, 1, 8, 8]

    def test_identity_when_valid(self):
        g = np.array([1, 4, 8])
        assert clamp_allocations(g, 8).tolist() == [1, 4, 8]

    def test_returns_int64(self):
        assert clamp_allocations(np.array([2.0]), 4).dtype == np.int64


class TestValidate:
    def test_valid(self):
        out = validate_genome(np.array([1, 2, 3]), 3, 4)
        assert out.dtype == np.int64

    def test_wrong_shape(self):
        with pytest.raises(AllocationError, match="shape"):
            validate_genome(np.array([1, 2]), 3, 4)

    def test_non_integer(self):
        with pytest.raises(AllocationError, match="integers"):
            validate_genome(np.array([1.5, 2.0, 3.0]), 3, 4)

    def test_out_of_range(self):
        with pytest.raises(AllocationError, match="lie in"):
            validate_genome(np.array([0, 2, 3]), 3, 4)
        with pytest.raises(AllocationError, match="lie in"):
            validate_genome(np.array([1, 2, 5]), 3, 4)


class TestRandom:
    def test_in_range(self, rng):
        g = random_allocations(100, 7, rng)
        assert g.min() >= 1
        assert g.max() <= 7
        assert g.shape == (100,)

    def test_covers_domain(self, rng):
        g = random_allocations(1000, 5, rng)
        assert set(np.unique(g)) == {1, 2, 3, 4, 5}

    def test_invalid(self, rng):
        with pytest.raises(AllocationError):
            random_allocations(0, 5, rng)


class TestDescribe:
    def test_table_layout(self):
        ptg = chain([1e9, 1e9], name="c")
        out = describe_genome(ptg, np.array([3, 1]))
        assert "position" in out
        lines = out.splitlines()
        assert len(lines) == 3  # header + 2 rows
        assert "t0" in lines[1] and "3" in lines[1]
