"""Unit tests for TimeTable — the precomputed V x P lookup."""

import numpy as np
import pytest

from repro.exceptions import AllocationError, ModelError, TimeModelError
from repro.graph import chain
from repro.platform import Cluster
from repro.timemodels import (
    AmdahlModel,
    ExecutionTimeModel,
    SyntheticModel,
    TimeTable,
)


@pytest.fixture
def table():
    ptg = chain([4e9, 8e9], name="c2")
    cluster = Cluster("c", num_processors=4, speed_gflops=1.0)
    return TimeTable.build(AmdahlModel(), ptg, cluster)


class TestConstruction:
    def test_shape(self, table):
        assert table.shape == (2, 4)
        assert table.num_tasks == 2
        assert table.num_processors == 4

    def test_wrong_shape_rejected(self):
        ptg = chain([1e9], name="c1")
        cluster = Cluster("c", num_processors=4, speed_gflops=1.0)
        with pytest.raises(ModelError, match="shape"):
            TimeTable(ptg, cluster, np.ones((2, 4)))

    def test_nonpositive_entries_rejected(self):
        ptg = chain([1e9], name="c1")
        cluster = Cluster("c", num_processors=2, speed_gflops=1.0)
        with pytest.raises(ModelError, match="positive"):
            TimeTable(ptg, cluster, np.array([[1.0, 0.0]]))

    def test_nan_rejected(self):
        ptg = chain([1e9], name="c1")
        cluster = Cluster("c", num_processors=2, speed_gflops=1.0)
        with pytest.raises(ModelError):
            TimeTable(ptg, cluster, np.array([[1.0, np.nan]]))

    def test_array_readonly(self, table):
        with pytest.raises(ValueError):
            table.array[0, 0] = 99.0


class TestLookup:
    def test_time(self, table):
        assert table.time(0, 1) == pytest.approx(4.0)
        assert table.time(0, 4) == pytest.approx(1.0)
        assert table.time(1, 2) == pytest.approx(4.0)

    def test_time_out_of_range(self, table):
        with pytest.raises(AllocationError):
            table.time(0, 0)
        with pytest.raises(AllocationError):
            table.time(0, 5)

    def test_times_for_vectorized(self, table):
        times = table.times_for(np.array([2, 4]))
        assert np.allclose(times, [2.0, 2.0])

    def test_times_for_all_ones(self, table):
        assert np.allclose(table.times_for(np.array([1, 1])), [4.0, 8.0])


class TestGains:
    def test_gain_formula(self, table):
        g = table.gains(np.array([1, 1]))
        # T(v,1) - T(v,2) = 4-2 = 2 and 8-4 = 4
        assert np.allclose(g, [2.0, 4.0])

    def test_gain_at_cap_is_minus_inf(self, table):
        g = table.gains(np.array([4, 4]))
        assert np.all(np.isneginf(g))

    def test_negative_gain_under_model2(self):
        from repro.graph import PTG, Task

        ptg = PTG(
            [Task("t", work=6e9, alpha=0.3)], [], name="c1"
        )
        cluster = Cluster("c", num_processors=4, speed_gflops=1.0)
        t = TimeTable.build(SyntheticModel(), ptg, cluster)
        # growing 2 -> 3 procs hits the 1.3 odd penalty, which outweighs
        # the Amdahl gain at alpha = 0.3
        assert t.gains(np.array([2]))[0] < 0


class TestAreas:
    def test_work_area_all_ones(self, table):
        assert table.work_area(np.array([1, 1])) == pytest.approx(12.0)

    def test_perfect_scaling_keeps_area_constant(self):
        ptg = chain([8e9], name="c1")
        cluster = Cluster("c", num_processors=8, speed_gflops=1.0)
        t = TimeTable.build(AmdahlModel(), ptg, cluster)
        # alpha = 0: p * T(p) is constant
        assert t.work_area(np.array([8])) == pytest.approx(
            t.work_area(np.array([1]))
        )

    def test_average_area(self, table):
        assert table.average_area(np.array([1, 1])) == pytest.approx(
            3.0
        )

    def test_imperfect_scaling_increases_area(self):
        b = chain([8e9], name="c1")
        tasks = [b.task(0).with_updates(alpha=0.5)]
        from repro.graph import PTG

        ptg = PTG(tasks, [], name="seq-heavy")
        cluster = Cluster("c", num_processors=8, speed_gflops=1.0)
        t = TimeTable.build(AmdahlModel(), ptg, cluster)
        assert t.work_area(np.array([8])) > t.work_area(np.array([1]))


class TestHelpers:
    def test_is_monotone(self, table):
        assert table.is_monotone()

    def test_best_allocation_monotone_model(self, table):
        assert table.best_allocation(0) == 4

    def test_best_allocation_non_monotone(self):
        ptg = chain([6e9], name="c1")
        cluster = Cluster("c", num_processors=3, speed_gflops=1.0)
        t = TimeTable.build(SyntheticModel(), ptg, cluster)
        # T(1)=6, T(2)=3, T(3)=2*1.3=2.6 -> best is 3 procs here
        assert t.best_allocation(0) == 3

    def test_model_name_recorded(self, table):
        assert table.model_name == "model1-amdahl"


class TestTimeModelError:
    """Poisoned predictions must be rejected with a full diagnosis."""

    def test_table_diagnoses_bad_entry(self):
        ptg = chain([1e9, 2e9], name="c2")
        cluster = Cluster("c", num_processors=3, speed_gflops=1.0)
        good = np.ones((2, 3))
        for poison in (np.nan, np.inf, -np.inf, 0.0, -1.0):
            bad = good.copy()
            bad[1, 2] = poison
            with pytest.raises(TimeModelError) as err:
                TimeTable(ptg, cluster, bad, model_name="probe")
            exc = err.value
            assert exc.task == ptg.task(1).name
            assert exc.p == 3
            assert exc.model == "probe"
            assert "probe" in str(exc)

    def test_model_time_guard(self):
        class PoisonModel(ExecutionTimeModel):
            name = "poison"

            def time(self, task, p, cluster):
                return self._check_time(float("nan"), task, p)

        ptg = chain([1e9], name="c1")
        cluster = Cluster("c", num_processors=2, speed_gflops=1.0)
        with pytest.raises(TimeModelError) as err:
            PoisonModel().time(ptg.task(0), 1, cluster)
        assert err.value.model == "poison"
        assert err.value.p == 1
        with pytest.raises(TimeModelError):
            TimeTable.build(PoisonModel(), ptg, cluster)

    def test_is_model_error_subclass(self):
        # callers catching the old ModelError keep working
        assert issubclass(TimeModelError, ModelError)
