"""Cross-validation against brute force on tiny instances.

For PTGs small enough to enumerate every allocation vector (P^V
combinations), the best achievable list-schedule makespan is computable
exactly.  These tests pin the whole stack against that ground truth:

* EMTS with enough budget finds the brute-force optimum;
* no algorithm ever reports a makespan below the optimum (which would
  indicate a scheduler bug);
* the heuristics land within a bounded factor of the optimum.
"""

import itertools

import numpy as np
import pytest

from repro.allocation import (
    BicpaAllocator,
    CpaAllocator,
    CprAllocator,
    DeltaCriticalAllocator,
    HcpaAllocator,
    McpaAllocator,
)
from repro.core import EMTS, EMTSConfig
from repro.graph import PTG, PTGBuilder, Task, chain, fork_join
from repro.mapping import makespan_of
from repro.platform import Cluster
from repro.timemodels import AmdahlModel, SyntheticModel, TimeTable


def brute_force_optimum(ptg, table) -> float:
    """Exact best list-schedule makespan over all allocation vectors."""
    P = table.num_processors
    V = ptg.num_tasks
    best = np.inf
    for combo in itertools.product(range(1, P + 1), repeat=V):
        ms = makespan_of(
            ptg, table, np.asarray(combo, dtype=np.int64)
        )
        if ms < best:
            best = ms
    return best


def tiny_problems():
    """(name, ptg, cluster) instances with P^V <= ~7k."""
    diamond = PTGBuilder("tiny-diamond")
    a = diamond.add_task("a", work=2e9, alpha=0.1)
    b = diamond.add_task("b", work=6e9, alpha=0.05)
    c = diamond.add_task("c", work=3e9, alpha=0.2)
    d = diamond.add_task("d", work=1e9, alpha=0.0)
    diamond.add_edges([(a, b), (a, c), (b, d), (c, d)])

    return [
        ("chain3", chain([2e9, 5e9, 1e9], name="c3"),
         Cluster("p6", num_processors=6, speed_gflops=1.0)),
        ("diamond", diamond.build(),
         Cluster("p4", num_processors=4, speed_gflops=1.0)),
        ("indep4", PTG(
            [Task(f"t{i}", work=(i + 1) * 1e9) for i in range(4)],
            [],
            name="i4",
        ), Cluster("p3", num_processors=3, speed_gflops=1.0)),
        ("forkjoin", fork_join([4e9, 2e9], head_work=1e9,
                               tail_work=1e9, name="fj2"),
         Cluster("p4b", num_processors=4, speed_gflops=1.0)),
    ]


@pytest.mark.parametrize(
    "model", [AmdahlModel(), SyntheticModel()], ids=["m1", "m2"]
)
@pytest.mark.parametrize(
    "case", tiny_problems(), ids=[c[0] for c in tiny_problems()]
)
class TestAgainstBruteForce:
    @pytest.fixture
    def setup(self, case, model):
        _, ptg, cluster = case
        table = TimeTable.build(model, ptg, cluster)
        return ptg, cluster, table, brute_force_optimum(ptg, table)

    def test_no_algorithm_beats_the_optimum(self, setup):
        ptg, cluster, table, optimum = setup
        for alg in (
            CpaAllocator(),
            CprAllocator(),
            HcpaAllocator(),
            McpaAllocator(),
            BicpaAllocator(),
            DeltaCriticalAllocator(),
        ):
            ms = makespan_of(ptg, table, alg.allocate(ptg, table))
            assert ms >= optimum - 1e-9, alg.name

    def test_emts_reaches_the_optimum(self, setup):
        ptg, cluster, table, optimum = setup
        config = EMTSConfig(mu=8, lam=40, generations=30, fm=1.0)
        result = EMTS(config).schedule(ptg, cluster, table, rng=4)
        assert result.makespan == pytest.approx(optimum, rel=1e-9)

    def test_heuristics_within_bounded_factor(self, setup):
        ptg, cluster, table, optimum = setup
        for alg in (CprAllocator(), McpaAllocator()):
            ms = makespan_of(ptg, table, alg.allocate(ptg, table))
            # tiny instances: the heuristics stay within 2.5x of optimal
            assert ms <= optimum * 2.5, alg.name
