"""Tests for the evolutionary-method variant comparison."""

import pytest

from repro.core import EMTS, emts5_config
from repro.experiments import compare_variants, default_variant_panel
from repro.platform import Cluster
from repro.timemodels import SyntheticModel
from repro.workloads import generate_fft


@pytest.fixture(scope="module")
def result():
    ptgs = [generate_fft(4, rng=s) for s in range(2)]
    cluster = Cluster("c", num_processors=16, speed_gflops=2.0)
    panel = [
        EMTS(emts5_config()),
        EMTS(
            emts5_config().with_updates(
                generations=2, name="emts-short"
            )
        ),
        EMTS(
            emts5_config().with_updates(
                use_rejection=True, name="emts5-reject"
            )
        ),
    ]
    return compare_variants(
        ptgs, cluster, SyntheticModel(), variants=panel, seed=9
    )


class TestCompareVariants:
    def test_outcome_per_variant(self, result):
        names = {o.name for o in result.outcomes}
        assert names == {"emts5", "emts-short", "emts5-reject"}

    def test_lookup(self, result):
        assert result.outcome("emts5").mean_makespan > 0
        with pytest.raises(KeyError):
            result.outcome("nope")

    def test_rejection_variant_quality_identical(self, result):
        """Rejection changes speed, never quality."""
        assert result.outcome(
            "emts5-reject"
        ).mean_makespan == pytest.approx(
            result.outcome("emts5").mean_makespan
        )

    def test_shorter_run_cheaper(self, result):
        assert (
            result.outcome("emts-short").mean_evaluations
            < result.outcome("emts5").mean_evaluations
        )

    def test_more_budget_no_worse(self, result):
        assert (
            result.outcome("emts5").mean_makespan
            <= result.outcome("emts-short").mean_makespan + 1e-9
        )

    def test_best_and_fastest(self, result):
        assert result.best_quality().mean_makespan == min(
            o.mean_makespan for o in result.outcomes
        )
        assert result.fastest().mean_seconds == min(
            o.mean_seconds for o in result.outcomes
        )

    def test_render(self, result):
        out = result.render()
        assert "ms/eval" in out
        assert "emts5" in out

    def test_default_panel_names_unique(self):
        panel = default_variant_panel()
        names = [v.name for v in panel]
        assert len(names) == len(set(names))
        assert "emts5" in names and "emts10" in names
