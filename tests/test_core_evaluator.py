"""Tests for the pluggable fitness-evaluation engine.

Covers the acceptance invariants of the evaluator subsystem: every
backend returns bit-identical makespans (serial vs. process pool vs.
memoized), the cache accounts hits/misses correctly and stays bounded,
the rejection bound keeps working when shipped to worker processes, and
worker-count edge cases (0, 1, > cpu_count) behave sensibly.
"""

import os

import numpy as np
import pytest

from repro.core import (
    EMTSConfig,
    MemoizedEvaluator,
    ProcessPoolEvaluator,
    SerialEvaluator,
    create_evaluator,
    emts5,
)
from repro.core.evaluator import DEFAULT_CACHE_SIZE
from repro.ea import EvolutionStrategy, Individual, UniformIntegerMutation
from repro.exceptions import ConfigurationError
from repro.mapping import makespan_of
from repro.platform import grelon
from repro.timemodels import AmdahlModel, SyntheticModel, TimeTable
from repro.workloads import generate_fft, generate_strassen


@pytest.fixture(scope="module")
def problem():
    """Strassen + Model 1 (Amdahl) on Grelon — the acceptance instance."""
    ptg = generate_strassen(rng=11)
    cluster = grelon()
    table = TimeTable.build(AmdahlModel(), ptg, cluster)
    return ptg, cluster, table


@pytest.fixture(scope="module")
def genomes(problem):
    ptg, cluster, table = problem
    rng = np.random.default_rng(5)
    return [
        rng.integers(
            1, cluster.num_processors + 1, size=ptg.num_tasks
        ).astype(np.int64)
        for _ in range(12)
    ]


class TestSerialEvaluator:
    def test_matches_makespan_of(self, problem, genomes):
        ptg, _, table = problem
        with SerialEvaluator(ptg, table) as ev:
            values = ev.evaluate(genomes)
        expected = [makespan_of(ptg, table, g) for g in genomes]
        assert values == expected

    def test_stats_counters(self, problem, genomes):
        ptg, _, table = problem
        ev = SerialEvaluator(ptg, table)
        ev.evaluate(genomes)
        ev.evaluate(genomes[:3])
        assert ev.stats.evaluations == len(genomes) + 3
        assert ev.stats.mapper_calls == len(genomes) + 3
        assert ev.stats.cache_hits == 0
        assert ev.stats.batches == 2
        assert ev.stats.wall_seconds > 0

    def test_abort_above_rejects(self, problem, genomes):
        ptg, _, table = problem
        ev = SerialEvaluator(ptg, table)
        exact = ev.evaluate(genomes)
        bound = sorted(exact)[len(exact) // 2]
        gated = ev.evaluate(genomes, abort_above=bound)
        for e, g in zip(exact, gated):
            if e >= bound:
                assert g == float("inf")
            else:
                assert g == e

    def test_single_genome_call(self, problem, genomes):
        ptg, _, table = problem
        ev = SerialEvaluator(ptg, table)
        assert ev(genomes[0]) == makespan_of(ptg, table, genomes[0])

    def test_empty_batch(self, problem):
        ptg, _, table = problem
        ev = SerialEvaluator(ptg, table)
        assert ev.evaluate([]) == []
        assert ev.stats.evaluations == 0


class TestMemoizedEvaluator:
    def test_hit_accounting(self, problem, genomes):
        ptg, _, table = problem
        ev = MemoizedEvaluator(SerialEvaluator(ptg, table))
        first = ev.evaluate(genomes)
        assert ev.stats.cache_hits == 0
        assert ev.stats.cache_misses == len(genomes)
        second = ev.evaluate(genomes)
        assert second == first
        assert ev.stats.cache_hits == len(genomes)
        # the wrapped backend only ever ran the first batch
        assert ev.stats.mapper_calls == len(genomes)
        assert ev.stats.evaluations == 2 * len(genomes)
        assert ev.stats.hit_rate == pytest.approx(0.5)

    def test_duplicates_within_one_batch(self, problem, genomes):
        ptg, _, table = problem
        ev = MemoizedEvaluator(SerialEvaluator(ptg, table))
        batch = [genomes[0], genomes[1], genomes[0], genomes[0]]
        values = ev.evaluate(batch)
        assert values[0] == values[2] == values[3]
        assert ev.stats.cache_misses == 2
        assert ev.stats.cache_hits == 2
        assert ev.stats.mapper_calls == 2

    def test_lru_bound(self, problem, genomes):
        ptg, _, table = problem
        ev = MemoizedEvaluator(
            SerialEvaluator(ptg, table), max_entries=4
        )
        ev.evaluate(genomes)  # 12 genomes through a 4-entry cache
        assert len(ev) == 4
        # the 4 most recent genomes are retained, the rest evicted
        ev.evaluate(genomes[-4:])
        assert ev.stats.cache_hits == 4

    def test_rejected_entries_stay_sound(self, problem, genomes):
        """A rejection cached under bound b must not leak to laxer
        bounds: re-querying without a bound yields the exact value."""
        ptg, _, table = problem
        genome = genomes[0]
        exact = makespan_of(ptg, table, genome)
        ev = MemoizedEvaluator(SerialEvaluator(ptg, table))
        tight = exact * 0.5
        assert ev.evaluate([genome], abort_above=tight) == [
            float("inf")
        ]
        # tighter-or-equal bound: rejection marker reused
        assert ev.evaluate([genome], abort_above=tight * 0.9) == [
            float("inf")
        ]
        assert ev.stats.cache_hits == 1
        # laxer bound: must re-evaluate and find the exact value
        assert ev.evaluate([genome]) == [exact]
        # now the exact value serves every future bound
        assert ev.evaluate([genome], abort_above=tight) == [
            float("inf")
        ]
        assert ev.evaluate([genome], abort_above=exact * 2) == [exact]

    def test_invalid_capacity(self, problem):
        ptg, _, table = problem
        with pytest.raises(ConfigurationError):
            MemoizedEvaluator(
                SerialEvaluator(ptg, table), max_entries=0
            )


class TestProcessPoolEvaluator:
    def test_workers_zero_rejected(self, problem):
        ptg, _, table = problem
        with pytest.raises(ConfigurationError):
            ProcessPoolEvaluator(ptg, table, workers=0)

    def test_matches_serial_in_order(self, problem, genomes):
        ptg, _, table = problem
        expected = [makespan_of(ptg, table, g) for g in genomes]
        with ProcessPoolEvaluator(ptg, table, workers=2) as ev:
            values = ev.evaluate(genomes)
        assert values == expected

    def test_more_workers_than_cores(self, problem, genomes):
        workers = (os.cpu_count() or 1) + 2
        ptg, _, table = problem
        with ProcessPoolEvaluator(
            ptg, table, workers=workers
        ) as ev:
            values = ev.evaluate(genomes[:4])
        assert values == [
            makespan_of(ptg, table, g) for g in genomes[:4]
        ]

    def test_abort_bound_applied_per_chunk(self, problem, genomes):
        """The rejection bound must reach the workers with every
        dispatched chunk — parallelism must not disable the paper's
        rejection strategy."""
        ptg, _, table = problem
        exact = [makespan_of(ptg, table, g) for g in genomes]
        bound = sorted(exact)[len(exact) // 2]
        with ProcessPoolEvaluator(
            ptg, table, workers=2, chunk_size=3
        ) as ev:
            gated = ev.evaluate(genomes, abort_above=bound)
        serial_gated = [
            makespan_of(ptg, table, g, abort_above=bound)
            for g in genomes
        ]
        assert gated == serial_gated
        assert float("inf") in gated  # the bound actually rejected

    def test_pool_is_reusable_across_batches(self, problem, genomes):
        ptg, _, table = problem
        with ProcessPoolEvaluator(ptg, table, workers=2) as ev:
            a = ev.evaluate(genomes[:3])
            b = ev.evaluate(genomes[:3])
        assert a == b
        assert ev.stats.batches == 2


class TestCreateEvaluator:
    def test_workers_zero_and_one_are_serial(self, problem):
        ptg, _, table = problem
        for workers in (0, 1):
            ev = create_evaluator(
                ptg, table, workers=workers, cache=False
            )
            assert isinstance(ev, SerialEvaluator)

    def test_pool_backend_selected(self, problem):
        ptg, _, table = problem
        ev = create_evaluator(ptg, table, workers=2, cache=False)
        assert isinstance(ev, ProcessPoolEvaluator)
        ev.close()

    def test_cache_wraps_backend(self, problem):
        ptg, _, table = problem
        ev = create_evaluator(ptg, table, workers=0, cache=True)
        assert isinstance(ev, MemoizedEvaluator)
        assert isinstance(ev.inner, SerialEvaluator)
        assert ev.max_entries == DEFAULT_CACHE_SIZE

    def test_negative_workers_rejected(self, problem):
        ptg, _, table = problem
        with pytest.raises(ConfigurationError):
            create_evaluator(ptg, table, workers=-1)


class TestDeterminismAcrossBackends:
    """Acceptance: serial, pool(4) and cached runs are bit-identical."""

    def test_strassen_model1_identical(self, problem):
        ptg, cluster, table = problem
        serial = emts5(fitness_cache=False).schedule(
            ptg, cluster, table, rng=7
        )
        pooled = emts5(workers=4, fitness_cache=False).schedule(
            ptg, cluster, table, rng=7
        )
        cached = emts5(workers=0, fitness_cache=True).schedule(
            ptg, cluster, table, rng=7
        )
        assert serial.makespan == pooled.makespan == cached.makespan
        assert np.array_equal(serial.allocation, pooled.allocation)
        assert np.array_equal(serial.allocation, cached.allocation)

    def test_rejection_plus_pool_identical(self, problem):
        ptg, cluster, table = problem
        plain = emts5(fitness_cache=False).schedule(
            ptg, cluster, table, rng=13
        )
        fast = emts5(
            workers=2, use_rejection=True, fitness_cache=True
        ).schedule(ptg, cluster, table, rng=13)
        assert fast.makespan == plain.makespan
        assert np.array_equal(fast.allocation, plain.allocation)


class TestEMTSIntegration:
    def test_evaluation_stats_populated(self):
        ptg = generate_fft(4, rng=3)
        cluster = grelon()
        table = TimeTable.build(SyntheticModel(), ptg, cluster)
        result = emts5().schedule(ptg, cluster, table, rng=3)
        stats = result.evaluation_stats
        assert stats is not None
        # 3 seed baselines + 5 initial + 5 generations x 25 offspring
        assert stats.evaluations == 3 + 5 + 5 * 25
        assert (
            stats.mapper_calls + stats.cache_hits == stats.evaluations
        )
        assert result.log.total_cache_hits <= stats.cache_hits
        # the logical evaluation count of the log is cache-independent
        assert result.evaluations == 5 + 5 * 25

    def test_cache_saves_mapper_calls_on_duplicates(self):
        """Late-generation annealing produces duplicate offspring; the
        cache must convert those into hits."""
        ptg = generate_fft(4, rng=9)
        cluster = grelon()
        table = TimeTable.build(SyntheticModel(), ptg, cluster)
        on = emts5().schedule(ptg, cluster, table, rng=21)
        off = emts5(fitness_cache=False).schedule(
            ptg, cluster, table, rng=21
        )
        assert on.makespan == off.makespan
        assert on.evaluation_stats.cache_hits > 0
        assert (
            on.evaluation_stats.mapper_calls
            < off.evaluation_stats.mapper_calls
        )

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            EMTSConfig(workers=-2)
        with pytest.raises(ConfigurationError):
            EMTSConfig(fitness_cache_size=0)


class TestStrategyBatchPath:
    """The EA engine accepts any BatchFitness, not just our backends."""

    def test_batch_evaluator_equals_callable(self):
        target = np.array([3, 7, 2, 9, 5], dtype=np.int64)

        def fitness(genome):
            return float(np.abs(genome - target).sum())

        class BatchWrapper:
            def evaluate(self, genomes, abort_above=None):
                return [fitness(g) for g in genomes]

        init = [
            Individual(
                genome=np.full(5, i + 1, dtype=np.int64),
                origin=f"seed{i}",
            )
            for i in range(3)
        ]
        strat = EvolutionStrategy(
            mu=3,
            lam=12,
            mutation=UniformIntegerMutation(low=1, high=10, rate=0.4),
        )
        r_callable = strat.evolve(
            init,
            fitness,
            np.random.default_rng(4),
            total_generations=6,
        )
        r_batch = strat.evolve(
            init,
            BatchWrapper(),
            np.random.default_rng(4),
            total_generations=6,
        )
        assert r_batch.best_fitness == r_callable.best_fitness
        assert np.array_equal(
            r_batch.best.genome, r_callable.best.genome
        )

    def test_batch_size_mismatch_rejected(self):
        class Broken:
            def evaluate(self, genomes, abort_above=None):
                return [1.0]  # wrong length

        init = [
            Individual(genome=np.ones(3, dtype=np.int64)),
            Individual(genome=np.zeros(3, dtype=np.int64)),
        ]
        strat = EvolutionStrategy(
            mu=2,
            lam=4,
            mutation=UniformIntegerMutation(low=0, high=3, rate=0.5),
        )
        with pytest.raises(ConfigurationError, match="returned 1"):
            strat.evolve(
                init,
                Broken(),
                np.random.default_rng(0),
                total_generations=2,
            )

    def test_cache_hits_reach_generation_log(self, problem):
        ptg, cluster, table = problem
        result = emts5().schedule(ptg, cluster, table, rng=31)
        assert result.log.total_cache_hits == sum(
            e.cache_hits for e in result.log.entries
        )
        rows = result.log.to_rows()
        assert all("cache_hits" in row for row in rows)


class TestEvaluateBatch:
    """Population-at-once blocks: one call, identical results."""

    def test_serial_block_matches_list(self, problem, genomes):
        ptg, _, table = problem
        block = np.stack(genomes)
        with SerialEvaluator(ptg, table) as ev:
            assert ev.evaluate_batch(block) == ev.evaluate(genomes)
            assert ev.stats.batches == 2

    def test_block_shape_validated(self, problem, genomes):
        from repro.exceptions import AllocationError

        ptg, _, table = problem
        with SerialEvaluator(ptg, table) as ev:
            with pytest.raises(AllocationError, match="shape"):
                ev.evaluate_batch(genomes[0])  # 1-D
            assert ev.evaluate_batch(
                np.empty((0, ptg.num_tasks), dtype=np.int64)
            ) == []

    @pytest.mark.parametrize("mp_context", ["fork", "spawn"])
    def test_pool_block_ships_shared_memory_slices(
        self, problem, genomes, mp_context
    ):
        """The pool publishes the block once (shared memory) and ships
        index slices; results equal serial, with zero retries."""
        ptg, _, table = problem
        block = np.stack(genomes)
        with SerialEvaluator(ptg, table) as serial:
            expected = serial.evaluate_batch(block)
        with ProcessPoolEvaluator(
            ptg, table, workers=2, chunk_size=4, mp_context=mp_context
        ) as pool:
            values = pool.evaluate_batch(block)
            assert values == expected
            assert pool.stats.retries == 0
            bound = sorted(expected)[len(expected) // 2]
            gated = pool.evaluate_batch(block, abort_above=bound)
        with SerialEvaluator(ptg, table) as serial:
            assert gated == serial.evaluate_batch(
                block, abort_above=bound
            )

    def test_memoized_block_hashes_once_and_mirrors_stats(
        self, problem, genomes
    ):
        ptg, _, table = problem
        block = np.stack(genomes)
        memo = MemoizedEvaluator(SerialEvaluator(ptg, table))
        try:
            first = memo.evaluate_batch(block)
            again = memo.evaluate_batch(block)
            assert first == again
            assert memo.stats.cache_hits == len(genomes)
            assert memo.stats.cache_misses == len(genomes)
            # mapper calls mirrored up from the inner evaluator: the
            # second pass never reached it
            assert memo.stats.mapper_calls == len(genomes)
        finally:
            memo.close()

    def test_cache_hit_rate_gauge_in_run_metrics(self, problem):
        from repro.obs import run_metrics

        ptg, cluster, table = problem
        result = emts5().schedule(ptg, cluster, table, rng=31)
        snap = run_metrics(result).snapshot()
        stats = result.evaluation_stats
        assert snap["emts.cache_hit_rate"]["value"] == pytest.approx(
            stats.cache_hits / stats.evaluations
        )
