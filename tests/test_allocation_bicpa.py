"""Unit tests for the BiCPA bi-criteria allocator."""

import numpy as np
import pytest

from repro.allocation import BicpaAllocator, CpaAllocator
from repro.exceptions import ConfigurationError
from repro.mapping import makespan_of
from repro.platform import Cluster
from repro.timemodels import AmdahlModel, SyntheticModel, TimeTable


def table_for(ptg, P=16, model=None):
    cluster = Cluster("c", num_processors=P, speed_gflops=1.0)
    return TimeTable.build(model or AmdahlModel(), ptg, cluster)


class TestConfig:
    def test_invalid_objective(self):
        with pytest.raises(ConfigurationError):
            BicpaAllocator(objective="pareto")

    def test_invalid_step(self):
        with pytest.raises(ConfigurationError):
            BicpaAllocator(step=0)

    def test_invalid_tolerance(self):
        with pytest.raises(ConfigurationError):
            BicpaAllocator(tolerance=-0.1)

    def test_virtual_sizes_include_P(self):
        assert BicpaAllocator(step=7)._virtual_sizes(16)[-1] == 16
        assert BicpaAllocator(step=1)._virtual_sizes(4) == [1, 2, 3, 4]


class TestAllocation:
    def test_in_bounds(self, irregular_ptg):
        table = table_for(irregular_ptg, P=8)
        alloc = BicpaAllocator(step=2).allocate(irregular_ptg, table)
        assert alloc.min() >= 1
        assert alloc.max() <= 8

    def test_makespan_objective_at_least_matches_cpa(self, fft8_ptg):
        """The k = P candidate IS plain CPA, so the pure-makespan
        objective can never be worse than CPA."""
        for model in (AmdahlModel(), SyntheticModel()):
            table = table_for(fft8_ptg, P=16, model=model)
            bicpa_ms = makespan_of(
                fft8_ptg,
                table,
                BicpaAllocator(objective="makespan").allocate(
                    fft8_ptg, table
                ),
            )
            cpa_ms = makespan_of(
                fft8_ptg,
                table,
                CpaAllocator().allocate(fft8_ptg, table),
            )
            assert bicpa_ms <= cpa_ms + 1e-9, model.name

    def test_area_objective_uses_less_area(self, fft8_ptg):
        table = table_for(fft8_ptg, P=16)
        frugal = BicpaAllocator(
            objective="area", tolerance=0.25
        ).allocate(fft8_ptg, table)
        fast = BicpaAllocator(objective="makespan").allocate(
            fft8_ptg, table
        )
        assert table.work_area(frugal) <= table.work_area(fast) + 1e-9

    def test_area_objective_respects_tolerance(self, fft8_ptg):
        table = table_for(fft8_ptg, P=16)
        best_ms = makespan_of(
            fft8_ptg,
            table,
            BicpaAllocator(objective="makespan").allocate(
                fft8_ptg, table
            ),
        )
        frugal_ms = makespan_of(
            fft8_ptg,
            table,
            BicpaAllocator(
                objective="area", tolerance=0.25
            ).allocate(fft8_ptg, table),
        )
        assert frugal_ms <= best_ms * 1.25 + 1e-9

    def test_product_between_extremes(self, fft8_ptg):
        table = table_for(fft8_ptg, P=16)
        prod = BicpaAllocator(objective="product").allocate(
            fft8_ptg, table
        )
        assert prod.min() >= 1  # sanity; selection rules share candidates

    def test_step_thins_but_still_works(self, irregular_ptg):
        table = table_for(irregular_ptg, P=16)
        coarse = BicpaAllocator(step=8).allocate(irregular_ptg, table)
        fine = BicpaAllocator(step=1).allocate(irregular_ptg, table)
        ms_coarse = makespan_of(irregular_ptg, table, coarse)
        ms_fine = makespan_of(irregular_ptg, table, fine)
        # finer sweep sees a superset of candidates -> product objective
        # value can only improve; makespans just need to be sane here
        assert ms_coarse > 0 and ms_fine > 0

    def test_virtual_size_P_reproduces_cpa(self, fft8_ptg):
        """The k = P virtual cluster is exactly plain CPA."""
        from repro.allocation.bicpa import _VirtualCpa

        table = table_for(fft8_ptg, P=16)
        assert np.array_equal(
            _VirtualCpa(16).allocate(fft8_ptg, table),
            CpaAllocator().allocate(fft8_ptg, table),
        )

    def test_virtual_size_caps_allocations(self, fft8_ptg):
        """A virtual cluster of k processors never allocates more than
        k to any task, even though the real machine is larger."""
        from repro.allocation.bicpa import _VirtualCpa

        table = table_for(fft8_ptg, P=16)
        alloc = _VirtualCpa(3).allocate(fft8_ptg, table)
        assert alloc.max() <= 3

    def test_virtual_size_one_is_serial(self, fft8_ptg):
        from repro.allocation.bicpa import _VirtualCpa

        table = table_for(fft8_ptg, P=16)
        assert np.all(
            _VirtualCpa(1).allocate(fft8_ptg, table) == 1
        )

    def test_smaller_virtual_sizes_grow_less(self, fft8_ptg):
        """Smaller virtual clusters stop growing earlier (the T_A
        balance point arrives sooner), so total allocation is
        non-decreasing in k."""
        from repro.allocation.bicpa import _VirtualCpa

        table = table_for(fft8_ptg, P=16)
        totals = [
            _VirtualCpa(k).allocate(fft8_ptg, table).sum()
            for k in (2, 4, 8, 16)
        ]
        assert totals == sorted(totals)

    def test_registered_as_seed(self):
        from repro.core import make_allocator

        assert make_allocator("bicpa").name == "bicpa"

    def test_single_task(self, single_task_ptg):
        table = table_for(single_task_ptg, P=4)
        alloc = BicpaAllocator().allocate(single_task_ptg, table)
        assert 1 <= alloc[0] <= 4
