"""Idempotency-key dedupe: the server half of exactly-once submission.

Covers the full job-state matrix (queued / running / done / failed),
the 409 key-reuse conflict, the LRU bound of the index, and survival
across a daemon restart (the index is rebuilt from the spool).
"""

from __future__ import annotations

import asyncio
import json
import threading
import time

import pytest

from repro.exceptions import ServiceError
from repro.graph import ptg_to_dict
from repro.service import (
    DEFAULT_IDEMPOTENCY_ENTRIES,
    JobStore,
    SchedulingService,
    ServiceClient,
    parse_request,
)
from repro.workloads import generate_fft

LONG_GENERATIONS = 400  # keeps the single worker busy while we dedupe


def make_doc(seed=31, generations=1, key=None):
    doc = {
        "ptg": ptg_to_dict(generate_fft(4, rng=7)),
        "platform": "chti",
        "model": "amdahl",
        "algorithm": "emts5",
        "seed": seed,
        "generations": generations,
    }
    if key is not None:
        doc["idempotency_key"] = key
    return doc


def start_service(spool=None):
    service = SchedulingService(
        port=0, workers=1, spool=str(spool) if spool else None
    )
    ready = threading.Event()

    def run():
        async def main():
            await service.start()
            ready.set()
            await service._drained.wait()
            assert service._server is not None
            service._server.close()
            await service._server.wait_closed()

        asyncio.run(main())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert ready.wait(timeout=15), "service did not start"
    return service, thread


def stop_service(service, thread):
    service.request_drain()
    thread.join(timeout=60)
    assert not thread.is_alive()


class TestServerDedupe:
    def test_duplicate_while_queued_returns_original(self, tmp_path):
        service, thread = start_service(tmp_path / "spool")
        try:
            client = ServiceClient(port=service.bound_port, timeout=30)
            # worker busy with a long job; the keyed job sits queued
            client.submit(make_doc(seed=1, generations=LONG_GENERATIONS))
            first = client.submit(
                make_doc(
                    seed=2,
                    generations=LONG_GENERATIONS,
                    key="idem-queued",
                )
            )
            dup = client.submit(
                make_doc(
                    seed=2,
                    generations=LONG_GENERATIONS,
                    key="idem-queued",
                )
            )
            assert dup["job"]["id"] == first["job"]["id"]
            assert dup["deduplicated"] is True
            assert dup["job"]["state"] in ("queued", "running")
            assert len(service.store) == 2  # no twin was enqueued
        finally:
            stop_service(service, thread)

    def test_duplicate_after_done_returns_result_inline(self, tmp_path):
        service, thread = start_service(tmp_path / "spool")
        try:
            client = ServiceClient(port=service.bound_port, timeout=30)
            first = client.schedule(
                make_doc(key="idem-done"), timeout=60
            )
            dup = client.submit(make_doc(key="idem-done"))
            assert dup["job"]["id"] == first["job"]["id"]
            assert dup["deduplicated"] is True
            assert dup["job"]["state"] == "done"
            assert dup["result"] == first["result"]
            metrics = service.metrics.snapshot()
            assert (
                metrics["service.jobs.deduplicated"]["value"] == 1
            )
        finally:
            stop_service(service, thread)

    def test_same_key_different_request_is_a_409(self, tmp_path):
        service, thread = start_service(tmp_path / "spool")
        try:
            client = ServiceClient(port=service.bound_port, timeout=30)
            client.schedule(
                make_doc(seed=1, key="idem-conflict"), timeout=60
            )
            with pytest.raises(ServiceError) as err:
                client.submit(make_doc(seed=2, key="idem-conflict"))
            assert err.value.status == 409
            assert err.value.code == "idempotency-mismatch"
        finally:
            stop_service(service, thread)

    def test_dedupe_beats_the_result_cache(self, tmp_path):
        """A keyed retry gets the ORIGINAL job id, not a cache twin."""
        service, thread = start_service(tmp_path / "spool")
        try:
            client = ServiceClient(port=service.bound_port, timeout=30)
            first = client.schedule(
                make_doc(key="idem-cache"), timeout=60
            )
            # identical request WITHOUT a key: served from result cache
            # as a fresh job (pre-existing behaviour, still intact)
            cached = client.submit(make_doc())
            assert cached["job"]["id"] != first["job"]["id"]
            assert cached["job"]["served_from"] == "result-cache"
            # identical request WITH the key: the original job itself
            deduped = client.submit(make_doc(key="idem-cache"))
            assert deduped["job"]["id"] == first["job"]["id"]
        finally:
            stop_service(service, thread)

    def test_dedupe_survives_restart(self, tmp_path):
        spool = tmp_path / "spool"
        service1, thread1 = start_service(spool)
        client = ServiceClient(port=service1.bound_port, timeout=30)
        first = client.schedule(make_doc(key="idem-restart"), timeout=60)
        stop_service(service1, thread1)

        service2, thread2 = start_service(spool)
        try:
            client2 = ServiceClient(port=service2.bound_port, timeout=30)
            dup = client2.submit(make_doc(key="idem-restart"))
            assert dup["job"]["id"] == first["job"]["id"]
            assert dup["deduplicated"] is True
            assert dup["result"] == first["result"]
        finally:
            stop_service(service2, thread2)


class TestStoreIndex:
    def make_request(self, seed=1, key="idem-x"):
        return parse_request(make_doc(seed=seed, key=key))

    def test_registers_and_finds(self):
        store = JobStore()
        job = store.create(self.make_request())
        assert store.find_idempotent("idem-x") is job
        assert store.find_idempotent("idem-unknown") is None
        assert store.find_idempotent(None) is None

    def test_failed_jobs_still_dedupe(self):
        store = JobStore()
        job = store.create(self.make_request())
        job.state = "failed"
        job.error = {"code": "boom", "message": "kaput"}
        job.done_event.set()
        assert store.find_idempotent("idem-x") is job

    def test_lru_bound_evicts_oldest(self):
        store = JobStore(idempotency_entries=3)
        for i in range(4):
            store.create(self.make_request(seed=i, key=f"idem-{i}"))
        assert store.find_idempotent("idem-0") is None  # evicted
        for i in range(1, 4):
            assert store.find_idempotent(f"idem-{i}") is not None

    def test_lookup_refreshes_lru_position(self):
        store = JobStore(idempotency_entries=3)
        for i in range(3):
            store.create(self.make_request(seed=i, key=f"idem-{i}"))
        store.find_idempotent("idem-0")  # refresh the oldest
        store.create(self.make_request(seed=99, key="idem-99"))
        assert store.find_idempotent("idem-0") is not None
        assert store.find_idempotent("idem-1") is None  # now the oldest

    def test_default_bound_is_generous(self):
        assert JobStore().idempotency_entries == DEFAULT_IDEMPOTENCY_ENTRIES

    def test_keyless_jobs_are_not_indexed(self):
        store = JobStore()
        doc = make_doc()
        store.create(parse_request(doc))
        assert store.find_idempotent(None) is None
        assert len(store._idempotency) == 0

    def test_spool_record_round_trips_the_key(self, tmp_path):
        store = JobStore(tmp_path / "spool")
        job = store.create(self.make_request(key="idem-disk"))
        record = json.loads(
            (tmp_path / "spool" / "jobs" / f"{job.id}.json").read_text()
        )
        assert record["request"]["idempotency_key"] == "idem-disk"

        fresh = JobStore(tmp_path / "spool")
        fresh.recover()
        found = fresh.find_idempotent("idem-disk")
        assert found is not None and found.id == job.id


class TestProtocolValidation:
    def test_bad_key_shapes_are_rejected(self):
        for bad in ("", 123, "x" * 129, ["k"]):
            with pytest.raises(ServiceError):
                parse_request(make_doc(key=bad))

    def test_key_is_not_part_of_the_result_key(self):
        from repro.service import result_key

        a = parse_request(make_doc(key="idem-a"))
        b = parse_request(make_doc(key="idem-b"))
        assert result_key(a) == result_key(b)


def wait_for_state(client, job_id, state, timeout=30):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if client.get_job(job_id)["job"]["state"] == state:
            return
        time.sleep(0.005)
    pytest.fail(f"job {job_id} never reached {state!r}")


class TestDedupeWhileRunning:
    def test_duplicate_while_running_returns_202(self, tmp_path):
        service, thread = start_service(tmp_path / "spool")
        try:
            client = ServiceClient(port=service.bound_port, timeout=30)
            first = client.submit(
                make_doc(generations=LONG_GENERATIONS, key="idem-run")
            )
            wait_for_state(client, first["job"]["id"], "running")
            dup = client.submit(
                make_doc(generations=LONG_GENERATIONS, key="idem-run")
            )
            assert dup["job"]["id"] == first["job"]["id"]
            assert dup["deduplicated"] is True
            assert dup["job"]["state"] == "running"
        finally:
            stop_service(service, thread)
