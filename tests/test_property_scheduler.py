"""Property-based tests (hypothesis) for the list scheduler and EMTS
components: every schedule produced from any feasible allocation vector
must satisfy the platform invariants, and the fast fitness path must
agree with the full mapping."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import clamp_allocations, mutation_count
from repro.graph import PTG, Task
from repro.mapping import makespan_of, map_allocations
from repro.platform import Cluster
from repro.simulator import simulate
from repro.timemodels import AmdahlModel, SyntheticModel, TimeTable


@st.composite
def scheduling_problems(draw):
    """A random DAG + platform + allocation vector."""
    n = draw(st.integers(min_value=1, max_value=10))
    tasks = [
        Task(
            f"t{i}",
            work=draw(st.floats(min_value=1e8, max_value=1e11)),
            alpha=draw(st.floats(min_value=0.0, max_value=0.5)),
        )
        for i in range(n)
    ]
    edges = []
    for u in range(n):
        for v in range(u + 1, n):
            if draw(st.booleans()):
                edges.append((u, v))
    ptg = PTG(tasks, edges)
    P = draw(st.integers(min_value=1, max_value=12))
    cluster = Cluster("h", num_processors=P, speed_gflops=1.0)
    model = draw(st.sampled_from([AmdahlModel(), SyntheticModel()]))
    table = TimeTable.build(model, ptg, cluster)
    alloc = np.array(
        [
            draw(st.integers(min_value=1, max_value=P))
            for _ in range(n)
        ],
        dtype=np.int64,
    )
    return ptg, table, alloc


@given(scheduling_problems())
@settings(max_examples=80, deadline=None)
def test_schedule_satisfies_all_invariants(problem):
    ptg, table, alloc = problem
    schedule = map_allocations(ptg, table, alloc)
    schedule.validate(times=table.times_for(alloc))


@given(scheduling_problems())
@settings(max_examples=80, deadline=None)
def test_fast_path_agrees_with_full_mapping(problem):
    ptg, table, alloc = problem
    fast = makespan_of(ptg, table, alloc)
    full = map_allocations(ptg, table, alloc).makespan
    assert fast == pytest.approx(full)


@given(scheduling_problems())
@settings(max_examples=50, deadline=None)
def test_simulator_agrees_with_mapper(problem):
    ptg, table, alloc = problem
    schedule = map_allocations(ptg, table, alloc)
    result = simulate(schedule, table)
    assert result.makespan == pytest.approx(schedule.makespan)


@given(scheduling_problems())
@settings(max_examples=50, deadline=None)
def test_makespan_lower_bounds(problem):
    """Makespan >= critical path length and >= work-area bound, under
    every priority rule."""
    from repro.graph import critical_path_length
    from repro.mapping import PRIORITIES, makespan_lower_bound

    ptg, table, alloc = problem
    times = table.times_for(alloc)
    lb = makespan_lower_bound(ptg, table, alloc)
    for priority in PRIORITIES:
        ms = makespan_of(ptg, table, alloc, priority=priority)
        assert ms >= critical_path_length(ptg, times) - 1e-9
        area_bound = float(
            np.sum(alloc * times)
        ) / table.num_processors
        assert ms >= area_bound - 1e-9
        assert ms >= lb - 1e-9


@given(
    st.integers(min_value=1, max_value=300),
    st.integers(min_value=1, max_value=50),
    st.floats(min_value=0.01, max_value=1.0),
)
@settings(max_examples=100, deadline=None)
def test_mutation_count_always_valid(V, U, fm):
    for u in range(U + 1):
        m = mutation_count(V, u, U, fm)
        assert 1 <= m <= V


@given(
    st.lists(
        st.integers(min_value=-1000, max_value=1000),
        min_size=1,
        max_size=50,
    ),
    st.integers(min_value=1, max_value=128),
)
@settings(max_examples=100, deadline=None)
def test_clamp_always_feasible(values, P):
    out = clamp_allocations(np.array(values), P)
    assert out.min() >= 1
    assert out.max() <= P


@given(scheduling_problems())
@settings(max_examples=30, deadline=None)
def test_rejection_bound_soundness(problem):
    """An aborted mapping (inf) implies the honest makespan really
    exceeds the bound; a completed mapping is unchanged by the bound."""
    ptg, table, alloc = problem
    honest = makespan_of(ptg, table, alloc)
    bound = honest * 0.8
    result = makespan_of(ptg, table, alloc, abort_above=bound)
    if np.isinf(result):
        assert honest >= bound - 1e-9
    else:
        assert result == pytest.approx(honest)
