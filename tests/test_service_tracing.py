"""End-to-end distributed tracing through the serving stack.

The acceptance criteria of the tracing PR, executed for real: a
``serve → submit`` round trip renders one causal span tree per job with
queue/run/verify phases, bit-identical across two same-seed runs once
timestamps are stripped; a worker killed mid-run leaves shards the
assembler still joins into a crash-flagged partial tree; and the SLO
engine surfaces on ``/v1/stats``, ``/metrics`` and the ``slo`` CLI.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.graph import ptg_to_dict
from repro.obs import assemble_traces, canonical_tree
from repro.service import SchedulingService, ServiceClient
from repro.testing import ServiceDaemon
from repro.util import CRASH_EXIT_CODE
from repro.workloads import generate_fft

GOLDEN = Path(__file__).parent / "data" / "golden_service_trace.json"

#: three generations: enough for generation/verify events, cheap enough
#: to run the round trip twice per test
GENERATIONS = 3


def make_doc(seed=7, **extra):
    doc = {
        "ptg": ptg_to_dict(generate_fft(4, rng=7)),
        "platform": "chti",
        "model": "amdahl",
        "algorithm": "emts5",
        "seed": seed,
        "generations": GENERATIONS,
    }
    doc.update(extra)
    return doc


def traced_round_trip(trace_dir, docs, workers=1):
    """Serve ``docs`` through an in-process daemon writing trace shards."""
    import asyncio

    service = SchedulingService(
        port=0, workers=workers, trace_dir=str(trace_dir)
    )
    ready = threading.Event()

    def run():
        async def main():
            await service.start()
            ready.set()
            await service._drained.wait()
            assert service._server is not None
            service._server.close()
            await service._server.wait_closed()

        asyncio.run(main())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert ready.wait(timeout=15), "service did not start"
    client = ServiceClient(port=service.bound_port, timeout=60.0)
    results = [client.schedule(doc, timeout=120) for doc in docs]
    stats = client.stats()
    metrics_text = client.metrics_text()
    service.request_drain()
    thread.join(timeout=30)
    if service.tracer is not None:
        service.tracer.close()
    return results, stats, metrics_text


class TestRoundTrip:
    def test_one_causal_tree_with_every_phase(self, tmp_path):
        trace_dir = tmp_path / "traces"
        results, _, _ = traced_round_trip(trace_dir, [make_doc()])
        assert results[0]["job"]["state"] == "done"
        (tree,) = assemble_traces(trace_dir)
        assert tree.crashed is False
        kinds = [c.kind for c in tree.root.children]
        assert kinds == ["request", "queue_wait"]
        request = tree.root.children[0]
        assert request.attrs["outcome"] == "accepted"
        assert request.attrs["status"] == 202
        (queue_wait,) = [
            c for c in tree.root.children if c.kind == "queue_wait"
        ]
        (service_run,) = queue_wait.children
        assert service_run.kind == "service_run_start"
        assert service_run.end_attrs["state"] == "done"
        walked = [n.kind for n in service_run.walk()]
        assert "run_start" in walked
        assert "verify" in walked
        assert "generation" in walked

    def test_same_seed_trees_bit_identical(self, tmp_path):
        canon = []
        for sub in ("a", "b"):
            trace_dir = tmp_path / sub
            traced_round_trip(trace_dir, [make_doc()])
            (tree,) = assemble_traces(trace_dir)
            canon.append(
                json.dumps(canonical_tree(tree), sort_keys=True)
            )
        assert canon[0] == canon[1]

    def test_matches_committed_golden_tree(self, tmp_path):
        trace_dir = tmp_path / "traces"
        traced_round_trip(trace_dir, [make_doc()])
        (tree,) = assemble_traces(trace_dir)
        got = canonical_tree(tree)
        if os.environ.get("REPRO_UPDATE_GOLDEN"):
            GOLDEN.parent.mkdir(parents=True, exist_ok=True)
            GOLDEN.write_text(
                json.dumps(got, indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
        expected = json.loads(GOLDEN.read_text(encoding="utf-8"))
        assert got == expected, (
            "assembled trace diverged from the committed golden tree; "
            "if the trace schema changed intentionally, regenerate "
            "with REPRO_UPDATE_GOLDEN=1 and commit the diff"
        )

    def test_cached_result_traces_without_a_run(self, tmp_path):
        trace_dir = tmp_path / "traces"
        doc = make_doc(seed=11)
        traced_round_trip(trace_dir, [doc, doc])
        (tree,) = assemble_traces(trace_dir)
        requests = [
            c for c in tree.root.children if c.kind == "request"
        ]
        # the repeat hit the result cache at submit time: a second
        # request event, but still exactly one execution attempt
        assert [r.attrs["outcome"] for r in requests] == [
            "accepted",
            "result-cache",
        ]
        attempts = [
            c for c in tree.root.children if c.kind == "queue_wait"
        ]
        assert len(attempts) == 1

    def test_distinct_seeds_distinct_trees(self, tmp_path):
        trace_dir = tmp_path / "traces"
        traced_round_trip(
            trace_dir, [make_doc(seed=7), make_doc(seed=8)]
        )
        trees = assemble_traces(trace_dir)
        assert len(trees) == 2
        assert trees[0].trace_id != trees[1].trace_id

    def test_disabled_tracing_writes_nothing(self, tmp_path):
        import asyncio

        service = SchedulingService(port=0, workers=1)
        assert service.tracer is None
        assert service.pool.trace_dir is None
        ready = threading.Event()

        def run():
            async def main():
                await service.start()
                ready.set()
                await service._drained.wait()
                service._server.close()
                await service._server.wait_closed()

            asyncio.run(main())

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        assert ready.wait(timeout=15)
        client = ServiceClient(port=service.bound_port, timeout=60.0)
        doc = client.schedule(make_doc(seed=13), timeout=120)
        assert doc["job"]["state"] == "done"
        service.request_drain()
        thread.join(timeout=30)
        assert list(tmp_path.rglob("*.jsonl")) == []


class TestSLOSurfaces:
    def test_stats_and_metrics_expose_slo_state(self, tmp_path):
        _, stats, metrics_text = traced_round_trip(
            tmp_path / "traces", [make_doc(seed=17)]
        )
        rows = {row["name"]: row for row in stats["slo"]}
        assert set(rows) == {
            "availability",
            "submit-latency",
            "online-reaction",
            "recovery",
        }
        assert rows["availability"]["ok"] is True
        assert rows["availability"]["alerting"] is False
        assert rows["availability"]["events"] >= 1
        assert "repro_slo_availability_compliance" in metrics_text
        assert "repro_slo_submit_latency_burn_60s" in metrics_text


class TestCLI:
    def test_report_trace_service_renders_waterfall(
        self, tmp_path, capsys
    ):
        trace_dir = tmp_path / "traces"
        traced_round_trip(trace_dir, [make_doc(seed=19)])
        rc = cli_main(["report-trace", str(trace_dir), "--service"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "queue wait" in out
        assert "run attempt" in out
        assert "emts run" in out
        assert "verify" in out

    def test_report_trace_service_broken_nesting_exits_nonzero(
        self, tmp_path
    ):
        from repro.obs import TraceContext, Tracer, derive_trace_id

        tid = derive_trace_id("broken")
        for name, anchor in (("a.jsonl", "a"), ("b.jsonl", "b")):
            ctx = TraceContext(
                trace_id=tid,
                span_id=anchor * 16,
            )
            with Tracer(tmp_path / name, context=ctx.child("c")) as t:
                t.event("queue_wait", attrs={}, dur=0.0)
        with pytest.raises(SystemExit):
            cli_main(["report-trace", str(tmp_path), "--service"])

    def test_slo_bench_mode_green(self, capsys):
        bench = sorted(
            (Path(__file__).parent.parent / "benchmarks").glob(
                "BENCH_*.json"
            )
        )
        rc = cli_main(["slo", "--bench"] + [str(p) for p in bench])
        out = capsys.readouterr().out
        assert rc == 0
        assert "service-p99" in out
        assert "recovery-jobs-lost" in out

    def test_slo_bench_mode_flags_violations(self, tmp_path, capsys):
        bad = tmp_path / "BENCH_service.json"
        bad.write_text(
            json.dumps(
                {
                    "p99_ms": 9999.0,
                    "budgets": {"p99_ms": 5000.0},
                }
            )
        )
        rc = cli_main(["slo", "--bench", str(bad)])
        assert rc == 1
        assert "VIOLATED" in capsys.readouterr().out


class TestCrossProcessCrash:
    def test_worker_killed_mid_run_leaves_assemblable_shards(
        self, tmp_path
    ):
        """Satellite (d): kill the worker mid-span, assemble anyway."""
        spool = tmp_path / "spool"
        trace_dir = tmp_path / "traces"
        doc = make_doc(
            generations=150, idempotency_key="idem-trace-crash"
        )

        daemon = ServiceDaemon(
            spool=spool,
            crash_point="mid-checkpoint:2",
            extra_args=("--trace-dir", str(trace_dir)),
        )
        daemon.start()
        client = ServiceClient(port=daemon.port, timeout=10)
        client.submit(doc)
        assert daemon.wait(timeout=120) == CRASH_EXIT_CODE

        (tree,) = assemble_traces(trace_dir)
        assert tree.crashed is True
        # the acked request and its attempt both made it to disk
        kinds = [c.kind for c in tree.root.children]
        assert kinds == ["request", "queue_wait"]
        (queue_wait,) = [
            c for c in tree.root.children if c.kind == "queue_wait"
        ]
        (service_run,) = queue_wait.children
        assert service_run.complete is False
        open_kinds = {
            n.kind for n in tree.root.walk() if not n.complete
        }
        assert "run_start" in open_kinds
        # rendering a crashed tree must not raise (postmortem path)
        rc = cli_main(["report-trace", str(trace_dir), "--service"])
        assert rc == 0

        # restart on the same spool: the recovered attempt writes a
        # NEW shard; the crashed one stays as evidence
        with ServiceDaemon(
            spool=spool, extra_args=("--trace-dir", str(trace_dir))
        ) as revived:
            from repro.service import RetryingServiceClient, RetryPolicy

            final = RetryingServiceClient(
                port=revived.port,
                policy=RetryPolicy(base=0.02, cap=0.2, seed=3),
            ).schedule(doc, timeout=300)
        assert final["job"]["state"] == "done"
        (tree,) = assemble_traces(trace_dir)
        assert tree.crashed is True  # attempt 1 still bears the wound
        attempts = [
            c for c in tree.root.children if c.kind == "queue_wait"
        ]
        assert len(attempts) == 2
        states = [
            sr.end_attrs.get("state")
            for a in attempts
            for sr in a.children
            if sr.kind == "service_run_start"
        ]
        assert "done" in states
