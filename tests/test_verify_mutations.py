"""Mutation suite: every violation class the verifier claims to catch,
injected deliberately, must be caught with the right ``kind`` tag.

A verifier that misses even one mutation class is worse than none — it
certifies corrupted schedules.  Each test below takes a *valid* schedule,
applies exactly one corruption, and asserts the verifier (a) rejects it
and (b) names the violated invariant.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import VerificationError
from repro.mapping import Schedule, map_allocations
from repro.verify import VIOLATION_KINDS, ScheduleVerifier


@pytest.fixture
def problem(fft8_ptg, synthetic_table):
    gen = np.random.default_rng(4242)
    alloc = gen.integers(
        1, synthetic_table.num_processors + 1, size=fft8_ptg.num_tasks
    )
    schedule = map_allocations(fft8_ptg, synthetic_table, alloc)
    return fft8_ptg, synthetic_table, schedule


def mutate(schedule: Schedule, **overrides) -> Schedule:
    """A copy of ``schedule`` with some arrays replaced."""
    return Schedule(
        schedule.ptg,
        schedule.cluster,
        overrides.get("start", schedule.start.copy()),
        overrides.get("finish", schedule.finish.copy()),
        overrides.get(
            "proc_sets", [ps.copy() for ps in schedule.proc_sets]
        ),
    )


def expect(verifier, schedule, kind: str) -> VerificationError:
    with pytest.raises(VerificationError) as err:
        verifier.verify(schedule)
    assert err.value.kind == kind, (
        f"expected kind {kind!r}, got {err.value.kind!r}: {err.value}"
    )
    return err.value


class TestMutations:
    def test_non_finite_start(self, problem):
        ptg, table, schedule = problem
        start = schedule.start.copy()
        start[3] = float("nan")
        exc = expect(
            ScheduleVerifier(ptg, table),
            mutate(schedule, start=start),
            "non-finite",
        )
        assert exc.task == 3

    def test_infinite_finish(self, problem):
        ptg, table, schedule = problem
        finish = schedule.finish.copy()
        finish[0] = float("inf")
        expect(
            ScheduleVerifier(ptg, table),
            mutate(schedule, finish=finish),
            "non-finite",
        )

    def test_negative_start(self, problem):
        ptg, table, schedule = problem
        start = schedule.start.copy()
        finish = schedule.finish.copy()
        # shift task 0 fully left so duration stays consistent
        width = finish[0] - start[0]
        start[0] = -1.0
        finish[0] = -1.0 + width
        expect(
            ScheduleVerifier(ptg, table),
            mutate(schedule, start=start, finish=finish),
            "negative-start",
        )

    def test_negative_duration(self, problem):
        ptg, table, schedule = problem
        finish = schedule.finish.copy()
        finish[2] = schedule.start[2] - 0.5
        expect(
            ScheduleVerifier(ptg, table),
            mutate(schedule, finish=finish),
            "negative-duration",
        )

    def test_empty_allocation(self, problem):
        ptg, table, schedule = problem
        proc_sets = [ps.copy() for ps in schedule.proc_sets]
        proc_sets[1] = np.array([], dtype=np.int64)
        exc = expect(
            ScheduleVerifier(ptg, table),
            mutate(schedule, proc_sets=proc_sets),
            "allocation-empty",
        )
        assert exc.task == 1

    def test_duplicate_processor(self, problem):
        ptg, table, schedule = problem
        proc_sets = [ps.copy() for ps in schedule.proc_sets]
        ps = proc_sets[1]
        proc_sets[1] = np.concatenate([ps, ps[:1]])
        expect(
            ScheduleVerifier(ptg, table),
            mutate(schedule, proc_sets=proc_sets),
            "allocation-duplicate",
        )

    def test_out_of_range_processor(self, problem):
        ptg, table, schedule = problem
        proc_sets = [ps.copy() for ps in schedule.proc_sets]
        proc_sets[0] = proc_sets[0].copy()
        proc_sets[0][0] = table.num_processors  # valid are 0..P-1
        exc = expect(
            ScheduleVerifier(ptg, table),
            mutate(schedule, proc_sets=proc_sets),
            "allocation-range",
        )
        assert exc.processor == table.num_processors

    def test_negative_processor(self, problem):
        ptg, table, schedule = problem
        proc_sets = [ps.copy() for ps in schedule.proc_sets]
        proc_sets[0][0] = -1
        expect(
            ScheduleVerifier(ptg, table),
            mutate(schedule, proc_sets=proc_sets),
            "allocation-range",
        )

    def test_wrong_duration(self, problem):
        ptg, table, schedule = problem
        # pretend the last task ran 1% faster than the model allows;
        # pick the sink so no successor's precedence breaks first
        sink = int(np.argmax(schedule.finish))
        finish = schedule.finish.copy()
        finish[sink] = (
            schedule.start[sink]
            + (finish[sink] - schedule.start[sink]) * 0.99
        )
        exc = expect(
            ScheduleVerifier(ptg, table),
            mutate(schedule, finish=finish),
            "wrong-duration",
        )
        assert exc.task == sink

    def test_wrong_duration_needs_table(self, problem):
        ptg, table, schedule = problem
        sink = int(np.argmax(schedule.finish))
        finish = schedule.finish.copy()
        finish[sink] = (
            schedule.start[sink]
            + (finish[sink] - schedule.start[sink]) * 0.99
        )
        bad = mutate(schedule, finish=finish)
        # without a table the duration invariant is unverifiable, so the
        # structural-only verifier must accept this mutation
        report = ScheduleVerifier(ptg, cluster=table.cluster).verify(bad)
        assert not report.durations_checked

    def test_precedence_violation(self, problem):
        ptg, table, schedule = problem
        u, v = ptg.edges[0]
        start = schedule.start.copy()
        finish = schedule.finish.copy()
        width = finish[v] - start[v]
        start[v] = max(0.0, finish[u] - 0.5 * width)
        finish[v] = start[v] + width
        expect(
            ScheduleVerifier(ptg, cluster=table.cluster),
            mutate(schedule, start=start, finish=finish),
            "precedence",
        )

    def test_processor_overlap(self, problem):
        ptg, table, schedule = problem
        # move a root task onto the same processor and interval as
        # another task scheduled there
        proc_sets = [ps.copy() for ps in schedule.proc_sets]
        # find two tasks with disjoint processors and overlapping times
        by_start = np.argsort(schedule.start)
        a = int(by_start[-1])  # latest-starting task
        # give it also processor 0's busiest owner at that moment
        victim = None
        for v in range(ptg.num_tasks):
            if v == a:
                continue
            if (
                schedule.start[v] < schedule.finish[a]
                and schedule.finish[v] > schedule.start[a]
            ):
                victim = v
                break
        assert victim is not None
        stolen = proc_sets[victim][0]
        if stolen in proc_sets[a]:
            pass  # already shares it: mutation is the identity; pick set
        proc_sets[a] = np.unique(
            np.concatenate([proc_sets[a], [stolen]])
        )
        exc = expect(
            ScheduleVerifier(ptg, cluster=table.cluster),
            mutate(schedule, proc_sets=proc_sets),
            "overlap",
        )
        assert exc.processor is not None

    def test_duration_short(self, problem):
        """verify_execution rejects a task running faster than T(v, s)."""
        ptg, table, schedule = problem
        last = int(np.argmax(schedule.finish))
        finish = schedule.finish.copy()
        finish[last] = schedule.start[last] + 0.5 * (
            finish[last] - schedule.start[last]
        )
        verifier = ScheduleVerifier(ptg, table)
        with pytest.raises(VerificationError) as err:
            verifier.verify_execution(mutate(schedule, finish=finish))
        assert err.value.kind == "duration-short"
        assert err.value.task == last

    def test_inflated_duration_passes_execution_mode(self, problem):
        """A straggler-inflated task is legal as-executed, not as-planned."""
        ptg, table, schedule = problem
        # the globally last-finishing task can be inflated without
        # creating an overlap or precedence violation
        last = int(np.argmax(schedule.finish))
        finish = schedule.finish.copy()
        finish[last] = schedule.start[last] + 2.0 * (
            finish[last] - schedule.start[last]
        )
        inflated = mutate(schedule, finish=finish)
        verifier = ScheduleVerifier(ptg, table)
        report = verifier.verify_execution(inflated)
        assert report.durations_checked
        expect(verifier, inflated, "wrong-duration")

    def test_every_kind_is_exercised(self):
        """The suite above must cover every verifier-emitted kind."""
        covered = {
            "non-finite",
            "negative-start",
            "negative-duration",
            "allocation-empty",
            "allocation-duplicate",
            "allocation-range",
            "wrong-duration",
            "duration-short",
            "precedence",
            "overlap",
        }
        # graph/platform/makespan mismatches are argument errors, not
        # array mutations; they are covered in test_verify.py
        remaining = (
            set(VIOLATION_KINDS)
            - covered
            - {"graph-mismatch", "platform-mismatch", "makespan-mismatch"}
        )
        assert not remaining, f"kinds without a mutation test: {remaining}"
