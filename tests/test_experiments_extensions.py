"""Tests for the extension experiments: scalability sweep and
convergence study."""

import numpy as np
import pytest

from repro.core import emts5, emts10
from repro.experiments import (
    run_convergence_study,
    run_scalability_sweep,
)
from repro.platform import Cluster
from repro.timemodels import SyntheticModel
from repro.workloads import DaggenParams, generate_daggen


@pytest.fixture(scope="module")
def workload():
    return [
        generate_daggen(
            DaggenParams(
                num_tasks=30,
                width=0.5,
                regularity=0.2,
                density=0.2,
                jump=2,
            ),
            rng=s,
        )
        for s in range(3)
    ]


class TestScalability:
    @pytest.fixture(scope="class")
    def sweep(self, workload):
        return run_scalability_sweep(
            workload, sizes=(8, 32, 96), seed=1
        )

    def test_structure(self, sweep):
        assert sweep.sizes == (8, 32, 96)
        assert set(sweep.cells) == {8, 32, 96}
        for ci in sweep.cells.values():
            assert ci.n == 3
            assert ci.mean >= 1.0 - 1e-9  # EMTS never loses to MCPA

    def test_paper_trend(self, sweep):
        """Larger platforms -> larger (or equal) gains."""
        assert sweep.trend_is_nondecreasing(slack=0.1)

    def test_render(self, sweep):
        out = sweep.render()
        assert "T_mcpa/T_emts5" in out
        assert "96" in out


class TestConvergence:
    @pytest.fixture(scope="class")
    def study(self, workload):
        cluster = Cluster("c", num_processors=48, speed_gflops=3.1)
        return run_convergence_study(
            workload,
            cluster,
            SyntheticModel(),
            [emts5(), emts10(generations=6)],
            seed=2,
        )

    def test_structure(self, study):
        assert set(study.trajectories) == {"emts5", "emts10"}
        assert len(study.seed_best) == 3
        assert all(
            len(t) == 6 for t in study.trajectories["emts5"]
        )  # init + 5 generations

    def test_trajectories_monotone(self, study):
        for runs in study.trajectories.values():
            for traj in runs:
                assert np.all(np.diff(traj) <= 1e-9)

    def test_relative_curves_start_at_one_or_below(self, study):
        """Generation 0's best equals the best seed (or a lucky filler
        mutation beats it), so the curve starts at <= 1 + eps."""
        curve = study.mean_relative_trajectory("emts5")
        assert curve[0] <= 1.0 + 1e-9
        assert np.all(np.diff(curve) <= 1e-9)  # mean of monotones

    def test_final_improvement(self, study):
        assert study.final_improvement("emts5") >= 1.0

    def test_more_budget_no_worse(self, study):
        c5 = study.mean_relative_trajectory("emts5")
        c10 = study.mean_relative_trajectory("emts10")
        assert c10[-1] <= c5[-1] + 0.02

    def test_render(self, study):
        out = study.render()
        assert "best/seed (emts5)" in out
