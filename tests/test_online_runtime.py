"""End-to-end contracts of the online reactive runtime.

The load-bearing properties:

* **zero-fault identity** — with an empty fault plan,
  :func:`execute_online` reproduces the static simulator's makespan and
  event trace bit for bit, across the whole (scaled) paper corpus;
* **graceful recovery** — crashes, transient failures and stragglers
  end in a typed outcome with a verified as-executed schedule;
* **determinism** — same seed, same plan, same events, on every run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import make_allocator
from repro.exceptions import ConfigurationError
from repro.mapping import map_allocations
from repro.obs import MetricsRegistry, Tracer, canonical_events
from repro.online import (
    FaultPlan,
    ONLINE_OUTCOMES,
    ProcessorCrash,
    ReactionPolicy,
    Straggler,
    TaskFailure,
    execute_online,
)
from repro.platform import chti, grelon
from repro.simulator import simulate
from repro.timemodels import AmdahlModel, SyntheticModel, TimeTable
from repro.workloads import generate_fft, paper_corpus

PTG = generate_fft(8, rng=777)
CLUSTER = grelon()


@pytest.fixture(scope="module")
def table() -> TimeTable:
    return TimeTable.build(SyntheticModel(), PTG, CLUSTER)


@pytest.fixture(scope="module")
def planned(table):
    alloc = make_allocator("mcpa").allocate(PTG, table)
    return map_allocations(PTG, table, alloc)


def _event_kinds(result):
    return [e.kind for e in result.events]


# ----------------------------------------------------------------------
# zero-fault identity


def test_zero_fault_matches_simulator_exactly(planned, table):
    baseline = simulate(planned)
    result = execute_online(planned, table)
    assert result.outcome == "completed"
    assert result.makespan == baseline.makespan  # bitwise
    assert result.trace.events == baseline.trace.events
    assert result.verified
    assert result.reschedules == 0
    assert result.faults_injected == 0
    assert result.budget_used == 0
    assert result.events == []


def test_zero_fault_identity_across_paper_corpus():
    """The acceptance sweep: every corpus class, bit-identical."""
    corpus = paper_corpus(seed=11, scale=0.02)
    cluster = chti()
    model = AmdahlModel()
    checked = 0
    for cls in corpus.classes:
        for ptg in corpus.by_class(cls)[:3]:
            table = TimeTable.build(model, ptg, cluster)
            alloc = make_allocator("hcpa").allocate(ptg, table)
            schedule = map_allocations(ptg, table, alloc)
            baseline = simulate(schedule)
            result = execute_online(schedule, table)
            assert result.makespan == baseline.makespan, ptg.name
            assert result.trace.events == baseline.trace.events
            assert result.verified
            checked += 1
    assert checked >= 4  # every class contributed


# ----------------------------------------------------------------------
# fault recovery


def test_transient_failure_retries_and_completes(planned, table):
    plan = FaultPlan(failures=(TaskFailure(0),))
    result = execute_online(planned, table, plan=plan, rng=1)
    assert result.outcome == "completed"
    assert result.verified
    assert result.retries == 1
    assert result.faults_injected >= 1
    assert result.reschedules >= 1
    kinds = _event_kinds(result)
    assert "task-failed" in kinds
    assert "reschedule-applied" in kinds
    assert "task-abandoned" not in kinds


def test_processor_crash_replans_around_the_loss(planned, table):
    plan = FaultPlan(
        crashes=(ProcessorCrash(0, planned.makespan * 0.25),)
    )
    result = execute_online(planned, table, plan=plan, rng=1)
    assert result.outcome == "completed"
    assert result.verified
    kinds = _event_kinds(result)
    assert "processor-crashed" in kinds
    assert "reschedule-applied" in kinds
    # the dead processor hosts nothing after the crash
    crash_time = plan.crashes[0].time
    for entry, procs in zip(
        result.schedule.start, result.schedule.proc_sets
    ):
        if entry > crash_time and 0 in np.asarray(procs).tolist():
            pytest.fail("task placed on a crashed processor")


def test_straggler_is_detected_and_replanned(planned, table):
    plan = FaultPlan(stragglers=(Straggler(0, factor=3.0),))
    result = execute_online(planned, table, plan=plan, rng=1)
    assert result.outcome == "completed"
    assert result.verified
    kinds = _event_kinds(result)
    assert "straggler-detected" in kinds
    assert "reschedule-applied" in kinds
    # verify_execution tolerates the inflated duration (one-sided bound)
    assert result.faults_injected == 1


def test_sub_threshold_straggler_is_ignored(planned, table):
    """Inflation below the detection threshold triggers nothing."""
    policy = ReactionPolicy(straggler_threshold=1.5)
    plan = FaultPlan(stragglers=(Straggler(0, factor=1.2),))
    result = execute_online(
        planned, table, plan=plan, policy=policy, rng=1
    )
    assert result.outcome == "completed"
    assert "straggler-detected" not in _event_kinds(result)
    assert result.reschedules == 0


def test_retry_exhaustion_aborts_with_reason(planned, table):
    plan = FaultPlan(
        failures=(TaskFailure(0, attempts=5),), max_retries=1
    )
    result = execute_online(planned, table, plan=plan, rng=1)
    assert result.outcome == "aborted"
    assert result.schedule is None
    assert result.trace is None
    assert not result.verified
    assert "retry budget" in result.reason
    kinds = _event_kinds(result)
    assert "task-abandoned" in kinds
    assert result.retries == 1  # one retry granted, then abandoned


def test_crash_of_every_processor_aborts():
    """Losing the whole cluster is an abort, not a hang."""
    ptg = generate_fft(4, rng=7)
    cluster = chti()
    table = TimeTable.build(AmdahlModel(), ptg, cluster)
    alloc = make_allocator("mcpa").allocate(ptg, table)
    schedule = map_allocations(ptg, table, alloc)
    # crash all but one up front, the survivor mid-run; the plan stays
    # valid (never *plans* to kill them all at once) but the runtime
    # ends with zero capacity
    plan = FaultPlan(
        crashes=tuple(
            ProcessorCrash(p, 1e-6)
            for p in range(cluster.num_processors - 1)
        )
        + (
            ProcessorCrash(
                cluster.num_processors - 1, schedule.makespan * 0.5
            ),
        ),
        max_retries=50,
    )
    with pytest.raises(ConfigurationError):
        plan.validate(ptg.num_tasks, cluster.num_processors)
    # relax: spare one processor from the *plan* but crash it later
    result = execute_online(
        schedule,
        table,
        plan=FaultPlan(
            crashes=tuple(
                ProcessorCrash(p, 1e-6)
                for p in range(cluster.num_processors - 1)
            ),
            max_retries=50,
        ),
        rng=1,
    )
    # one processor left: the run still completes, serially
    assert result.outcome == "completed"
    assert result.verified


def test_outcomes_are_typed(planned, table):
    assert ONLINE_OUTCOMES == (
        "completed",
        "deadline-missed",
        "aborted",
    )
    result = execute_online(planned, table)
    assert result.outcome in ONLINE_OUTCOMES


# ----------------------------------------------------------------------
# deadlines


def test_generous_deadline_completes(planned, table):
    result = execute_online(
        planned, table, deadline=planned.makespan * 10
    )
    assert result.outcome == "completed"
    assert result.deadline == planned.makespan * 10
    assert "deadline-breached" not in _event_kinds(result)


def test_impossible_deadline_is_missed_with_one_emergency_replan(
    planned, table
):
    result = execute_online(
        planned, table, deadline=planned.makespan * 0.5, rng=1
    )
    assert result.outcome == "deadline-missed"
    assert result.verified  # the run still finishes and verifies
    assert result.makespan > result.deadline
    kinds = _event_kinds(result)
    assert kinds.count("deadline-breached") == 1  # latched
    assert "deadline" in result.reason


def test_mid_run_breach_from_stragglers(planned, table):
    """A feasible deadline becomes infeasible once tasks straggle."""
    stragglers = tuple(
        Straggler(v, factor=4.0) for v in range(0, PTG.num_tasks, 2)
    )
    result = execute_online(
        planned,
        table,
        plan=FaultPlan(stragglers=stragglers),
        deadline=planned.makespan * 1.01,
        rng=1,
    )
    assert result.outcome in ("completed", "deadline-missed")
    if result.outcome == "deadline-missed":
        assert _event_kinds(result).count("deadline-breached") == 1


# ----------------------------------------------------------------------
# budget and the degradation ladder


def test_zero_budget_still_reacts_greedily(planned, table):
    policy = ReactionPolicy(budget_evaluations=0)
    plan = FaultPlan(failures=(TaskFailure(0),))
    result = execute_online(
        planned, table, plan=plan, policy=policy, rng=1
    )
    assert result.outcome == "completed"
    assert result.verified
    assert set(result.rungs) == {"greedy"}


def test_budget_exhaustion_degrades_down_the_ladder(planned, table):
    """With budget for one repair, the second reaction is greedy."""
    policy = ReactionPolicy(budget_evaluations=3)
    plan = FaultPlan(failures=(TaskFailure(0), TaskFailure(1)))
    result = execute_online(
        planned, table, plan=plan, policy=policy, rng=1
    )
    assert result.outcome == "completed"
    assert result.reschedules >= 2
    assert "repair" in result.rungs
    assert "greedy" in result.rungs
    assert "emts" not in result.rungs
    assert result.budget_used <= 3 + 1  # greedy floor costs 1 each


def test_budget_accounting_matches_events(planned, table):
    plan = FaultPlan(failures=(TaskFailure(0), TaskFailure(5)))
    result = execute_online(planned, table, plan=plan, rng=1)
    applied = [
        e for e in result.events if e.kind == "reschedule-applied"
    ]
    assert len(applied) == result.reschedules
    assert sum(e.evaluations for e in applied) == result.budget_used
    assert sum(result.rungs.values()) == result.reschedules


# ----------------------------------------------------------------------
# determinism


def test_same_seed_runs_are_bit_identical(planned, table):
    plan = FaultPlan.sampled(
        3,
        PTG.num_tasks,
        CLUSTER.num_processors,
        horizon=planned.makespan,
        crash_rate=0.05,
        failure_rate=0.2,
        straggler_rate=0.2,
    )
    a = execute_online(planned, table, plan=plan, rng=5)
    b = execute_online(planned, table, plan=plan, rng=5)
    assert a.outcome == b.outcome
    assert a.makespan == b.makespan  # bitwise
    assert a.events == b.events
    assert a.rungs == b.rungs
    assert a.budget_used == b.budget_used
    assert a.trace.events == b.trace.events


def test_same_seed_traces_are_canonical_identical(
    planned, table, tmp_path
):
    plan = FaultPlan(
        failures=(TaskFailure(0),),
        stragglers=(Straggler(3, factor=2.5),),
    )
    paths = []
    for name in ("a.jsonl", "b.jsonl"):
        path = tmp_path / name
        tracer = Tracer(path)
        try:
            execute_online(
                planned, table, plan=plan, rng=5, tracer=tracer
            )
        finally:
            tracer.close()
        paths.append(path)
    assert canonical_events(paths[0]) == canonical_events(paths[1])


# ----------------------------------------------------------------------
# observability and validation


def test_metrics_and_trace_emission(planned, table, tmp_path):
    registry = MetricsRegistry()
    tracer = Tracer(tmp_path / "online.jsonl")
    plan = FaultPlan(
        failures=(TaskFailure(0),),
        stragglers=(Straggler(3, factor=2.5),),
    )
    try:
        result = execute_online(
            planned,
            table,
            plan=plan,
            rng=2,
            tracer=tracer,
            metrics=registry,
        )
    finally:
        tracer.close()
    assert result.outcome == "completed"
    assert registry.counter("online.faults.failure").value == 1
    assert registry.counter("online.faults.straggler").value == 1
    assert (
        registry.counter("online.reschedules").value
        == result.reschedules
    )
    assert registry.gauge("online.makespan").value == result.makespan
    kinds = [
        e["kind"] for e in canonical_events(tmp_path / "online.jsonl")
    ]
    assert kinds[0] == "online_start"
    assert kinds[-1] == "online_end"
    assert "fault" in kinds
    assert "reschedule" in kinds


def test_invalid_plan_is_rejected_up_front(planned, table):
    plan = FaultPlan(
        crashes=(ProcessorCrash(CLUSTER.num_processors, 1.0),)
    )
    with pytest.raises(ConfigurationError):
        execute_online(planned, table, plan=plan)


def test_summary_is_flat_primitives(planned, table):
    result = execute_online(
        planned,
        table,
        plan=FaultPlan(failures=(TaskFailure(0),)),
        rng=1,
    )
    summary = result.summary()
    assert summary["outcome"] == result.outcome
    assert summary["reschedules"] == result.reschedules
    assert isinstance(summary["rungs"], dict)
