"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.graph import load_ptg


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_args(self):
        args = build_parser().parse_args(
            ["generate", "--kind", "fft", "--size", "8", "out.json"]
        )
        assert args.kind == "fft"
        assert args.size == 8


class TestGenerate:
    def test_fft_json(self, tmp_path, capsys):
        out = tmp_path / "g.json"
        rc = main(
            [
                "generate",
                "--kind",
                "fft",
                "--size",
                "4",
                "--seed",
                "1",
                str(out),
            ]
        )
        assert rc == 0
        g = load_ptg(out)
        assert g.num_tasks == 15
        assert "15 tasks" in capsys.readouterr().out

    def test_daggen_dot(self, tmp_path):
        out = tmp_path / "g.dot"
        rc = main(
            [
                "generate",
                "--kind",
                "daggen",
                "--size",
                "20",
                "--seed",
                "2",
                str(out),
            ]
        )
        assert rc == 0
        assert out.read_text().startswith("digraph")

    def test_strassen(self, tmp_path):
        out = tmp_path / "s.json"
        main(
            ["generate", "--kind", "strassen", "--seed", "3", str(out)]
        )
        assert load_ptg(out).num_tasks == 23


class TestSchedule:
    def test_heuristic_on_generated(self, capsys):
        rc = main(
            [
                "schedule",
                "--kind",
                "fft",
                "--size",
                "4",
                "--seed",
                "1",
                "--platform",
                "chti",
                "--algorithm",
                "mcpa",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "mcpa" in out
        assert "makespan" in out

    def test_emts_on_file(self, tmp_path, capsys):
        ptg_file = tmp_path / "g.json"
        main(
            [
                "generate",
                "--kind",
                "fft",
                "--size",
                "4",
                "--seed",
                "1",
                str(ptg_file),
            ]
        )
        capsys.readouterr()
        rc = main(
            [
                "schedule",
                "--ptg",
                str(ptg_file),
                "--algorithm",
                "emts5",
                "--seed",
                "4",
                "--model",
                "model2",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "seed mcpa" in out
        assert "opt. time" in out
        assert "evaluator" in out  # evaluation-engine statistics line

    def test_evaluator_flags(self, capsys):
        """--workers / --no-fitness-cache configure the fitness engine
        without changing the computed schedule."""

        def run(extra):
            rc = main(
                [
                    "schedule",
                    "--kind",
                    "strassen",
                    "--seed",
                    "6",
                    "--algorithm",
                    "emts5",
                ]
                + extra
            )
            assert rc == 0
            out = capsys.readouterr().out
            makespan = next(
                line for line in out.splitlines() if "makespan" in line
            )
            return makespan, out

        base_ms, base_out = run([])
        assert "cache hits" in base_out
        nocache_ms, nocache_out = run(["--no-fitness-cache"])
        assert "0 cache hits" in nocache_out
        pool_ms, _ = run(["--workers", "2"])
        assert base_ms == nocache_ms == pool_ms

    def test_evaluator_flag_defaults(self):
        args = build_parser().parse_args(
            ["schedule", "--kind", "strassen"]
        )
        assert args.workers == 0
        assert args.no_fitness_cache is False

    def test_gantt_flag(self, capsys):
        main(
            [
                "schedule",
                "--kind",
                "strassen",
                "--seed",
                "2",
                "--platform",
                "chti",
                "--algorithm",
                "serial",
                "--gantt",
            ]
        )
        assert "P  0 |" in capsys.readouterr().out

    def test_svg_output(self, tmp_path, capsys):
        svg = tmp_path / "g.svg"
        main(
            [
                "schedule",
                "--kind",
                "strassen",
                "--seed",
                "2",
                "--algorithm",
                "mcpa",
                "--svg",
                str(svg),
            ]
        )
        assert svg.read_text().startswith("<svg")

    def test_profile_flag(self, tmp_path, capsys):
        """--profile dumps loadable cProfile stats and prints the
        hot-path table without altering the scheduling output."""
        import pstats

        stats_file = tmp_path / "schedule.prof"
        rc = main(
            [
                "schedule",
                "--kind",
                "strassen",
                "--seed",
                "2",
                "--platform",
                "chti",
                "--algorithm",
                "mcpa",
                "--profile",
                str(stats_file),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "makespan" in out
        assert "cumulative time" in out
        assert f"wrote profile stats -> {stats_file}" in out
        loaded = pstats.Stats(str(stats_file))
        assert len(loaded.stats) > 0

    def test_profile_flag_default_off(self):
        args = build_parser().parse_args(
            ["schedule", "--kind", "strassen"]
        )
        assert args.profile is None

    def test_unknown_algorithm(self):
        with pytest.raises(SystemExit, match="unknown algorithm"):
            main(
                [
                    "schedule",
                    "--kind",
                    "fft",
                    "--size",
                    "4",
                    "--algorithm",
                    "nope",
                ]
            )

    def test_unknown_model(self):
        with pytest.raises(SystemExit, match="unknown model"):
            main(
                [
                    "schedule",
                    "--kind",
                    "fft",
                    "--size",
                    "4",
                    "--model",
                    "nope",
                ]
            )

    @pytest.mark.parametrize(
        "flags",
        [
            ["--islands", "-2"],
            ["--islands", "1", "--migration-interval", "0"],
        ],
    )
    def test_bad_island_flags_exit_cleanly(self, flags):
        """Invalid island parameters are a SystemExit message, not a
        ConfigurationError traceback."""
        with pytest.raises(SystemExit, match="configuration error"):
            main(
                [
                    "schedule", "--kind", "fft", "--size", "4",
                    "--algorithm", "emts5", *flags,
                ]
            )

    def test_checkpoint_and_resume_flags(self, tmp_path, capsys):
        """--checkpoint writes a resumable file; --resume reproduces
        the uninterrupted run's makespan bit-identically."""
        from repro.core import load_checkpoint

        ckpt = tmp_path / "run.ckpt"
        base_args = [
            "schedule", "--kind", "fft", "--size", "4",
            "--seed", "6", "--algorithm", "emts5",
        ]
        rc = main(base_args + ["--checkpoint", str(ckpt)])
        assert rc == 0
        first = capsys.readouterr().out
        assert load_checkpoint(ckpt).completed
        # a time-budgeted run stops early but still reports a result
        rc = main(base_args + [
            "--checkpoint", str(tmp_path / "cut.ckpt"),
            "--max-wall-time", "1e-6",
        ])
        assert rc == 0
        cut = capsys.readouterr().out
        assert "interrupted: stopped after generation" in cut
        assert "--resume" in cut
        rc = main(base_args + ["--resume", str(tmp_path / "cut.ckpt")])
        assert rc == 0
        resumed = capsys.readouterr().out
        line = next(
            ln for ln in first.splitlines() if ln.startswith("makespan")
        )
        assert line in resumed

    def test_resume_flags_rejected_for_heuristics(self, tmp_path):
        with pytest.raises(SystemExit, match="only apply to EMTS"):
            main(
                [
                    "schedule", "--kind", "fft", "--size", "4",
                    "--algorithm", "mcpa",
                    "--checkpoint", str(tmp_path / "x.ckpt"),
                ]
            )

    def test_resume_from_bad_checkpoint_exits_cleanly(self, tmp_path):
        """A missing/mismatched checkpoint is a SystemExit message,
        not a traceback."""
        with pytest.raises(SystemExit, match="checkpoint error"):
            main(
                [
                    "schedule", "--kind", "fft", "--size", "4",
                    "--algorithm", "emts5",
                    "--resume", str(tmp_path / "missing.ckpt"),
                ]
            )

    def test_resilience_flag_defaults(self):
        args = build_parser().parse_args(
            ["schedule", "--kind", "strassen"]
        )
        assert args.checkpoint is None
        assert args.resume is None
        assert args.max_wall_time is None


class TestOnline:
    ARGS = [
        "online",
        "--kind",
        "fft",
        "--size",
        "4",
        "--seed",
        "1",
        "--algorithm",
        "mcpa",
    ]

    def test_fault_free_run_completes(self, capsys):
        rc = main(self.ARGS)
        assert rc == 0
        out = capsys.readouterr().out
        assert "outcome   : completed" in out
        assert "verified  : True" in out
        assert "0 crashes, 0 failures, 0 stragglers" in out

    def test_faulty_run_reports_reactions(self, capsys):
        rc = main(
            self.ARGS
            + [
                "--failure-rate",
                "0.3",
                "--straggler-rate",
                "0.3",
                "--fault-seed",
                "3",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "outcome   : completed" in out
        assert "replans   :" in out

    def test_impossible_deadline_exit_code(self, capsys):
        rc = main(self.ARGS + ["--deadline-factor", "0.5"])
        assert rc == 3
        out = capsys.readouterr().out
        assert "outcome   : deadline-missed" in out
        assert "reason    :" in out

    def test_aborted_exit_code(self, capsys):
        rc = main(
            self.ARGS
            + [
                "--failure-rate",
                "1.0",
                "--max-retries",
                "0",
                "--fault-seed",
                "3",
            ]
        )
        assert rc == 4
        out = capsys.readouterr().out
        assert "outcome   : aborted" in out
        assert "retry budget" in out

    def test_deadline_flags_are_exclusive(self):
        with pytest.raises(SystemExit, match="mutually"):
            main(
                self.ARGS
                + ["--deadline", "10", "--deadline-factor", "2.0"]
            )

    def test_bad_rate_rejected(self):
        with pytest.raises(SystemExit, match="rates"):
            main(self.ARGS + ["--failure-rate", "1.5"])

    def test_trace_and_metrics_outputs(self, tmp_path, capsys):
        trace = tmp_path / "online.jsonl"
        metrics = tmp_path / "metrics.json"
        rc = main(
            self.ARGS
            + [
                "--failure-rate",
                "0.3",
                "--fault-seed",
                "3",
                "--trace",
                str(trace),
                "--metrics-out",
                str(metrics),
            ]
        )
        assert rc == 0
        assert trace.exists()
        doc = json.loads(metrics.read_text())
        assert any(k.startswith("online.") for k in doc)
        # the trace digest renders the online section
        rc = main(["report-trace", str(trace)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "online    :" in out
        assert "outcome : completed" in out


class TestFigures:
    def test_figure1(self, capsys):
        assert main(["figure", "1"]) == 0
        assert "non-monotone" in capsys.readouterr().out

    def test_figure2(self, capsys):
        assert main(["figure", "2"]) == 0
        assert "individual I" in capsys.readouterr().out

    def test_figure3(self, capsys):
        assert (
            main(["figure", "3", "--samples", "20000"]) == 0
        )
        assert "shrink mass" in capsys.readouterr().out

    def test_figure6_with_svg_output(self, tmp_path, capsys):
        rc = main(
            [
                "figure",
                "6",
                "--seed",
                "3",
                "--output-dir",
                str(tmp_path),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "relative makespan" in out
        assert (tmp_path / "figure6_mcpa.svg").exists()
        assert (tmp_path / "figure6_emts10.svg").exists()

    def test_unknown_figure(self):
        with pytest.raises(SystemExit, match="no figure"):
            main(["figure", "9"])

    def test_non_numeric_figure(self):
        with pytest.raises(SystemExit, match="1-6 or 'all'"):
            main(["figure", "seven"])


class TestRuntime:
    def test_runtime_table(self, capsys):
        rc = main(["runtime", "--repetitions", "1", "--seed", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "paper mean" in out
        assert "emts10" in out

    def test_runtime_profile_flag(self, tmp_path, capsys):
        stats_file = tmp_path / "runtime.prof"
        rc = main(
            [
                "runtime",
                "--repetitions",
                "1",
                "--seed",
                "1",
                "--profile",
                str(stats_file),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "paper mean" in out
        assert "cumulative time" in out
        assert stats_file.exists()


class TestExtensionCommands:
    def test_scalability(self, capsys):
        rc = main(
            [
                "scalability",
                "--size",
                "15",
                "--instances",
                "2",
                "--sizes",
                "4,16",
                "--seed",
                "1",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "T_mcpa/T_emts5" in out
        assert "trend" in out

    def test_convergence(self, capsys):
        rc = main(
            [
                "convergence",
                "--size",
                "15",
                "--instances",
                "2",
                "--seed",
                "1",
                "--platform",
                "chti",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "best/seed (emts5)" in out
        assert "final mean improvement" in out

    def test_cpr_algorithm_available(self, capsys):
        rc = main(
            [
                "schedule",
                "--kind",
                "strassen",
                "--seed",
                "2",
                "--platform",
                "chti",
                "--algorithm",
                "cpr",
            ]
        )
        assert rc == 0
        assert "cpr" in capsys.readouterr().out


class TestCorpus:
    def test_summary(self, capsys):
        rc = main(["corpus", "--scale", "0.01", "--seed", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fft=4" in out

    def test_save(self, tmp_path, capsys):
        out_file = tmp_path / "corpus.json"
        main(
            [
                "corpus",
                "--scale",
                "0.01",
                "--seed",
                "1",
                "--output",
                str(out_file),
            ]
        )
        doc = json.loads(out_file.read_text())
        assert doc["format"] == "repro-ptg-corpus"


class TestObservability:
    @pytest.fixture(autouse=True)
    def clean_logging(self):
        from repro.obs import reset_logging

        yield
        reset_logging()

    def run_traced(self, tmp_path, *extra):
        trace = tmp_path / "run.jsonl"
        rc = main(
            [
                "schedule",
                "--kind",
                "fft",
                "--size",
                "4",
                "--seed",
                "7",
                "--platform",
                "chti",
                "--algorithm",
                "emts5",
                "--trace",
                str(trace),
                *extra,
            ]
        )
        return rc, trace

    def test_trace_flag_writes_valid_trace(self, tmp_path, capsys):
        from repro.obs import read_trace

        rc, trace = self.run_traced(tmp_path)
        assert rc == 0
        assert "wrote trace" in capsys.readouterr().out
        events = read_trace(trace)
        assert events[0].kind == "run_start"
        assert events[-1].kind == "run_end"

    def test_report_trace_subcommand(self, tmp_path, capsys):
        _, trace = self.run_traced(tmp_path)
        capsys.readouterr()
        rc = main(["report-trace", str(trace)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "emts5" in out
        assert "phases" in out

    def test_report_trace_corrupt_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"torn\n')
        with pytest.raises(SystemExit) as err:
            main(["report-trace", str(bad)])
        assert "not valid JSON" in str(err.value)

    def test_report_trace_missing_file(self, tmp_path):
        with pytest.raises(SystemExit) as err:
            main(["report-trace", str(tmp_path / "nope.jsonl")])
        assert "cannot read" in str(err.value)

    def test_metrics_out_json(self, tmp_path, capsys):
        out = tmp_path / "metrics.json"
        rc, _ = self.run_traced(tmp_path, "--metrics-out", str(out))
        assert rc == 0
        data = json.loads(out.read_text())
        assert data["emts.evaluations"]["value"] > 0

    def test_metrics_out_prometheus(self, tmp_path):
        out = tmp_path / "metrics.prom"
        rc, _ = self.run_traced(tmp_path, "--metrics-out", str(out))
        assert rc == 0
        text = out.read_text()
        assert "# TYPE repro_emts_evaluations counter" in text

    def test_trace_rejected_for_heuristics(self, tmp_path):
        with pytest.raises(SystemExit) as err:
            main(
                [
                    "schedule",
                    "--kind",
                    "fft",
                    "--size",
                    "4",
                    "--seed",
                    "1",
                    "--algorithm",
                    "mcpa",
                    "--trace",
                    str(tmp_path / "t.jsonl"),
                ]
            )
        assert "--trace/--metrics-out" in str(err.value)

    def test_log_level_flag(self, tmp_path, capsys):
        rc, _ = self.run_traced(tmp_path)
        assert rc == 0
        import logging

        root = logging.getLogger("repro")
        assert len(root.handlers) == 1

    def test_log_flags_parse(self):
        args = build_parser().parse_args(
            ["--log-level", "debug", "--log-json", "corpus"]
        )
        assert args.log_level == "debug"
        assert args.log_json is True
