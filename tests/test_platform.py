"""Unit tests for the platform model (repro.platform)."""

import pytest

from repro.exceptions import PlatformError
from repro.platform import (
    Cluster,
    by_name,
    chti,
    cluster_from_dict,
    cluster_to_dict,
    format_platform_text,
    grelon,
    load_cluster,
    paper_platforms,
    parse_platform_text,
    save_cluster,
)


class TestCluster:
    def test_basic(self):
        c = Cluster("x", num_processors=8, speed_gflops=2.0)
        assert c.speed_flops == 2.0e9
        assert c.peak_flops == 16.0e9

    def test_sequential_time(self):
        c = Cluster("x", num_processors=1, speed_gflops=2.0)
        assert c.sequential_time(4e9) == pytest.approx(2.0)

    def test_sequential_time_negative_work_rejected(self):
        with pytest.raises(PlatformError):
            chti().sequential_time(-1.0)

    @pytest.mark.parametrize("procs", [0, -1])
    def test_invalid_processor_count(self, procs):
        with pytest.raises(PlatformError, match="num_processors"):
            Cluster("x", num_processors=procs, speed_gflops=1.0)

    @pytest.mark.parametrize("speed", [0.0, -2.0])
    def test_invalid_speed(self, speed):
        with pytest.raises(PlatformError, match="speed"):
            Cluster("x", num_processors=1, speed_gflops=speed)

    def test_valid_allocation(self):
        c = Cluster("x", num_processors=4, speed_gflops=1.0)
        assert c.valid_allocation(1)
        assert c.valid_allocation(4)
        assert not c.valid_allocation(0)
        assert not c.valid_allocation(5)

    def test_clamp_allocation(self):
        c = Cluster("x", num_processors=4, speed_gflops=1.0)
        assert c.clamp_allocation(0) == 1
        assert c.clamp_allocation(99) == 4
        assert c.clamp_allocation(3) == 3

    def test_scaled(self):
        c = chti().scaled(3)
        assert c.num_processors == 60
        assert c.speed_gflops == 4.3
        assert "x3" in c.name

    def test_scaled_invalid_factor(self):
        with pytest.raises(PlatformError):
            chti().scaled(0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            chti().num_processors = 5

    def test_str(self):
        assert "20" in str(chti())


class TestPresets:
    def test_chti_matches_paper(self):
        c = chti()
        assert c.num_processors == 20
        assert c.speed_gflops == 4.3

    def test_grelon_matches_paper(self):
        g = grelon()
        assert g.num_processors == 120
        assert g.speed_gflops == 3.1

    def test_paper_platforms_order(self):
        small, large = paper_platforms()
        assert small.name == "chti"
        assert large.name == "grelon"

    def test_by_name_case_insensitive(self):
        assert by_name("GRELON").num_processors == 120

    def test_by_name_unknown(self):
        with pytest.raises(KeyError, match="unknown platform"):
            by_name("nonexistent")


class TestPlatformIO:
    def test_dict_roundtrip(self):
        c = grelon()
        assert cluster_from_dict(cluster_to_dict(c)) == c

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "p.json"
        save_cluster(chti(), path)
        assert load_cluster(path) == chti()

    def test_wrong_format_rejected(self):
        with pytest.raises(PlatformError, match="format"):
            cluster_from_dict({"format": "nope"})

    def test_missing_key_rejected(self):
        with pytest.raises(PlatformError, match="missing"):
            cluster_from_dict({"format": "repro-platform", "name": "x"})

    def test_text_roundtrip(self):
        clusters = [chti(), grelon()]
        text = format_platform_text(clusters)
        assert parse_platform_text(text) == clusters

    def test_text_comments_and_blanks(self):
        text = "# heading\n\nchti 20 4.3  # inline comment\n"
        parsed = parse_platform_text(text)
        assert parsed == [chti()]

    def test_text_bad_field_count(self):
        with pytest.raises(PlatformError, match="line 1"):
            parse_platform_text("chti 20\n")

    def test_text_bad_number(self):
        with pytest.raises(PlatformError, match="line 1"):
            parse_platform_text("chti twenty 4.3\n")

    def test_text_empty_rejected(self):
        with pytest.raises(PlatformError, match="no cluster"):
            parse_platform_text("# nothing here\n")

    def test_load_missing_file_names_path(self, tmp_path):
        path = tmp_path / "absent.json"
        with pytest.raises(PlatformError, match="absent.json"):
            load_cluster(path)

    def test_load_truncated_json_names_path(self, tmp_path):
        path = tmp_path / "cut.json"
        path.write_text('{"format": "repro-pla')
        with pytest.raises(PlatformError, match="cut.json.*not valid JSON"):
            load_cluster(path)

    def test_load_malformed_field_carries_path(self, tmp_path):
        import json

        path = tmp_path / "bad.json"
        path.write_text(json.dumps({
            "format": "repro-platform",
            "name": "x",
            "num_processors": "many",
            "speed_gflops": 1.0,
        }))
        with pytest.raises(PlatformError, match="bad.json.*malformed"):
            load_cluster(path)

    def test_non_numeric_field_rejected(self):
        with pytest.raises(PlatformError, match="malformed"):
            cluster_from_dict({
                "format": "repro-platform",
                "name": "x",
                "num_processors": 4,
                "speed_gflops": "fast",
            })
