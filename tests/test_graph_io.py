"""Unit tests for PTG serialization (repro.graph.io)."""

import json

import pytest

from repro.exceptions import GraphError
from repro.graph import (
    load_corpus,
    load_ptg,
    ptg_from_dict,
    ptg_to_dict,
    ptg_to_dot,
    save_corpus,
    save_ptg,
)


class TestDictRoundTrip:
    def test_roundtrip_preserves_graph(self, diamond_ptg):
        assert ptg_from_dict(ptg_to_dict(diamond_ptg)) == diamond_ptg

    def test_roundtrip_preserves_attributes(self, fft8_ptg):
        back = ptg_from_dict(ptg_to_dict(fft8_ptg))
        for orig, restored in zip(fft8_ptg.tasks, back.tasks):
            assert orig == restored

    def test_name_preserved(self, diamond_ptg):
        assert ptg_from_dict(ptg_to_dict(diamond_ptg)).name == "diamond"

    def test_wrong_format_rejected(self):
        with pytest.raises(GraphError, match="format"):
            ptg_from_dict({"format": "something-else"})

    def test_wrong_version_rejected(self, diamond_ptg):
        doc = ptg_to_dict(diamond_ptg)
        doc["version"] = 999
        with pytest.raises(GraphError, match="version"):
            ptg_from_dict(doc)

    def test_dict_is_json_serializable(self, fft8_ptg):
        json.dumps(ptg_to_dict(fft8_ptg))


class TestFileRoundTrip:
    def test_save_load(self, diamond_ptg, tmp_path):
        path = tmp_path / "g.json"
        save_ptg(diamond_ptg, path)
        assert load_ptg(path) == diamond_ptg

    def test_corpus_roundtrip(self, diamond_ptg, fft8_ptg, tmp_path):
        path = tmp_path / "corpus.json"
        save_corpus([diamond_ptg, fft8_ptg], path)
        back = load_corpus(path)
        assert len(back) == 2
        assert back[0] == diamond_ptg
        assert back[1] == fft8_ptg

    def test_corpus_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "nope"}')
        with pytest.raises(GraphError, match="corpus"):
            load_corpus(path)


class TestLoaderErrorContext:
    """Malformed inputs surface as GraphError with path/field context,
    never as raw KeyError/ValueError."""

    def test_missing_file_names_path(self, tmp_path):
        path = tmp_path / "absent.json"
        with pytest.raises(GraphError, match="absent.json"):
            load_ptg(path)

    def test_truncated_json_names_path(self, tmp_path):
        path = tmp_path / "cut.json"
        path.write_text('{"format": "repro-ptg", "tas')
        with pytest.raises(GraphError, match="cut.json.*not valid JSON"):
            load_ptg(path)

    def test_missing_task_field_names_task_and_field(self, diamond_ptg):
        doc = ptg_to_dict(diamond_ptg)
        del doc["tasks"][2]["work"]
        with pytest.raises(GraphError, match="task 2.*'work'"):
            ptg_from_dict(doc)

    def test_non_numeric_task_field_is_wrapped(self, diamond_ptg):
        doc = ptg_to_dict(diamond_ptg)
        doc["tasks"][1]["work"] = "lots"
        with pytest.raises(GraphError, match="task 1 is malformed"):
            ptg_from_dict(doc)

    def test_malformed_edge_names_index(self, diamond_ptg):
        doc = ptg_to_dict(diamond_ptg)
        doc["edges"][3] = [0, "one", 2]
        with pytest.raises(GraphError, match="edge 3"):
            ptg_from_dict(doc)

    def test_missing_sections_rejected(self):
        with pytest.raises(GraphError, match="'tasks'"):
            ptg_from_dict({"format": "repro-ptg", "version": 1})

    def test_file_error_carries_path(self, diamond_ptg, tmp_path):
        path = tmp_path / "g.json"
        doc = ptg_to_dict(diamond_ptg)
        del doc["tasks"][0]["name"]
        path.write_text(json.dumps(doc))
        with pytest.raises(GraphError, match="g.json.*task 0"):
            load_ptg(path)

    def test_corpus_error_names_ptg_index(self, diamond_ptg, tmp_path):
        path = tmp_path / "corpus.json"
        save_corpus([diamond_ptg, diamond_ptg], path)
        doc = json.loads(path.read_text())
        del doc["ptgs"][1]["tasks"][0]["work"]
        path.write_text(json.dumps(doc))
        with pytest.raises(GraphError, match="PTG 1.*task 0"):
            load_corpus(path)


class TestDot:
    def test_dot_contains_all_nodes_and_edges(self, diamond_ptg):
        dot = ptg_to_dot(diamond_ptg)
        assert dot.startswith("digraph")
        for i in range(diamond_ptg.num_tasks):
            assert f"n{i} " in dot
        assert dot.count("->") == diamond_ptg.num_edges

    def test_dot_without_work_labels(self, diamond_ptg):
        dot = ptg_to_dot(diamond_ptg, label_work=False)
        assert "FLOP" not in dot
