"""Unit tests for the comparison harness and report rendering."""

import numpy as np
import pytest

from repro.allocation import HcpaAllocator, McpaAllocator
from repro.core import emts5
from repro.experiments import (
    ComparisonResult,
    RunRecord,
    run_comparison,
    text_table,
    write_csv,
)
from repro.platform import Cluster
from repro.timemodels import SyntheticModel
from repro.workloads import generate_fft


@pytest.fixture(scope="module")
def small_result():
    ptgs = {
        "fft": [generate_fft(4, rng=s) for s in range(3)],
    }
    platforms = [
        Cluster("mini", num_processors=8, speed_gflops=2.0)
    ]
    return run_comparison(
        ptgs,
        platforms,
        SyntheticModel(),
        emts5(generations=2),
        [McpaAllocator(), HcpaAllocator()],
        seed=5,
    )


class TestRunComparison:
    def test_record_count(self, small_result):
        assert len(small_result) == 3  # 3 PTGs x 1 platform

    def test_record_fields(self, small_result):
        r = small_result.records[0]
        assert r.ptg_class == "fft"
        assert r.platform == "mini"
        assert r.num_tasks == 15
        assert set(r.baseline_makespans) == {"mcpa", "hcpa"}
        assert r.emts_makespan > 0

    def test_emts_never_loses_to_seeded_baselines(self, small_result):
        for r in small_result.records:
            assert r.relative("mcpa") >= 1.0 - 1e-9
            assert r.relative("hcpa") >= 1.0 - 1e-9

    def test_aggregation(self, small_result):
        ci = small_result.relative_makespan("mcpa")
        assert ci.n == 3
        assert ci.mean >= 1.0 - 1e-9

    def test_filter(self, small_result):
        assert len(small_result.filter(ptg_class="fft")) == 3
        assert len(small_result.filter(ptg_class="other")) == 0
        assert len(small_result.filter(platform="mini")) == 3

    def test_metadata_accessors(self, small_result):
        assert small_result.baselines == ("hcpa", "mcpa")
        assert small_result.classes == ("fft",)
        assert small_result.platforms == ("mini",)

    def test_to_rows(self, small_result):
        rows = small_result.to_rows()
        assert len(rows) == 3
        assert "makespan_mcpa" in rows[0]
        assert "emts_mapper_calls" in rows[0]

    def test_evaluation_counters_recorded(self, small_result):
        for r in small_result.records:
            # 3 seeds + 5 initial + 2 generations x 25 offspring
            assert r.emts_evaluations == 3 + 5 + 2 * 25
            assert (
                r.emts_mapper_calls + r.emts_cache_hits
                == r.emts_evaluations
            )

    def test_legacy_record_defaults(self):
        r = RunRecord(
            ptg_name="p",
            ptg_class="fft",
            num_tasks=1,
            platform="mini",
            model="m",
            emts_name="emts5",
            emts_makespan=1.0,
            emts_seconds=0.1,
            baseline_makespans={"mcpa": 1.5},
        )
        assert r.emts_evaluations == 0
        assert ComparisonResult([r]).to_rows()[0]["emts_cache_hits"] == 0

    def test_evaluator_overrides_do_not_change_makespans(self):
        ptgs = {"fft": [generate_fft(4, rng=2)]}
        platforms = [
            Cluster("mini", num_processors=8, speed_gflops=2.0)
        ]
        kwargs = dict(
            model=SyntheticModel(),
            emts=emts5(generations=2),
            baselines=[McpaAllocator()],
            seed=3,
        )
        plain = run_comparison(ptgs, platforms, **kwargs)
        tuned = run_comparison(
            ptgs, platforms, fitness_cache=False, **kwargs
        )
        assert (
            plain.records[0].emts_makespan
            == tuned.records[0].emts_makespan
        )
        assert tuned.records[0].emts_cache_hits == 0

    def test_reproducible(self):
        ptgs = {"fft": [generate_fft(4, rng=0)]}
        platforms = [
            Cluster("mini", num_processors=8, speed_gflops=2.0)
        ]
        kwargs = dict(
            model=SyntheticModel(),
            emts=emts5(generations=2),
            baselines=[McpaAllocator()],
            seed=9,
        )
        r1 = run_comparison(ptgs, platforms, **kwargs)
        r2 = run_comparison(ptgs, platforms, **kwargs)
        assert (
            r1.records[0].emts_makespan
            == r2.records[0].emts_makespan
        )


class TestReport:
    def test_text_table_alignment(self):
        out = text_table(
            ["name", "value"], [["a", 1.0], ["long-name", 2.5]]
        )
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert all(len(l) == len(lines[0]) or True for l in lines)
        assert "long-name" in lines[3]

    def test_text_table_float_format(self):
        out = text_table(["x"], [[1.23456789]])
        assert "1.235" in out

    def test_write_csv_roundtrip(self, tmp_path):
        rows = [
            {"a": 1, "b": "x"},
            {"a": 2, "b": "y", "c": 3.5},
        ]
        path = tmp_path / "out.csv"
        text = write_csv(rows, path)
        assert path.read_text() == text
        lines = text.strip().splitlines()
        assert lines[0] == "a,b,c"
        assert len(lines) == 3

    def test_write_csv_empty(self):
        assert write_csv([]) == ""
