"""Unit tests for the CPR one-step baseline."""

import numpy as np

from repro.allocation import CpaAllocator, CprAllocator
from repro.mapping import makespan_of
from repro.platform import Cluster, chti
from repro.timemodels import AmdahlModel, SyntheticModel, TimeTable
from repro.workloads import generate_fft


def table_for(ptg, P=8, model=None):
    cluster = Cluster("c", num_processors=P, speed_gflops=1.0)
    return TimeTable.build(model or AmdahlModel(), ptg, cluster)


class TestCpr:
    def test_allocations_in_bounds(self, irregular_ptg):
        table = table_for(irregular_ptg, P=8)
        alloc = CprAllocator().allocate(irregular_ptg, table)
        assert alloc.min() >= 1
        assert alloc.max() <= 8

    def test_monotone_improvement_over_serial(self, fft8_ptg):
        table = table_for(fft8_ptg, P=16)
        serial_ms = makespan_of(
            fft8_ptg, table, np.ones(39, dtype=np.int64)
        )
        cpr_alloc = CprAllocator().allocate(fft8_ptg, table)
        cpr_ms = makespan_of(fft8_ptg, table, cpr_alloc)
        assert cpr_ms <= serial_ms

    def test_one_step_at_least_matches_two_step(self, fft8_ptg):
        """CPR validates every step against the full schedule, so it
        never accepts a change that hurts — its makespan is <= CPA's
        mapped makespan on the same table, or very close."""
        for model in (AmdahlModel(), SyntheticModel()):
            table = table_for(fft8_ptg, P=16, model=model)
            cpa_ms = makespan_of(
                fft8_ptg,
                table,
                CpaAllocator().allocate(fft8_ptg, table),
            )
            cpr_ms = makespan_of(
                fft8_ptg,
                table,
                CprAllocator().allocate(fft8_ptg, table),
            )
            assert cpr_ms <= cpa_ms * 1.02, model.name

    def test_terminates_under_model2(self, irregular_ptg):
        table = table_for(irregular_ptg, P=32, model=SyntheticModel())
        alloc = CprAllocator().allocate(irregular_ptg, table)
        assert alloc.shape == (irregular_ptg.num_tasks,)

    def test_never_lands_on_penalized_sizes_unprofitably(self):
        """Under Model 2, CPR's schedule-validated growth avoids the
        pathological odd allocations CPA can step through."""
        ptg = generate_fft(4, rng=9)
        table = table_for(ptg, P=12, model=SyntheticModel())
        alloc = CprAllocator().allocate(ptg, table)
        ms_cpr = makespan_of(ptg, table, alloc)
        serial = makespan_of(
            ptg, table, np.ones(ptg.num_tasks, dtype=np.int64)
        )
        assert ms_cpr <= serial

    def test_max_iterations_cap(self, fft8_ptg):
        table = table_for(fft8_ptg, P=16)
        alloc = CprAllocator(max_iterations=2).allocate(
            fft8_ptg, table
        )
        assert (alloc - 1).sum() <= 2

    def test_single_task(self, single_task_ptg, chti_cluster):
        table = TimeTable.build(
            AmdahlModel(), single_task_ptg, chti_cluster
        )
        alloc = CprAllocator().allocate(single_task_ptg, table)
        # a single perfectly-divisible task: growth helps until P
        assert alloc[0] >= 1

    def test_registered_as_seed(self):
        from repro.core import make_allocator

        assert make_allocator("cpr").name == "cpr"
