"""Property-based tests (hypothesis) for the execution-time models."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import Task
from repro.platform import Cluster
from repro.timemodels import (
    AmdahlModel,
    DowneyModel,
    SyntheticModel,
    amdahl_time,
    downey_speedup,
    penalty_factors,
)

works = st.floats(min_value=1e6, max_value=1e13)
alphas = st.floats(min_value=0.0, max_value=1.0)
procs = st.integers(min_value=1, max_value=256)


@given(works, alphas, procs)
@settings(max_examples=150, deadline=None)
def test_amdahl_bounded_by_serial_and_alpha_floor(work, alpha, p):
    seq = work / 1e9
    t = amdahl_time(seq, alpha, p)
    assert t <= seq * (1 + 1e-12)
    assert t >= alpha * seq * (1 - 1e-12)


@given(works, alphas, st.integers(min_value=2, max_value=128))
@settings(max_examples=150, deadline=None)
def test_amdahl_monotone_in_p(work, alpha, p):
    seq = work / 1e9
    assert amdahl_time(seq, alpha, p) <= amdahl_time(
        seq, alpha, p - 1
    ) * (1 + 1e-12)


@given(works, alphas, procs, st.booleans())
@settings(max_examples=100, deadline=None)
def test_synthetic_within_penalty_envelope(work, alpha, p, prose):
    """Model 2 sits between 1x and 1.3x of Model 1, always positive."""
    cluster = Cluster("c", num_processors=256, speed_gflops=1.0)
    task = Task("t", work=work, alpha=alpha)
    base = AmdahlModel().time(task, p, cluster)
    t = SyntheticModel(prose_variant=prose).time(task, p, cluster)
    assert base * (1 - 1e-12) <= t <= base * 1.3 * (1 + 1e-12)
    assert t > 0


@given(st.integers(min_value=1, max_value=512), st.booleans())
@settings(max_examples=50, deadline=None)
def test_penalty_factors_in_set(max_p, prose):
    f = penalty_factors(max_p, prose_variant=prose)
    assert set(np.round(f, 10)) <= {1.0, 1.1, 1.3}
    assert f[0] == 1.0  # p=1 never penalized


@given(
    procs,
    st.floats(min_value=1.0, max_value=128.0),
    st.floats(min_value=0.0, max_value=4.0),
)
@settings(max_examples=150, deadline=None)
def test_downey_speedup_bounds(n, A, sigma):
    s = downey_speedup(n, A, sigma)
    assert 1.0 - 1e-12 <= s <= max(A, 1.0) * (1 + 1e-9)


@given(
    st.floats(min_value=1.0, max_value=64.0),
    st.floats(min_value=0.0, max_value=3.0),
)
@settings(max_examples=80, deadline=None)
def test_downey_speedup_monotone_in_n(A, sigma):
    n = np.arange(1, 129)
    s = downey_speedup(n, A, sigma)
    assert np.all(np.diff(s) >= -1e-9)


@given(works, alphas)
@settings(max_examples=60, deadline=None)
def test_table_entries_positive_all_models(work, alpha):
    from repro.graph import PTG
    from repro.timemodels import TimeTable

    ptg = PTG([Task("t", work=work, alpha=alpha)], [])
    cluster = Cluster("c", num_processors=16, speed_gflops=2.5)
    for model in (
        AmdahlModel(),
        SyntheticModel(),
        DowneyModel(),
    ):
        table = TimeTable.build(model, ptg, cluster)
        assert np.all(table.array > 0)
        assert np.all(np.isfinite(table.array))
