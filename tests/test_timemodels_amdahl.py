"""Unit tests for Model 1 (Amdahl) — repro.timemodels.amdahl."""

import numpy as np
import pytest

from repro.graph import PTGBuilder, Task, PTG
from repro.platform import Cluster
from repro.timemodels import AmdahlModel, TimeTable, amdahl_time


@pytest.fixture
def unit_cluster():
    return Cluster("unit", num_processors=16, speed_gflops=1.0)


class TestAmdahlTime:
    def test_sequential_unchanged(self):
        assert amdahl_time(10.0, 0.5, 1) == pytest.approx(10.0)

    def test_fully_parallel(self):
        assert amdahl_time(10.0, 0.0, 10) == pytest.approx(1.0)

    def test_fully_serial(self):
        assert amdahl_time(10.0, 1.0, 16) == pytest.approx(10.0)

    def test_formula(self):
        # (0.25 + 0.75/4) * 8 = 0.4375 * 8 = 3.5
        assert amdahl_time(8.0, 0.25, 4) == pytest.approx(3.5)

    def test_asymptote_is_alpha_fraction(self):
        assert amdahl_time(10.0, 0.2, 10**9) == pytest.approx(
            2.0, rel=1e-6
        )

    def test_vectorized_over_p(self):
        p = np.array([1, 2, 4])
        out = amdahl_time(8.0, 0.0, p)
        assert np.allclose(out, [8.0, 4.0, 2.0])


class TestAmdahlModel:
    def test_time_uses_cluster_speed(self, unit_cluster):
        t = Task("t", work=2e9, alpha=0.0)
        m = AmdahlModel()
        assert m.time(t, 1, unit_cluster) == pytest.approx(2.0)
        assert m.time(t, 2, unit_cluster) == pytest.approx(1.0)

    def test_monotone_flag(self):
        assert AmdahlModel().monotone

    def test_out_of_range_p_rejected(self, unit_cluster):
        from repro.exceptions import ModelError

        t = Task("t", work=1e9)
        with pytest.raises(ModelError):
            AmdahlModel().time(t, 0, unit_cluster)
        with pytest.raises(ModelError):
            AmdahlModel().time(t, 17, unit_cluster)

    def test_table_matches_scalar(self, unit_cluster):
        b = PTGBuilder()
        b.add_task("a", work=3e9, alpha=0.1)
        b.add_task("b", work=5e9, alpha=0.3)
        b.add_edge("a", "b")
        ptg = b.build()
        m = AmdahlModel()
        table = m.build_table(ptg, unit_cluster)
        for v, task in enumerate(ptg.tasks):
            for p in (1, 2, 7, 16):
                assert table[v, p - 1] == pytest.approx(
                    m.time(task, p, unit_cluster)
                )

    def test_table_monotone_decreasing(self, fft8_ptg, grelon_cluster):
        table = TimeTable.build(AmdahlModel(), fft8_ptg, grelon_cluster)
        assert table.is_monotone()

    def test_different_alpha_different_curves(self, unit_cluster):
        ptg = PTG(
            [
                Task("fast", work=1e9, alpha=0.0),
                Task("slow", work=1e9, alpha=0.5),
            ],
            [],
        )
        table = AmdahlModel().build_table(ptg, unit_cluster)
        # same sequential time, diverging parallel behaviour
        assert table[0, 0] == pytest.approx(table[1, 0])
        assert table[0, 15] < table[1, 15]
