"""End-to-end observability: EMTS runs, evaluators, campaigns.

Covers the acceptance criteria of the observability layer: a traced
run produces a schema-valid JSONL stream whose deterministic skeleton
is bit-identical across same-seed runs, observability changes no
results, and the metrics registry aggregates across every surface
(serial, pooled, campaign).
"""

import json
import threading

import pytest

from repro.core import SerialEvaluator, emts5, make_allocator
from repro.exceptions import TraceError
from repro.obs import (
    MetricsRegistry,
    ObservedEvaluator,
    PhaseProfiler,
    Tracer,
    canonical_events,
    read_trace,
    render_trace_report,
    run_snapshot,
    validate_event,
)
from repro.platform import grelon
from repro.timemodels import SyntheticModel, TimeTable
from repro.workloads import generate_fft

#: Phases the EMTS hot path may charge time to.
KNOWN_PHASES = {
    "seeding",
    "seed_fitness",
    "kernel_build",
    "mutation",
    "fitness_batch",
    "checkpoint",
    "final_mapping",
    "verify",
}


@pytest.fixture(scope="module")
def problem():
    ptg = generate_fft(8, rng=777)
    cluster = grelon()
    table = TimeTable.build(SyntheticModel(), ptg, cluster)
    return ptg, cluster, table


def traced_run(problem, path, seed=42, **kwargs):
    ptg, cluster, table = problem
    return emts5().schedule(
        ptg, cluster, table, rng=seed, trace=path, **kwargs
    )


class TestTracedRun:
    def test_event_stream_shape(self, problem, tmp_path):
        path = tmp_path / "run.jsonl"
        result = traced_run(problem, path)
        events = read_trace(path)
        kinds = [e.kind for e in events]
        assert kinds[0] == "run_start"
        assert kinds[-1] == "run_end"
        assert kinds.count("seed") == 1
        generations = [e for e in events if e.kind == "generation"]
        assert len(generations) == result.config.generations + 1
        for event in events:
            validate_event(event.to_dict())

    def test_run_start_attrs(self, problem, tmp_path):
        path = tmp_path / "run.jsonl"
        traced_run(problem, path)
        start = read_trace(path)[0]
        assert start.attrs["algorithm"] == "emts5"
        assert start.attrs["resumed"] is False
        fingerprint = start.attrs["problem"]
        assert fingerprint["num_tasks"] == 39
        assert fingerprint["cluster_name"] == "grelon"

    def test_run_end_attrs(self, problem, tmp_path):
        path = tmp_path / "run.jsonl"
        result = traced_run(problem, path)
        end = read_trace(path)[-1]
        assert end.attrs["makespan"] == pytest.approx(result.makespan)
        assert end.attrs["engine"] in ("c", "numpy")
        assert end.attrs["interrupted"] is False
        assert (
            end.attrs["eval_stats"]["evaluations"]
            == result.evaluation_stats.evaluations
        )

    def test_phase_breakdown_is_sane(self, problem, tmp_path):
        path = tmp_path / "run.jsonl"
        traced_run(problem, path)
        end = read_trace(path)[-1]
        phases = end.attrs["phase_seconds"]
        assert set(phases) <= KNOWN_PHASES
        assert {"seeding", "mutation", "fitness_batch"} <= set(phases)
        assert all(v >= 0 for v in phases.values())
        # phase times nest inside the run span
        assert sum(phases.values()) <= end.dur * 1.01

    def test_same_seed_traces_bit_identical(self, problem, tmp_path):
        traced_run(problem, tmp_path / "a.jsonl", seed=7)
        traced_run(problem, tmp_path / "b.jsonl", seed=7)
        a = canonical_events(tmp_path / "a.jsonl")
        b = canonical_events(tmp_path / "b.jsonl")
        assert json.dumps(a, sort_keys=True) == json.dumps(
            b, sort_keys=True
        )

    def test_different_seeds_differ(self, problem, tmp_path):
        traced_run(problem, tmp_path / "a.jsonl", seed=7)
        traced_run(problem, tmp_path / "b.jsonl", seed=8)
        assert canonical_events(
            tmp_path / "a.jsonl"
        ) != canonical_events(tmp_path / "b.jsonl")

    def test_observability_changes_no_results(self, problem, tmp_path):
        ptg, cluster, table = problem
        plain = emts5().schedule(ptg, cluster, table, rng=9)
        observed = traced_run(
            problem, tmp_path / "t.jsonl", seed=9,
            metrics=MetricsRegistry(),
        )
        assert observed.makespan == plain.makespan
        assert (observed.allocation == plain.allocation).all()

    def test_open_tracer_instance_is_shared_not_closed(
        self, problem, tmp_path
    ):
        path = tmp_path / "two.jsonl"
        with Tracer(path) as tracer:
            traced_run(problem, tracer, seed=1)
            assert not tracer.closed
            traced_run(problem, tracer, seed=2)
        kinds = [e.kind for e in read_trace(path)]
        assert kinds.count("run_start") == 2
        assert kinds.count("run_end") == 2

    def test_unwritable_trace_path_raises(self, problem, tmp_path):
        target = tmp_path / "a-directory"
        target.mkdir()
        with pytest.raises(TraceError, match="cannot open"):
            traced_run(problem, target)

    def test_checkpoint_events_and_resume_flag(
        self, problem, tmp_path
    ):
        ckpt = tmp_path / "run.ckpt"
        stop = threading.Event()
        stop.set()  # interrupt immediately after the first generation
        interrupted = traced_run(
            problem,
            tmp_path / "first.jsonl",
            seed=5,
            checkpoint_path=ckpt,
            stop_event=stop,
        )
        assert interrupted.interrupted
        first = read_trace(tmp_path / "first.jsonl")
        checkpoints = [e for e in first if e.kind == "checkpoint"]
        assert checkpoints and not checkpoints[-1].attrs["completed"]
        assert [e.kind for e in first][-1] == "run_end"
        assert first[-1].attrs["interrupted"] is True

        resumed = traced_run(
            problem,
            tmp_path / "second.jsonl",
            seed=5,
            checkpoint_path=ckpt,
            resume_from=ckpt,
        )
        second = read_trace(tmp_path / "second.jsonl")
        assert second[0].attrs["resumed"] is True
        assert not resumed.interrupted
        # the resumed run finishes the same optimization
        full = traced_run(problem, tmp_path / "full.jsonl", seed=5)
        assert resumed.makespan == full.makespan


class TestRunMetrics:
    def test_registry_populated(self, problem, tmp_path):
        registry = MetricsRegistry()
        ptg, cluster, table = problem
        result = emts5().schedule(
            ptg, cluster, table, rng=3, metrics=registry
        )
        assert (
            registry.value("emts.evaluations")
            == result.evaluation_stats.evaluations
        )
        assert registry.value("emts.makespan") == pytest.approx(
            result.makespan
        )
        assert registry.value("evaluation.batches") > 0
        assert registry.value("evaluation.genomes") > 0
        batch = registry.get("evaluation.batch_seconds")
        assert batch.total == registry.value("evaluation.batches")

    def test_worker_metrics_merge_at_chunk_boundaries(
        self, problem, tmp_path
    ):
        registry = MetricsRegistry()
        ptg, cluster, table = problem
        result = emts5(workers=2).schedule(
            ptg, cluster, table, rng=3, metrics=registry
        )
        assert registry.value("worker.chunks") > 0
        # cache hits are served parent-side; only misses reach workers
        assert (
            registry.value("worker.genomes")
            == result.evaluation_stats.cache_misses
        )

    def test_run_snapshot_matches_result(self, problem):
        ptg, cluster, table = problem
        result = emts5().schedule(ptg, cluster, table, rng=3)
        snap = run_snapshot(result)
        stats = result.evaluation_stats
        assert snap["evaluations"] == stats.evaluations
        assert snap["mapper_calls"] == stats.mapper_calls
        assert snap["cache_hits"] == stats.cache_hits
        assert snap["hit_rate"] == pytest.approx(stats.hit_rate)
        assert snap["interrupted"] is False
        assert snap["makespan"] == pytest.approx(result.makespan)


class TestObservedEvaluator:
    def test_records_events_and_metrics(self, problem, tmp_path):
        ptg, _, table = problem
        path = tmp_path / "t.jsonl"
        registry = MetricsRegistry()
        tracer = Tracer(path)
        tracer.begin("run_start")
        with ObservedEvaluator(
            SerialEvaluator(ptg, table),
            tracer=tracer,
            metrics=registry,
        ) as evaluator:
            genome = make_allocator("mcpa").allocate(ptg, table)
            values = evaluator.evaluate([genome, genome])
        tracer.end("run_end")
        tracer.close()
        assert len(values) == 2
        events = [
            e for e in read_trace(path) if e.kind == "evaluation"
        ]
        assert len(events) == 1
        assert events[0].attrs == {
            "genomes": 2,
            "bounded": False,
            "rejected": 0,
        }
        assert registry.value("evaluation.genomes") == 2

    def test_phase_as_redirects_profiler(self, problem):
        ptg, _, table = problem
        profiler = PhaseProfiler()
        with ObservedEvaluator(
            SerialEvaluator(ptg, table), profiler=profiler
        ) as evaluator:
            genome = make_allocator("mcpa").allocate(ptg, table)
            with evaluator.phase_as("seed_fitness"):
                evaluator.evaluate([genome])
            evaluator.evaluate([genome])
        assert profiler.counts == {
            "seed_fitness": 1,
            "fitness_batch": 1,
        }

    def test_stats_and_genome_key_delegate(self, problem):
        ptg, _, table = problem
        inner = SerialEvaluator(ptg, table)
        evaluator = ObservedEvaluator(inner)
        genome = make_allocator("mcpa").allocate(ptg, table)
        evaluator.evaluate([genome])
        assert evaluator.stats is inner.stats
        assert evaluator.genome_key(genome) == inner.genome_key(genome)
        evaluator.close()


class TestReportTrace:
    def test_report_of_full_run(self, problem, tmp_path):
        path = tmp_path / "run.jsonl"
        result = traced_run(problem, path)
        report = render_trace_report(path)
        assert "emts5" in report
        assert f"{result.makespan:.6g}" in report
        assert "phases" in report
        assert "fitness_batch" in report
        assert "convergence" in report

    def test_report_of_crashed_run_names_incompleteness(
        self, problem, tmp_path
    ):
        path = tmp_path / "run.jsonl"
        traced_run(problem, path)
        # drop the run_end line: a process that died mid-run
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")
        report = render_trace_report(path)
        assert "incomplete" in report


class TestCampaignTrace:
    def test_campaign_events_and_counters(self, problem, tmp_path):
        from repro.experiments import run_comparison_campaign

        ptg, cluster, table = problem
        path = tmp_path / "campaign.jsonl"
        registry = MetricsRegistry()
        _, campaign = run_comparison_campaign(
            {"fft": [ptg]},
            [cluster],
            SyntheticModel(),
            emts5(generations=1),
            [make_allocator("mcpa")],
            tmp_path / "campaign",
            seed=11,
            trace=path,
            metrics=registry,
        )
        events = read_trace(path)
        kinds = [e.kind for e in events]
        assert kinds[0] == "campaign_start"
        assert kinds[-1] == "campaign_end"
        trials = [e for e in events if e.kind == "campaign_trial"]
        assert len(trials) == 1
        assert trials[0].attrs["status"] == "ok"
        end = events[-1]
        assert end.attrs["completed"] == 1
        assert end.attrs["quarantined"] == 0
        assert registry.value("campaign.trials.ok") == 1
        assert campaign.complete


class TestMixedTraceReport:
    """``report-trace`` over files mixing service and run events."""

    def _mixed_trace(self, path):
        from repro.obs import Tracer

        with Tracer(path) as tracer:
            tracer.event(
                "request",
                attrs={"outcome": "accepted", "status": 202},
            )
            tracer.event("queue_wait", attrs={"priority": 0}, dur=0.0)
            tracer.begin("service_run_start", attrs={"attempt": 1})
            tracer.begin("run_start", attrs={"algorithm": "emts5"})
            tracer.event(
                "generation",
                attrs={
                    "generation": 1,
                    "best": 2.0,
                    "mean": 2.0,
                    "evaluations": 4,
                },
            )
            tracer.end(
                "run_end",
                attrs={"makespan": 2.0, "generations": 1},
            )
            # the worker's acceptance verify lands after run_end,
            # parented under the still-open service_run span
            tracer.event("verify", attrs={"verified": 4})
            tracer.end("service_run_end", attrs={"state": "done"})
            tracer.event("drain", attrs={"queued": 0})
        return path

    def test_service_kinds_do_not_break_the_report(self, tmp_path):
        from repro.obs import render_trace_report

        report = render_trace_report(
            self._mixed_trace(tmp_path / "mixed.jsonl")
        )
        assert "emts5" in report
        assert "makespan 2 s after 1 generations" in report

    def test_broken_nesting_raises(self, tmp_path):
        import json as _json

        from repro.obs import render_trace_report

        path = self._mixed_trace(tmp_path / "broken.jsonl")
        with path.open("a", encoding="utf-8") as fh:
            fh.write(
                _json.dumps(
                    {
                        "v": 2,
                        "kind": "generation",
                        "span": 99,
                        "parent": 77,  # nobody ever emitted span 77
                        "t": 9.0,
                        "attrs": {"generation": 2},
                    }
                )
                + "\n"
            )
        with pytest.raises(TraceError, match="structurally broken"):
            render_trace_report(path)

    def test_orphan_parenting_to_null_raises(self, tmp_path):
        import json as _json

        from repro.obs import render_trace_report

        path = tmp_path / "orphan.jsonl"
        path.write_text(
            _json.dumps(
                {
                    "v": 2,
                    "kind": "verify",
                    "span": 1,
                    "parent": None,
                    "t": 0.0,
                    "attrs": {"verified": 3},
                }
            )
            + "\n"
        )
        with pytest.raises(TraceError, match="structurally broken"):
            render_trace_report(path)
