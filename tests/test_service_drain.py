"""Graceful drain: SIGTERM-style shutdown checkpoints in-flight jobs
and a restarted daemon resumes them bit-identically (PR 3 contract)."""

from __future__ import annotations

import asyncio
import json
import threading
import time

import pytest

from repro.core import emts5
from repro.graph import ptg_to_dict
from repro.mapping import schedule_to_dict
from repro.platform import by_name
from repro.service import SchedulingService, ServiceClient
from repro.timemodels import TimeTable
from repro.workloads import generate_fft

#: enough generations that the drain lands mid-run, cheap enough that
#: the full (interrupt + resume + offline reference) test stays fast
GENERATIONS = 150
SEED = 31


def make_doc():
    return {
        "ptg": ptg_to_dict(generate_fft(4, rng=7)),
        "platform": "chti",
        "model": "amdahl",
        "algorithm": "emts5",
        "seed": SEED,
        "generations": GENERATIONS,
    }


def start_service(spool) -> tuple[SchedulingService, threading.Thread]:
    service = SchedulingService(port=0, workers=1, spool=str(spool))
    ready = threading.Event()

    def run():
        async def main():
            await service.start()
            ready.set()
            await service._drained.wait()
            assert service._server is not None
            service._server.close()
            await service._server.wait_closed()

        asyncio.run(main())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert ready.wait(timeout=15), "service did not start"
    return service, thread


class TestDrainAndResume:
    def test_drain_checkpoints_and_restart_resumes_bit_identically(
        self, tmp_path
    ):
        spool = tmp_path / "spool"

        # -- phase 1: submit a long job, drain mid-run -----------------
        service1, thread1 = start_service(spool)
        client = ServiceClient(port=service1.bound_port, timeout=30.0)
        job_id = client.submit(make_doc())["job"]["id"]
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if client.get_job(job_id)["job"]["state"] == "running":
                break
            time.sleep(0.005)
        else:
            pytest.fail("job never started running")
        service1.request_drain()
        thread1.join(timeout=60)
        assert not thread1.is_alive(), "drain did not complete"

        job1 = service1.store.get(job_id)
        assert job1 is not None
        assert job1.state == "interrupted", (
            f"expected an interrupted job, got {job1.state!r} — "
            f"raise GENERATIONS if the run finished before the drain"
        )
        ckpt = spool / "checkpoints" / f"{job_id}.json"
        assert ckpt.exists(), "drain did not leave a resumable checkpoint"
        checkpoint_doc = json.loads(ckpt.read_text())
        assert checkpoint_doc["generation"] < GENERATIONS

        # the spool record survived with the full request
        record = json.loads(
            (spool / "jobs" / f"{job_id}.json").read_text()
        )
        assert record["state"] == "interrupted"
        assert record["request"]["seed"] == SEED

        # -- phase 2: a fresh daemon adopts the spool and resumes ------
        service2, thread2 = start_service(spool)
        try:
            client2 = ServiceClient(
                port=service2.bound_port, timeout=30.0
            )
            doc = client2.wait_for(job_id, timeout=120)
            assert doc["job"]["state"] == "done"
            assert doc["job"]["served_from"] == "resume"
            result = doc["result"]
            assert result["interrupted"] is False
            assert result["generations"] == GENERATIONS + 1
            assert not ckpt.exists(), (
                "checkpoint should be cleaned up after completion"
            )
        finally:
            service2.request_drain()
            thread2.join(timeout=60)

        # -- phase 3: bit-identical to one uninterrupted offline run ---
        ptg = generate_fft(4, rng=7)
        cluster = by_name("chti")
        from repro.cli import _make_model

        table = TimeTable.build(_make_model("amdahl"), ptg, cluster)
        offline = emts5(generations=GENERATIONS).schedule(
            ptg, cluster, table, rng=SEED
        )
        assert result["makespan"] == offline.makespan
        assert result["evaluations"] == offline.log.total_evaluations
        assert json.dumps(
            result["schedule"], sort_keys=True
        ) == json.dumps(
            schedule_to_dict(offline.schedule), sort_keys=True
        )

    def test_drain_rejects_new_submissions(self, tmp_path):
        service, thread = start_service(tmp_path / "spool")
        client = ServiceClient(port=service.bound_port, timeout=30.0)
        # a finished job keeps the daemon warm but idle
        client.schedule(make_doc() | {"generations": 1}, timeout=60)
        service.request_drain()
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline and not service.draining:
            time.sleep(0.01)
        from repro.service import ServiceUnavailable

        try:
            with pytest.raises(ServiceUnavailable):
                client.submit(make_doc() | {"seed": 999})
        except Exception:
            # the daemon may already have closed its socket, which is
            # also a correct refusal (surfaces as ServiceUnavailable)
            raise
        finally:
            thread.join(timeout=60)

    def test_spool_recovery_of_queued_jobs(self, tmp_path):
        """Jobs still queued (never started) also survive a restart."""
        spool = tmp_path / "spool"
        service1, thread1 = start_service(spool)
        client = ServiceClient(port=service1.bound_port, timeout=30.0)
        # worker=1 busy with a long job; a second job waits in queue
        running_id = client.submit(make_doc())["job"]["id"]
        queued_id = client.submit(make_doc() | {"seed": 77})["job"]["id"]
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if client.get_job(running_id)["job"]["state"] == "running":
                break
            time.sleep(0.005)
        service1.request_drain()
        thread1.join(timeout=60)

        service2, thread2 = start_service(spool)
        try:
            client2 = ServiceClient(
                port=service2.bound_port, timeout=30.0
            )
            done = client2.wait_for(queued_id, timeout=120)
            assert done["job"]["state"] == "done"
        finally:
            service2.request_drain()
            thread2.join(timeout=60)
