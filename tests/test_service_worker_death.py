"""Worker-thread death robustness in the scheduling service.

``_run_one`` already nets ordinary exceptions into a failed job; these
tests attack the layer *above* it: a worker thread dying from something
outside that net (``SystemExit``, ``KeyboardInterrupt``, resource
exhaustion).  The pool must requeue the in-flight job (bounded by
``max_job_attempts``), count the death, and respawn the thread so the
service keeps draining its queue.
"""

from __future__ import annotations

import threading

import pytest

from repro.graph import ptg_to_dict
from repro.service import worker as worker_mod
from repro.service.cache import ResultCache
from repro.service.jobs import JobStore
from repro.service.protocol import parse_request
from repro.service.queue import FairQueue
from repro.service.worker import WorkerPool
from repro.workloads import generate_fft

PTG_DOC = ptg_to_dict(generate_fft(4, rng=7))


def make_request(seed: int = 3):
    return parse_request(
        {
            "ptg": PTG_DOC,
            "platform": "chti",
            "model": "amdahl",
            "algorithm": "emts5",
            "seed": seed,
            "generations": 1,
        }
    )


class _DieThenSucceed:
    """run_request stand-in: raise ``exc_type`` for the first N calls."""

    def __init__(self, deaths: int, exc_type=SystemExit):
        self.deaths = deaths
        self.exc_type = exc_type
        self.calls = 0
        self.lock = threading.Lock()

    def __call__(
        self,
        job,
        warm,
        *,
        checkpoint_path=None,
        resume_from=None,
        tracer=None,
    ):
        with self.lock:
            self.calls += 1
            if self.calls <= self.deaths:
                raise self.exc_type(
                    f"injected worker death {self.calls}"
                )
        return {"makespan": 1.0, "interrupted": False}


def _pool(max_job_attempts: int = 3) -> WorkerPool:
    return WorkerPool(
        FairQueue(),
        JobStore(None),
        ResultCache(),
        workers=1,
        poll_interval=0.01,
        max_job_attempts=max_job_attempts,
    )


def _submit(pool: WorkerPool, seed: int = 3):
    job = pool.store.create(make_request(seed))
    pool.queue.put(
        job, tenant=job.request.tenant, priority=job.request.priority
    )
    return job


# only BaseException-level faults reach the guard; Exception-level
# faults (MemoryError, bugs in run_request) are _run_one's job to net
@pytest.mark.parametrize("exc_type", [SystemExit, KeyboardInterrupt])
def test_worker_death_requeues_and_job_completes(monkeypatch, exc_type):
    monkeypatch.setattr(
        worker_mod, "run_request", _DieThenSucceed(1, exc_type)
    )
    pool = _pool()
    job = _submit(pool)
    pool.start()
    try:
        assert job.done_event.wait(timeout=30), "job never finished"
        assert job.state == "done"
        assert job.attempts == 2  # died once, succeeded on the retry
        assert job.result["makespan"] == 1.0
        assert pool.metrics.counter("service.workers.died").value == 1
        assert pool.metrics.counter("service.jobs.requeued").value == 1
    finally:
        pool.stop(timeout=10)


def test_repeated_deaths_exhaust_attempts_and_fail(monkeypatch):
    monkeypatch.setattr(worker_mod, "run_request", _DieThenSucceed(10))
    pool = _pool(max_job_attempts=2)
    job = _submit(pool)
    pool.start()
    try:
        assert job.done_event.wait(timeout=30), "job never resolved"
        assert job.state == "failed"
        assert job.error["code"] == "worker-crashed"
        assert "attempt 2/2" in job.error["message"]
        assert job.attempts == 2
        assert pool.metrics.counter("service.workers.died").value == 2
        assert pool.metrics.counter("service.jobs.requeued").value == 1
        assert pool.metrics.counter("service.jobs.failed").value == 1
    finally:
        pool.stop(timeout=10)


def test_pool_keeps_serving_after_a_death(monkeypatch):
    """The respawned worker drains jobs submitted after the death."""
    monkeypatch.setattr(worker_mod, "run_request", _DieThenSucceed(1))
    pool = _pool()
    first = _submit(pool, seed=3)
    second = _submit(pool, seed=4)
    pool.start()
    try:
        assert first.done_event.wait(timeout=30)
        assert second.done_event.wait(timeout=30)
        assert first.state == "done"
        assert second.state == "done"
        assert pool.metrics.counter("service.workers.died").value == 1
    finally:
        pool.stop(timeout=10)


def test_death_during_drain_fails_without_respawn(monkeypatch):
    """A death after the queue closed fails the job (no requeue path)."""
    monkeypatch.setattr(worker_mod, "run_request", _DieThenSucceed(10))
    pool = _pool(max_job_attempts=3)
    job = _submit(pool)
    pool.start()
    try:
        # wait until the job is in flight, then close the queue so the
        # requeue attempt inside recovery cannot succeed
        deadline = threading.Event()
        for _ in range(3000):
            if job.attempts >= 1:
                break
            deadline.wait(0.01)
        pool.queue.close()
        assert job.done_event.wait(timeout=30), "job never resolved"
        assert job.state == "failed"
        assert job.error["code"] == "worker-crashed"
    finally:
        pool.stop(timeout=10)


def test_max_job_attempts_validation():
    with pytest.raises(ValueError, match="max_job_attempts"):
        _pool(max_job_attempts=0)
