"""Unit tests for EA individuals."""

import numpy as np
import pytest

from repro.ea import Individual


class TestIndividual:
    def test_genome_copied_and_readonly(self):
        g = np.array([1, 2, 3])
        ind = Individual(genome=g)
        g[0] = 99
        assert ind.genome[0] == 1
        with pytest.raises(ValueError):
            ind.genome[0] = 5

    def test_unevaluated_by_default(self):
        ind = Individual(genome=np.array([1]))
        assert not ind.evaluated
        with pytest.raises(ValueError, match="not been evaluated"):
            ind.evaluated_fitness()

    def test_fitness_coerced_to_float(self):
        ind = Individual(genome=np.array([1]), fitness=np.float64(2.5))
        assert isinstance(ind.fitness, float)
        assert ind.evaluated

    def test_with_genome_derivation(self):
        parent = Individual(
            genome=np.array([1, 2]), fitness=5.0, origin="seed:mcpa"
        )
        child = parent.with_genome(
            np.array([2, 2]), origin="mutation", generation=3
        )
        assert not child.evaluated
        assert child.origin == "mutation"
        assert child.generation == 3
        assert parent.fitness == 5.0  # untouched

    def test_dominates(self):
        a = Individual(genome=np.array([1]), fitness=1.0)
        b = Individual(genome=np.array([1]), fitness=2.0)
        assert a.dominates(b)
        assert not b.dominates(a)
        assert not a.dominates(a)

    def test_len(self):
        assert len(Individual(genome=np.arange(7))) == 7

    def test_repr_states(self):
        ind = Individual(genome=np.array([1]))
        assert "unevaluated" in repr(ind)
        ind.fitness = float("inf")
        assert "inf" in repr(ind)
        ind.fitness = 3.5
        assert "3.5" in repr(ind)
