"""RetryPolicy / RetryingServiceClient unit tests (no real server).

The resilient client is exercised against a scripted fake inner client
with injected ``sleep``/``clock``, so every schedule assertion is exact
and instant.  Wire-level behaviour is covered by the chaos-proxy tests.
"""

from __future__ import annotations

import pytest

from repro.exceptions import ServiceError
from repro.service import (
    JobTimeout,
    QueueFullError,
    RetryingServiceClient,
    RetryPolicy,
    ServiceClient,
    ServiceUnavailable,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.now += seconds


class ScriptedClient:
    """Inner client whose ``submit`` pops one scripted outcome per call."""

    def __init__(self, outcomes):
        self.outcomes = list(outcomes)
        self.calls = []

    def submit(self, doc, wait=None):
        self.calls.append(dict(doc))
        outcome = self.outcomes.pop(0)
        if isinstance(outcome, Exception):
            raise outcome
        return outcome

    def get_job(self, job_id):
        outcome = self.outcomes.pop(0)
        if isinstance(outcome, Exception):
            raise outcome
        return outcome

    def healthz(self):
        outcome = self.outcomes.pop(0)
        if isinstance(outcome, Exception):
            raise outcome
        return outcome


def make_client(outcomes, policy=None):
    clock = FakeClock()
    inner = ScriptedClient(outcomes)
    client = RetryingServiceClient(
        client=inner,
        policy=policy or RetryPolicy(seed=7),
        sleep=clock.sleep,
        clock=clock,
    )
    return client, inner, clock


OK = {"job": {"id": "job-1", "state": "done"}}


class TestRetryPolicy:
    def test_defaults_are_sane(self):
        p = RetryPolicy()
        assert p.max_attempts >= 2
        assert 0 < p.base <= p.cap

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base": -1.0},
            {"base": 3.0, "cap": 1.0},
            {"deadline": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_ledger_classifies_by_most_derived_type(self):
        p = RetryPolicy()
        assert p.retryable(ServiceUnavailable("down"))
        assert p.retryable(QueueFullError("full"))
        assert p.retryable(ConnectionResetError("rst"))
        assert not p.retryable(JobTimeout("slow"))
        # the BASE ServiceError (400/404/409 shapes) is terminal even
        # though two of its subclasses are retryable
        assert not p.retryable(ServiceError("bad", status=400))
        # unlisted exception types are never retried
        assert not p.retryable(ValueError("nope"))

    def test_retry_after_is_a_floor_capped_at_cap(self):
        import random

        p = RetryPolicy(base=0.01, cap=1.0, seed=1)
        rng = random.Random(1)
        assert p.next_delay(rng, 0.01, 0.5) >= 0.5
        assert p.next_delay(rng, 0.01, 99.0) == 1.0  # capped

    def test_retry_after_ignored_when_disabled(self):
        import random

        p = RetryPolicy(base=0.01, cap=1.0, honor_retry_after=False)
        delay = p.next_delay(random.Random(2), 0.01, 50.0)
        assert delay < 1.0


class TestRetryLoop:
    def test_transient_failures_then_success(self):
        client, inner, clock = make_client(
            [ServiceUnavailable("down"), QueueFullError("full"), OK]
        )
        doc = client.submit({"seed": 1})
        assert doc == OK
        assert len(inner.calls) == 3
        assert client.stats.retries == 2
        assert clock.now > 0  # it actually backed off

    def test_non_retryable_error_is_raised_immediately(self):
        client, inner, _ = make_client(
            [ServiceError("bad request", status=400), OK]
        )
        with pytest.raises(ServiceError) as err:
            client.submit({"seed": 1})
        assert err.value.status == 400
        assert len(inner.calls) == 1

    def test_attempts_exhausted_reraises_last_error(self):
        policy = RetryPolicy(max_attempts=3, seed=5)
        client, inner, _ = make_client(
            [ServiceUnavailable(f"down {i}") for i in range(5)],
            policy=policy,
        )
        with pytest.raises(ServiceUnavailable) as err:
            client.submit({"seed": 1})
        assert "down 2" in str(err.value)
        assert len(inner.calls) == 3

    def test_deadline_stops_retrying(self):
        policy = RetryPolicy(
            max_attempts=100, base=1.0, cap=1.0, deadline=2.5, seed=3
        )
        client, inner, clock = make_client(
            [ServiceUnavailable("down")] * 100, policy=policy
        )
        with pytest.raises(ServiceUnavailable):
            client.submit({"seed": 1})
        # every sleep is exactly 1s (base == cap): two fit under the
        # 2.5s deadline, the third would cross it
        assert len(inner.calls) == 3
        assert clock.now <= 2.5

    def test_server_retry_after_hint_floors_the_sleep(self):
        policy = RetryPolicy(base=0.01, cap=10.0, max_attempts=2, seed=1)
        client, _, clock = make_client(
            [QueueFullError("full", retry_after=5.0), OK], policy=policy
        )
        client.submit({"seed": 1})
        assert clock.now >= 5.0

    def test_seeded_schedules_are_reproducible(self):
        delays = []
        for _ in range(2):
            policy = RetryPolicy(max_attempts=4, seed=99)
            client, _, clock = make_client(
                [ServiceUnavailable("x")] * 3 + [OK], policy=policy
            )
            client.submit({})
            delays.append(clock.now)
        assert delays[0] == delays[1]

    def test_get_job_and_healthz_are_retried(self):
        client, _, _ = make_client(
            [ServiceUnavailable("x"), OK, ServiceUnavailable("x"), OK]
        )
        assert client.get_job("job-1") == OK
        assert client.healthz() == OK


class TestIdempotencyKeyInjection:
    def test_key_is_injected_and_stable_across_retries(self):
        client, inner, _ = make_client(
            [ServiceUnavailable("x"), ServiceUnavailable("x"), OK]
        )
        client.submit({"seed": 1})
        keys = {c["idempotency_key"] for c in inner.calls}
        assert len(keys) == 1  # every retry reuses the SAME key
        key = keys.pop()
        assert key.startswith("idem-") and len(key) > 10

    def test_fresh_submissions_get_fresh_keys(self):
        client, inner, _ = make_client([OK, OK])
        client.submit({"seed": 1})
        client.submit({"seed": 2})
        assert (
            inner.calls[0]["idempotency_key"]
            != inner.calls[1]["idempotency_key"]
        )

    def test_explicit_key_is_preserved(self):
        client, inner, _ = make_client([OK])
        client.submit({"seed": 1, "idempotency_key": "idem-mine"})
        assert inner.calls[0]["idempotency_key"] == "idem-mine"

    def test_caller_document_is_not_mutated(self):
        client, _, _ = make_client([OK])
        doc = {"seed": 1}
        client.submit(doc)
        assert "idempotency_key" not in doc

    def test_deduplicated_responses_are_counted(self):
        deduped = {
            "job": {"id": "job-1", "state": "done"},
            "deduplicated": True,
        }
        client, _, _ = make_client([deduped])
        client.submit({"seed": 1})
        assert client.stats.deduplicated == 1


class TestRetryAfterHeaderHardening:
    """Satellite: ``ServiceClient._retry_after`` never trusts the wire."""

    @pytest.mark.parametrize(
        "value",
        [
            "not-a-number",
            "",
            "-1",
            "-0.5",
            "nan",
            "inf",
            "-inf",
            "1e400",  # overflows to inf
            "10 seconds",
            "Wed, 21 Oct 2015 07:28:00 GMT",  # http-date form: no hint
        ],
    )
    def test_malformed_values_degrade_to_none(self, value):
        assert (
            ServiceClient._retry_after({"retry-after": value}) is None
        )

    def test_missing_header_is_none(self):
        assert ServiceClient._retry_after({}) is None

    @pytest.mark.parametrize(
        "value,expected", [("0", 0.0), ("1.5", 1.5), ("30", 30.0)]
    )
    def test_valid_values_parse(self, value, expected):
        assert (
            ServiceClient._retry_after({"retry-after": value}) == expected
        )
