"""Unit tests for schedule serialization."""

import json

import numpy as np
import pytest

from repro.exceptions import ScheduleError
from repro.graph import chain
from repro.mapping import (
    load_schedule,
    map_allocations,
    save_schedule,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.platform import Cluster
from repro.timemodels import AmdahlModel, TimeTable


@pytest.fixture
def scheduled():
    ptg = chain([1e9, 2e9, 1e9], name="io-chain")
    cluster = Cluster("c", num_processors=4, speed_gflops=1.0)
    table = TimeTable.build(AmdahlModel(), ptg, cluster)
    return ptg, map_allocations(ptg, table, np.array([1, 2, 4]))


class TestRoundTrip:
    def test_dict_roundtrip(self, scheduled):
        ptg, schedule = scheduled
        back = schedule_from_dict(schedule_to_dict(schedule), ptg)
        assert back.makespan == pytest.approx(schedule.makespan)
        assert np.allclose(back.start, schedule.start)
        assert all(
            np.array_equal(a, b)
            for a, b in zip(back.proc_sets, schedule.proc_sets)
        )
        assert back.cluster == schedule.cluster

    def test_file_roundtrip(self, scheduled, tmp_path):
        ptg, schedule = scheduled
        path = tmp_path / "s.json"
        save_schedule(schedule, path)
        back = load_schedule(path, ptg)
        assert back.makespan == pytest.approx(schedule.makespan)

    def test_matched_by_name_not_order(self, scheduled):
        ptg, schedule = scheduled
        doc = schedule_to_dict(schedule)
        doc["tasks"] = list(reversed(doc["tasks"]))
        back = schedule_from_dict(doc, ptg)
        assert np.allclose(back.start, schedule.start)


class TestErrors:
    def test_wrong_format(self, scheduled):
        ptg, _ = scheduled
        with pytest.raises(ScheduleError, match="format"):
            schedule_from_dict({"format": "nope"}, ptg)

    def test_wrong_version(self, scheduled):
        ptg, schedule = scheduled
        doc = schedule_to_dict(schedule)
        doc["version"] = 99
        with pytest.raises(ScheduleError, match="version"):
            schedule_from_dict(doc, ptg)

    def test_missing_task(self, scheduled):
        ptg, schedule = scheduled
        doc = schedule_to_dict(schedule)
        doc["tasks"] = doc["tasks"][:-1]
        with pytest.raises(ScheduleError, match="lacks placements"):
            schedule_from_dict(doc, ptg)

    def test_unknown_task(self, scheduled):
        ptg, schedule = scheduled
        doc = schedule_to_dict(schedule)
        doc["tasks"][0]["name"] = "phantom"
        with pytest.raises(ScheduleError):
            schedule_from_dict(doc, ptg)

    def test_corrupted_placement_caught_by_validation(self, scheduled):
        ptg, schedule = scheduled
        doc = schedule_to_dict(schedule)
        doc["tasks"][1]["start"] = 0.0  # violates precedence
        with pytest.raises(ScheduleError, match="precedence"):
            schedule_from_dict(doc, ptg)

    def test_validation_can_be_skipped(self, scheduled):
        ptg, schedule = scheduled
        doc = schedule_to_dict(schedule)
        doc["tasks"][1]["start"] = 0.0
        back = schedule_from_dict(doc, ptg, validate=False)
        with pytest.raises(ScheduleError):
            back.validate()

    def test_non_dict_document(self, scheduled):
        ptg, _ = scheduled
        with pytest.raises(ScheduleError, match="JSON object"):
            schedule_from_dict(["not", "a", "dict"], ptg)

    def test_malformed_placement(self, scheduled):
        ptg, schedule = scheduled
        doc = schedule_to_dict(schedule)
        del doc["tasks"][0]["finish"]
        with pytest.raises(ScheduleError, match="malformed"):
            schedule_from_dict(doc, ptg)
        doc = schedule_to_dict(schedule)
        doc["tasks"][0]["start"] = "soon"
        with pytest.raises(ScheduleError, match="malformed"):
            schedule_from_dict(doc, ptg)


class TestTamperedFiles:
    def test_truncated_file(self, scheduled, tmp_path):
        ptg, schedule = scheduled
        path = tmp_path / "s.json"
        save_schedule(schedule, path)
        text = path.read_text()
        path.write_text(text[: len(text) // 2])  # simulate torn write
        with pytest.raises(ScheduleError, match="not valid JSON"):
            load_schedule(path, ptg)

    def test_unreadable_file(self, scheduled, tmp_path):
        ptg, _ = scheduled
        with pytest.raises(ScheduleError, match="cannot read"):
            load_schedule(tmp_path / "missing.json", ptg)

    def test_tampered_makespan_field(self, scheduled, tmp_path):
        ptg, schedule = scheduled
        path = tmp_path / "s.json"
        save_schedule(schedule, path)
        doc = json.loads(path.read_text())
        doc["makespan"] = doc["makespan"] * 0.5  # looks better than it is
        path.write_text(json.dumps(doc))
        with pytest.raises(ScheduleError, match="makespan"):
            load_schedule(path, ptg)

    def test_tampered_start_field(self, scheduled, tmp_path):
        ptg, schedule = scheduled
        path = tmp_path / "s.json"
        save_schedule(schedule, path)
        doc = json.loads(path.read_text())
        doc["tasks"][1]["start"] = 0.0
        path.write_text(json.dumps(doc))
        with pytest.raises(ScheduleError, match="precedence"):
            load_schedule(path, ptg)

    def test_table_pins_durations(self, scheduled, tmp_path):
        ptg, schedule = scheduled
        cluster = schedule.cluster
        table = TimeTable.build(AmdahlModel(), ptg, cluster)
        path = tmp_path / "s.json"
        save_schedule(schedule, path)
        doc = json.loads(path.read_text())
        # shrink the last task's duration; structurally still valid, so
        # only the duration check (needs the table) can catch it
        doc["tasks"][-1]["finish"] = (
            doc["tasks"][-1]["start"]
            + (doc["tasks"][-1]["finish"] - doc["tasks"][-1]["start"])
            * 0.9
        )
        doc["makespan"] = max(t["finish"] for t in doc["tasks"])
        path.write_text(json.dumps(doc))
        load_schedule(path, ptg)  # structural check alone passes
        with pytest.raises(ScheduleError, match="predicts"):
            load_schedule(path, ptg, table=table)
