"""Unit tests for the Schedule data model and its invariant checks."""

import numpy as np
import pytest

from repro.exceptions import ScheduleError
from repro.graph import chain
from repro.mapping import Schedule
from repro.platform import Cluster


@pytest.fixture
def cluster():
    return Cluster("c", num_processors=3, speed_gflops=1.0)


@pytest.fixture
def valid_schedule(cluster):
    """chain of 2 tasks: t0 on P0 [0,1), t1 on P0+P1 [1,3)."""
    ptg = chain([1e9, 4e9], name="c2")
    return Schedule(
        ptg,
        cluster,
        start=np.array([0.0, 1.0]),
        finish=np.array([1.0, 3.0]),
        proc_sets=[np.array([0]), np.array([0, 1])],
    )


class TestBasics:
    def test_makespan(self, valid_schedule):
        assert valid_schedule.makespan == 3.0

    def test_allocations(self, valid_schedule):
        assert valid_schedule.allocations.tolist() == [1, 2]

    def test_utilization(self, valid_schedule):
        # busy area = 1*1 + 2*2 = 5 of 3*3 = 9
        assert valid_schedule.utilization == pytest.approx(5 / 9)

    def test_task_view(self, valid_schedule):
        st = valid_schedule.task(1)
        assert st.name == "t1"
        assert st.processors == (0, 1)
        assert st.duration == pytest.approx(2.0)
        assert st.allocation == 2

    def test_tasks_by_start(self, valid_schedule):
        names = [t.name for t in valid_schedule.tasks_by_start()]
        assert names == ["t0", "t1"]

    def test_shape_mismatch_rejected(self, cluster):
        ptg = chain([1e9], name="c1")
        with pytest.raises(ScheduleError, match="shape"):
            Schedule(
                ptg,
                cluster,
                start=np.zeros(2),
                finish=np.zeros(2),
                proc_sets=[np.array([0])] * 2,
            )

    def test_proc_set_count_mismatch(self, cluster):
        ptg = chain([1e9], name="c1")
        with pytest.raises(ScheduleError, match="processor sets"):
            Schedule(
                ptg,
                cluster,
                start=np.zeros(1),
                finish=np.ones(1),
                proc_sets=[],
            )


class TestValidation:
    def test_valid_passes(self, valid_schedule):
        valid_schedule.validate()

    def test_valid_with_times(self, valid_schedule):
        valid_schedule.validate(times=np.array([1.0, 2.0]))

    def test_wrong_duration_detected(self, valid_schedule):
        with pytest.raises(ScheduleError, match="duration"):
            valid_schedule.validate(times=np.array([1.0, 5.0]))

    def test_negative_start_detected(self, cluster):
        ptg = chain([1e9], name="c1")
        s = Schedule(
            ptg,
            cluster,
            start=np.array([-1.0]),
            finish=np.array([0.5]),
            proc_sets=[np.array([0])],
        )
        with pytest.raises(ScheduleError, match="negative"):
            s.validate()

    def test_finish_before_start_detected(self, cluster):
        ptg = chain([1e9], name="c1")
        s = Schedule(
            ptg,
            cluster,
            start=np.array([2.0]),
            finish=np.array([1.0]),
            proc_sets=[np.array([0])],
        )
        with pytest.raises(ScheduleError, match="before it starts"):
            s.validate()

    def test_precedence_violation_detected(self, cluster):
        ptg = chain([1e9, 1e9], name="c2")
        s = Schedule(
            ptg,
            cluster,
            start=np.array([0.0, 0.5]),  # t1 starts before t0 ends
            finish=np.array([1.0, 1.5]),
            proc_sets=[np.array([0]), np.array([1])],
        )
        with pytest.raises(ScheduleError, match="precedence"):
            s.validate()

    def test_double_booking_detected(self, cluster):
        from repro.graph import PTG, Task

        ptg = PTG(
            [Task("a", work=1e9), Task("b", work=1e9)], []
        )
        s = Schedule(
            ptg,
            cluster,
            start=np.array([0.0, 0.5]),
            finish=np.array([1.0, 1.5]),
            proc_sets=[np.array([0]), np.array([0])],  # overlap on P0
        )
        with pytest.raises(ScheduleError, match="double-booked"):
            s.validate()

    def test_empty_proc_set_detected(self, cluster):
        ptg = chain([1e9], name="c1")
        s = Schedule(
            ptg,
            cluster,
            start=np.array([0.0]),
            finish=np.array([1.0]),
            proc_sets=[np.array([], dtype=np.int64)],
        )
        with pytest.raises(ScheduleError, match="no processors"):
            s.validate()

    def test_duplicate_processor_detected(self, cluster):
        ptg = chain([1e9], name="c1")
        s = Schedule(
            ptg,
            cluster,
            start=np.array([0.0]),
            finish=np.array([1.0]),
            proc_sets=[np.array([1, 1])],
        )
        with pytest.raises(ScheduleError, match="twice"):
            s.validate()

    def test_unknown_processor_detected(self, cluster):
        ptg = chain([1e9], name="c1")
        s = Schedule(
            ptg,
            cluster,
            start=np.array([0.0]),
            finish=np.array([1.0]),
            proc_sets=[np.array([7])],
        )
        with pytest.raises(ScheduleError, match="unknown processor"):
            s.validate()

    def test_back_to_back_on_same_processor_ok(self, cluster):
        ptg = chain([1e9, 1e9], name="c2")
        s = Schedule(
            ptg,
            cluster,
            start=np.array([0.0, 1.0]),
            finish=np.array([1.0, 2.0]),
            proc_sets=[np.array([0]), np.array([0])],
        )
        s.validate()  # touching intervals are fine
