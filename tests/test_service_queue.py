"""Priority ordering, tenant fairness and backpressure of the FairQueue."""

from __future__ import annotations

import threading

import pytest

from repro.exceptions import ServiceError
from repro.service import FairQueue, QueueFull


def drain(q: FairQueue) -> list:
    out = []
    while True:
        item = q.get(timeout=0)
        if item is None:
            return out
        out.append(item)


class TestOrdering:
    def test_fifo_within_tenant(self):
        q = FairQueue()
        for i in range(5):
            q.put(i, tenant="t")
        assert drain(q) == [0, 1, 2, 3, 4]

    def test_priority_first(self):
        q = FairQueue()
        q.put("low", tenant="t", priority=0)
        q.put("high", tenant="t", priority=5)
        q.put("mid", tenant="t", priority=2)
        assert drain(q) == ["high", "mid", "low"]

    def test_round_robin_across_tenants(self):
        q = FairQueue()
        # alice floods before bob submits one job
        for i in range(3):
            q.put(f"a{i}", tenant="alice")
        q.put("b0", tenant="bob")
        order = drain(q)
        # bob's job must not wait behind the whole alice backlog
        assert order.index("b0") < order.index("a1")
        assert [x for x in order if x.startswith("a")] == [
            "a0", "a1", "a2",
        ]

    def test_priority_beats_fairness(self):
        q = FairQueue()
        q.put("a-low", tenant="alice", priority=0)
        q.put("b-high", tenant="bob", priority=1)
        assert drain(q) == ["b-high", "a-low"]


class TestBackpressure:
    def test_global_depth_limit(self):
        q = FairQueue(max_depth=2, tenant_quota=10)
        q.put(1, tenant="a")
        q.put(2, tenant="b")
        with pytest.raises(QueueFull) as err:
            q.put(3, tenant="c")
        assert err.value.status == 429
        assert err.value.retry_after is not None

    def test_tenant_quota(self):
        q = FairQueue(max_depth=100, tenant_quota=2)
        q.put(1, tenant="greedy")
        q.put(2, tenant="greedy")
        with pytest.raises(QueueFull):
            q.put(3, tenant="greedy")
        # other tenants are unaffected
        q.put(4, tenant="polite")

    def test_quota_releases_on_get(self):
        q = FairQueue(max_depth=100, tenant_quota=1)
        q.put(1, tenant="t")
        with pytest.raises(QueueFull):
            q.put(2, tenant="t")
        assert q.get(timeout=0) == 1
        q.put(2, tenant="t")

    def test_closed_queue_rejects_with_503(self):
        q = FairQueue()
        q.close()
        with pytest.raises(ServiceError) as err:
            q.put(1, tenant="t")
        assert err.value.status == 503
        assert err.value.code == "draining"

    def test_depth_accounting(self):
        q = FairQueue()
        assert q.depth == 0
        q.put(1, tenant="a", priority=1)
        q.put(2, tenant="b")
        assert q.depth == 2
        assert q.tenant_depth("a") == 1
        q.get(timeout=0)
        assert q.depth == 1


class TestBlockingGet:
    def test_timeout_returns_none(self):
        q = FairQueue()
        assert q.get(timeout=0.01) is None

    def test_get_wakes_on_put(self):
        q = FairQueue()
        got = []
        t = threading.Thread(
            target=lambda: got.append(q.get(timeout=5.0))
        )
        t.start()
        q.put("x", tenant="t")
        t.join(timeout=5.0)
        assert got == ["x"]

    def test_drain_remaining(self):
        q = FairQueue()
        for i in range(4):
            q.put(i, tenant="t")
        assert sorted(q.drain_remaining()) == [0, 1, 2, 3]
        assert q.depth == 0


class TestQueueMetrics:
    """Sampled depth gauge + per-lane wait histograms."""

    def _metered_queue(self, **kwargs):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        return (
            FairQueue(
                metrics=registry,
                metrics_lock=threading.Lock(),
                **kwargs,
            ),
            registry,
        )

    def test_depth_gauge_tracks_put_and_get(self):
        q, registry = self._metered_queue()
        for i in range(3):
            q.put(i, tenant="t")
        assert (
            registry.snapshot()["service.queue.depth"]["value"] == 3
        )
        q.get(timeout=0)
        assert (
            registry.snapshot()["service.queue.depth"]["value"] == 2
        )

    def test_wait_histogram_per_priority_lane(self):
        q, registry = self._metered_queue()
        q.put("a", tenant="t", priority=0)
        q.put("b", tenant="t", priority=5)
        while q.get(timeout=0) is not None:
            pass
        snapshot = registry.snapshot()
        for lane in ("p0", "p5"):
            hist = snapshot[f"service.queue.wait_seconds.{lane}"]
            assert hist["kind"] == "histogram"
            assert hist["total"] == 1

    def test_rejected_puts_leave_no_sample(self):
        q, registry = self._metered_queue(max_depth=1)
        q.put("a", tenant="t")
        with pytest.raises(QueueFull):
            q.put("b", tenant="t")
        assert (
            registry.snapshot()["service.queue.depth"]["value"] == 1
        )

    def test_queue_without_registry_records_nothing(self):
        q = FairQueue()
        q.put("a", tenant="t")
        assert q.get(timeout=0) == "a"
