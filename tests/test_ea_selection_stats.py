"""Unit tests for survivor selection, statistics, and termination."""

import time

import numpy as np
import pytest

from repro.ea import (
    AnyOf,
    EvolutionLog,
    GenerationLimit,
    GenerationStats,
    Individual,
    StagnationLimit,
    TargetFitness,
    TimeBudget,
    best_of,
    comma_selection,
    plus_selection,
    population_diversity,
)
from repro.exceptions import ConfigurationError


def make(fitness, origin="x"):
    return Individual(
        genome=np.array([1]), fitness=fitness, origin=origin
    )


class TestPlusSelection:
    def test_keeps_best_of_union(self):
        parents = [make(5.0, "p"), make(3.0, "p")]
        offspring = [make(4.0, "o"), make(1.0, "o")]
        survivors = plus_selection(parents, offspring, 2)
        assert [s.fitness for s in survivors] == [1.0, 3.0]

    def test_elitism_preserves_best_parent(self):
        parents = [make(1.0, "p")]
        offspring = [make(9.0, "o")] * 3
        survivors = plus_selection(parents, offspring, 1)
        assert survivors[0].origin == "p"

    def test_stable_tie_break_prefers_parents(self):
        parents = [make(2.0, "p")]
        offspring = [make(2.0, "o")]
        survivors = plus_selection(parents, offspring, 1)
        assert survivors[0].origin == "p"

    def test_pool_too_small(self):
        with pytest.raises(ConfigurationError):
            plus_selection([make(1.0)], [], 5)

    def test_invalid_mu(self):
        with pytest.raises(ConfigurationError):
            plus_selection([make(1.0)], [], 0)


class TestCommaSelection:
    def test_ignores_parents(self):
        parents = [make(0.0, "p")]  # better than every child
        offspring = [make(5.0, "o"), make(7.0, "o")]
        survivors = comma_selection(parents, offspring, 1)
        assert survivors[0].fitness == 5.0

    def test_needs_enough_offspring(self):
        with pytest.raises(ConfigurationError):
            comma_selection([], [make(1.0)], 2)


class TestBestOf:
    def test_best(self):
        assert best_of([make(3.0), make(1.0), make(2.0)]).fitness == 1.0

    def test_empty(self):
        with pytest.raises(ConfigurationError):
            best_of([])


class TestStats:
    def test_from_population(self):
        pop = [make(1.0), make(3.0)]
        s = GenerationStats.from_population(2, pop, 10, 0.5)
        assert s.best == 1.0
        assert s.worst == 3.0
        assert s.mean == 2.0
        assert s.evaluations == 10

    def test_inf_fitness_excluded_from_mean(self):
        pop = [make(1.0), make(float("inf"))]
        s = GenerationStats.from_population(0, pop, 2, 0.0)
        assert s.mean == 1.0  # rejected individuals don't skew the mean
        assert s.worst == float("inf")

    def test_log_aggregates(self):
        log = EvolutionLog()
        log.append(GenerationStats(0, 5.0, 5.0, 0.0, 5.0, 3, 0.1))
        log.append(GenerationStats(1, 4.0, 4.5, 0.5, 5.0, 25, 0.2))
        assert log.generations == 2
        assert log.total_evaluations == 28
        assert log.total_seconds == pytest.approx(0.3)
        assert log.best_trajectory().tolist() == [5.0, 4.0]
        assert log.is_monotone()

    def test_log_detects_regression(self):
        log = EvolutionLog()
        log.append(GenerationStats(0, 5.0, 5.0, 0.0, 5.0, 1, 0.0))
        log.append(GenerationStats(1, 6.0, 6.0, 0.0, 6.0, 1, 0.0))
        assert not log.is_monotone()

    def test_log_rows_and_str(self):
        log = EvolutionLog()
        log.append(GenerationStats(0, 5.0, 5.0, 0.0, 5.0, 1, 0.0))
        rows = log.to_rows()
        assert rows[0]["generation"] == 0
        assert "gen" in str(log)


class TestDiversity:
    def _ind(self, genome):
        return Individual(genome=np.asarray(genome), fitness=1.0)

    def test_identical_population_zero(self):
        pop = [self._ind([3, 3, 3])] * 4
        assert population_diversity(pop) == 0.0

    def test_single_individual_zero(self):
        assert population_diversity([self._ind([1, 2])]) == 0.0

    def test_spread_measured(self):
        pop = [self._ind([1, 1]), self._ind([3, 1])]
        # position 0: std of {1,3} = 1; position 1: 0 -> mean 0.5
        assert population_diversity(pop) == pytest.approx(0.5)

    def test_more_spread_more_diversity(self):
        tight = [self._ind([5, 5]), self._ind([6, 6])]
        wide = [self._ind([1, 1]), self._ind([9, 9])]
        assert population_diversity(wide) > population_diversity(
            tight
        )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            population_diversity([])


class TestTermination:
    def _log_with_gens(self, n):
        log = EvolutionLog()
        for i in range(n + 1):  # entry 0 = initial population
            log.append(
                GenerationStats(i, 10.0 - i, 10.0, 0.0, 10.0, 1, 0.0)
            )
        return log

    def test_generation_limit(self):
        crit = GenerationLimit(3)
        assert not crit.should_stop(self._log_with_gens(2))
        assert crit.should_stop(self._log_with_gens(3))

    def test_generation_limit_invalid(self):
        with pytest.raises(ConfigurationError):
            GenerationLimit(0)

    def test_time_budget(self):
        crit = TimeBudget(0.01)
        crit.start()
        assert not crit.should_stop(self._log_with_gens(0))
        time.sleep(0.02)
        assert crit.should_stop(self._log_with_gens(0))

    def test_time_budget_invalid(self):
        with pytest.raises(ConfigurationError):
            TimeBudget(0.0)

    def test_target_fitness(self):
        crit = TargetFitness(8.0)
        assert not crit.should_stop(self._log_with_gens(0))  # best 10
        assert crit.should_stop(self._log_with_gens(2))  # best 8

    def test_target_fitness_empty_log(self):
        assert not TargetFitness(1.0).should_stop(EvolutionLog())

    def test_stagnation(self):
        log = EvolutionLog()
        for i, best in enumerate([10.0, 9.0, 9.0, 9.0]):
            log.append(
                GenerationStats(i, best, best, 0.0, best, 1, 0.0)
            )
        assert StagnationLimit(patience=2).should_stop(log)
        assert not StagnationLimit(patience=3).should_stop(log)

    def test_any_of(self):
        crit = AnyOf(GenerationLimit(100), TargetFitness(9.5))
        crit.start()
        assert crit.should_stop(self._log_with_gens(1))  # best 9 <= 9.5

    def test_any_of_empty(self):
        with pytest.raises(ConfigurationError):
            AnyOf()
