"""Tests for the parameter-sensitivity study."""

import pytest

from repro.experiments import run_sensitivity_study
from repro.experiments.sensitivity import (
    DEFAULT_GRIDS,
    PAPER_VALUES,
    _config_with,
)
from repro.platform import Cluster
from repro.timemodels import SyntheticModel
from repro.workloads import generate_fft


@pytest.fixture(scope="module")
def study():
    ptgs = [generate_fft(4, rng=s) for s in range(2)]
    cluster = Cluster("c", num_processors=24, speed_gflops=3.0)
    grids = {"fm": (0.1, 0.33, 0.8), "delta": (0.5, 0.9)}
    return run_sensitivity_study(
        ptgs, cluster, SyntheticModel(), grids=grids, seed=3
    )


class TestConfigBuilder:
    def test_sigma_sets_both(self):
        c = _config_with("sigma", 9.0)
        assert c.sigma_stretch == 9.0
        assert c.sigma_shrink == 9.0

    def test_plain_parameter(self):
        assert _config_with("fm", 0.5).fm == 0.5

    def test_paper_values_in_default_grids(self):
        for parameter, value in PAPER_VALUES.items():
            assert value in DEFAULT_GRIDS[parameter]


class TestStudy:
    def test_profiles_cover_grids(self, study):
        assert set(study.profiles) == {"fm", "delta"}
        assert set(study.profile("fm")) == {0.1, 0.33, 0.8}

    def test_values_positive(self, study):
        for profile in study.profiles.values():
            for rel in profile.values():
                assert rel > 0

    def test_paper_value_near_one(self, study):
        """The paper-default cell re-runs the default config with the
        same seeds, so its relative value is exactly 1."""
        assert study.profile("fm")[0.33] == pytest.approx(1.0)

    def test_worst_degradation(self, study):
        assert study.worst_degradation("fm") >= 1.0 - 1e-9

    def test_flat_within(self, study):
        assert study.flat_within("fm", slack=10.0)  # trivially true
        assert not study.flat_within(
            "fm", slack=-0.5
        )  # trivially false

    def test_render(self, study):
        out = study.render()
        assert "(paper)" in out
        assert "fm" in out and "delta" in out
