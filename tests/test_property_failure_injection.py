"""Failure-injection property tests (hypothesis).

Start from a provably valid schedule, inject one random corruption, and
require the independent checkers (Schedule.validate and the
discrete-event simulator) to reject it.  This guards the guards: a
validator that silently accepts broken schedules would let scheduler
bugs masquerade as good results.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.exceptions import ScheduleError, SimulationError
from repro.graph import PTG, Task
from repro.mapping import Schedule, map_allocations
from repro.platform import Cluster
from repro.simulator import simulate
from repro.timemodels import AmdahlModel, TimeTable


@st.composite
def valid_schedules(draw):
    n = draw(st.integers(min_value=2, max_value=8))
    tasks = [
        Task(
            f"t{i}",
            work=draw(st.floats(min_value=1e8, max_value=1e10)),
            alpha=draw(st.floats(min_value=0.0, max_value=0.3)),
        )
        for i in range(n)
    ]
    edges = []
    for u in range(n):
        for v in range(u + 1, n):
            if draw(st.booleans()):
                edges.append((u, v))
    ptg = PTG(tasks, edges)
    P = draw(st.integers(min_value=2, max_value=6))
    cluster = Cluster("f", num_processors=P, speed_gflops=1.0)
    table = TimeTable.build(AmdahlModel(), ptg, cluster)
    alloc = np.array(
        [draw(st.integers(min_value=1, max_value=P)) for _ in range(n)],
        dtype=np.int64,
    )
    return ptg, table, map_allocations(ptg, table, alloc), draw(
        st.integers(min_value=0, max_value=n - 1)
    )


def _rebuild(schedule, start=None, finish=None, proc_sets=None):
    return Schedule(
        schedule.ptg,
        schedule.cluster,
        schedule.start if start is None else start,
        schedule.finish if finish is None else finish,
        schedule.proc_sets if proc_sets is None else proc_sets,
    )


@given(valid_schedules())
@settings(max_examples=40, deadline=None)
def test_uncorrupted_schedule_passes_both_checkers(case):
    ptg, table, schedule, _ = case
    schedule.validate(times=table.times_for(schedule.allocations))
    simulate(schedule, table)


@given(valid_schedules(), st.floats(min_value=0.05, max_value=0.95))
@settings(max_examples=40, deadline=None)
def test_shifting_a_task_earlier_is_caught(case, fraction):
    """Pulling one non-source task earlier must violate precedence or
    processor exclusivity somewhere."""
    ptg, table, schedule, victim = case
    assume(ptg.predecessors(victim))  # needs a predecessor to violate
    assume(schedule.start[victim] > 0)
    start = schedule.start.copy()
    finish = schedule.finish.copy()
    duration = finish[victim] - start[victim]
    start[victim] *= fraction
    finish[victim] = start[victim] + duration
    # the shifted task now starts before at least one predecessor ends
    pred_end = max(
        schedule.finish[u] for u in ptg.predecessors(victim)
    )
    assume(start[victim] < pred_end - 1e-9)
    corrupted = _rebuild(schedule, start=start, finish=finish)
    with pytest.raises(ScheduleError):
        corrupted.validate()
    with pytest.raises(SimulationError):
        simulate(corrupted)


@given(valid_schedules())
@settings(max_examples=40, deadline=None)
def test_stealing_a_busy_processor_is_caught(case):
    """Reassigning a task onto a processor that is busy at its start
    time must be rejected."""
    ptg, table, schedule, victim = case
    # find another task overlapping the victim in time
    overlapping = None
    for v in range(ptg.num_tasks):
        if v == victim:
            continue
        if (
            schedule.start[v] < schedule.finish[victim] - 1e-9
            and schedule.finish[v] > schedule.start[victim] + 1e-9
        ):
            overlapping = v
            break
    assume(overlapping is not None)
    stolen = int(schedule.proc_sets[overlapping][0])
    assume(stolen not in set(int(p) for p in schedule.proc_sets[victim]))
    proc_sets = [ps.copy() for ps in schedule.proc_sets]
    proc_sets[victim] = np.concatenate(
        [proc_sets[victim][:-1], np.array([stolen])]
    )
    # keep the set duplicate-free
    assume(np.unique(proc_sets[victim]).size == proc_sets[victim].size)
    corrupted = _rebuild(schedule, proc_sets=proc_sets)
    with pytest.raises((ScheduleError, SimulationError)):
        corrupted.validate()
        simulate(corrupted)


@given(valid_schedules(), st.floats(min_value=1.5, max_value=4.0))
@settings(max_examples=40, deadline=None)
def test_wrong_duration_is_caught(case, stretch):
    """A task whose recorded duration disagrees with the time table is
    rejected when checking against the table."""
    ptg, table, schedule, victim = case
    finish = schedule.finish.copy()
    finish[victim] = schedule.start[victim] + stretch * (
        schedule.finish[victim] - schedule.start[victim]
    )
    corrupted = _rebuild(schedule, finish=finish)
    with pytest.raises((ScheduleError, SimulationError)):
        corrupted.validate(
            times=table.times_for(schedule.allocations)
        )
        simulate(corrupted, table)
