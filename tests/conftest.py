"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import PTG, PTGBuilder, Task, chain, fork_join
from repro.platform import Cluster, chti, grelon
from repro.timemodels import AmdahlModel, SyntheticModel, TimeTable
from repro.workloads import DaggenParams, generate_daggen, generate_fft


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def diamond_ptg() -> PTG:
    """A 4-node diamond: a -> {b, c} -> d, with distinct works."""
    b = PTGBuilder("diamond")
    a = b.add_task("a", work=1e9, alpha=0.1)
    t_b = b.add_task("b", work=2e9, alpha=0.05)
    t_c = b.add_task("c", work=4e9, alpha=0.2)
    d = b.add_task("d", work=1e9, alpha=0.0)
    b.add_edges([(a, t_b), (a, t_c), (t_b, d), (t_c, d)])
    return b.build()


@pytest.fixture
def chain_ptg() -> PTG:
    """A 3-task chain."""
    return chain([1e9, 2e9, 3e9], name="chain3")


@pytest.fixture
def fork_join_ptg() -> PTG:
    """Head -> 6 parallel branches -> tail."""
    return fork_join([1e9] * 6, head_work=1e8, tail_work=1e8)


@pytest.fixture
def single_task_ptg() -> PTG:
    """Degenerate single-node PTG (edge cases)."""
    return PTG([Task("only", work=4.3e9)], [], name="single")


@pytest.fixture
def fft8_ptg() -> PTG:
    """An FFT PTG with 39 tasks (fixed seed)."""
    return generate_fft(8, rng=777)


@pytest.fixture
def irregular_ptg() -> PTG:
    """A mid-size irregular random PTG (fixed seed)."""
    return generate_daggen(
        DaggenParams(
            num_tasks=40, width=0.5, regularity=0.2, density=0.5, jump=2
        ),
        rng=778,
    )


@pytest.fixture
def small_cluster() -> Cluster:
    """A tiny 4-processor cluster for hand-checkable schedules."""
    return Cluster(name="tiny", num_processors=4, speed_gflops=1.0)


@pytest.fixture
def chti_cluster() -> Cluster:
    """The paper's Chti platform (20 x 4.3 GFLOPS)."""
    return chti()


@pytest.fixture
def grelon_cluster() -> Cluster:
    """The paper's Grelon platform (120 x 3.1 GFLOPS)."""
    return grelon()


@pytest.fixture
def amdahl_table(diamond_ptg, chti_cluster) -> TimeTable:
    """Model 1 time table for the diamond on Chti."""
    return TimeTable.build(AmdahlModel(), diamond_ptg, chti_cluster)


@pytest.fixture
def synthetic_table(fft8_ptg, grelon_cluster) -> TimeTable:
    """Model 2 time table for the FFT-8 PTG on Grelon."""
    return TimeTable.build(SyntheticModel(), fft8_ptg, grelon_cluster)
