"""Property suite: population-at-once batches are bit-identical to
single-genome calls.

Randomized sweep over (graph, platform, lambda) triples — 216 cases,
each comparing ``evaluate_batch`` on a stacked block against one
``evaluate`` call per genome, on both the compiled kernel and the numpy
fallback, with and without a rejection bound.  The batch entry point is
a pure execution optimization; any single-ULP divergence here is a bug.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro._rng import spawn
from repro.core.evaluator import MemoizedEvaluator, SerialEvaluator
from repro.mapping.kernel import kernel_for
from repro.platform import Cluster
from repro.timemodels import SyntheticModel, TimeTable
from repro.workloads import (
    DaggenParams,
    generate_fft,
    generate_strassen,
    generate_daggen,
)

#: (graph-kind, platform-size) grid; 3 seeds x 3 lambdas each = 216
#: random batch-vs-single cases per backend run of this module
GRAPHS = ["fft", "strassen", "daggen-sparse", "daggen-dense"]
PLATFORMS = [3, 17, 64]
SEEDS = [1, 2, 3]
LAMBDAS = [1, 7, 30]


def _graph(kind: str, seed: int):
    if kind == "fft":
        return generate_fft(4, rng=seed)
    if kind == "strassen":
        return generate_strassen(rng=seed)
    density = 0.2 if kind == "daggen-sparse" else 0.7
    return generate_daggen(
        DaggenParams(
            num_tasks=40,
            width=0.5,
            regularity=0.3,
            density=density,
            jump=2,
        ),
        rng=seed,
    )


def _cases():
    for kind in GRAPHS:
        for procs in PLATFORMS:
            for seed in SEEDS:
                yield kind, procs, seed


@pytest.mark.parametrize(
    "kind,procs,seed",
    list(_cases()),
    ids=[f"{k}-p{p}-s{s}" for k, p, s in _cases()],
)
@pytest.mark.parametrize("backend", ["c", "numpy"])
def test_batch_matches_single_calls(kind, procs, seed, backend):
    ptg = _graph(kind, seed)
    cluster = Cluster(
        name=f"rand-{procs}", num_processors=procs, speed_gflops=3.2
    )
    table = TimeTable.build(SyntheticModel(), ptg, cluster)
    if backend == "numpy":
        # strip the native library from this table's kernel: the numpy
        # batch path must stay bit-identical too
        kernel_for(table)._c = None
    elif kernel_for(table).engine != "c":
        pytest.skip("compiled kernel unavailable")
    rng = spawn(20110926, "prop-batch", f"{kind}-{procs}-{seed}")
    with SerialEvaluator(ptg, table) as ev:
        for lam in LAMBDAS:
            block = rng.integers(
                1, procs + 1, size=(lam, ptg.num_tasks), dtype=np.int64
            )
            singles = [ev.evaluate([g])[0] for g in block]
            assert ev.evaluate_batch(block) == singles
            # bounded evaluation: rejection must batch identically
            finite = [v for v in singles if v != float("inf")]
            if finite:
                bound = sorted(finite)[len(finite) // 2]
                bounded_singles = [
                    ev.evaluate([g], abort_above=bound)[0]
                    for g in block
                ]
                assert (
                    ev.evaluate_batch(block, abort_above=bound)
                    == bounded_singles
                )


def test_memoized_block_path_matches_inner(tmp_path):
    """The memoized batch path (block keys hashed once) returns exactly
    what the inner evaluator would, and accounts hits/misses."""
    ptg = generate_strassen(rng=11)
    cluster = Cluster(name="m", num_processors=9, speed_gflops=3.2)
    table = TimeTable.build(SyntheticModel(), ptg, cluster)
    rng = spawn(20110926, "prop-batch", "memo")
    block = rng.integers(
        1, 10, size=(20, ptg.num_tasks), dtype=np.int64
    )
    # duplicate some rows inside the block and repeat the whole block
    block[5] = block[0]
    block[13] = block[2]
    with SerialEvaluator(ptg, table) as plain:
        expected = plain.evaluate_batch(block)
    memo = MemoizedEvaluator(SerialEvaluator(ptg, table))
    try:
        first = memo.evaluate_batch(block)
        second = memo.evaluate_batch(block)
        assert first == expected
        assert second == expected
        # 18 unique rows: 2 in-batch duplicates hit on the first pass,
        # all 20 hit on the second
        assert memo.stats.cache_misses == 18
        assert memo.stats.cache_hits == 22
        assert memo.stats.evaluations == 40
        assert memo.inner.stats.mapper_calls == 18
    finally:
        memo.close()
