"""Unit tests for the discrete-event schedule simulator."""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.graph import chain
from repro.mapping import Schedule, map_allocations
from repro.platform import Cluster
from repro.simulator import (
    SimulationTrace,
    TaskFinished,
    TaskStarted,
    simulate,
)
from repro.timemodels import AmdahlModel, SyntheticModel, TimeTable


@pytest.fixture
def cluster():
    return Cluster("c", num_processors=4, speed_gflops=1.0)


def make_schedule(ptg, cluster, start, finish, proc_sets):
    return Schedule(
        ptg,
        cluster,
        np.asarray(start, dtype=float),
        np.asarray(finish, dtype=float),
        [np.asarray(p) for p in proc_sets],
    )


class TestSimulateValid:
    def test_chain(self, cluster):
        ptg = chain([1e9, 2e9], name="c2")
        s = make_schedule(
            ptg, cluster, [0, 1], [1, 3], [[0], [0, 1]]
        )
        result = simulate(s)
        assert result.makespan == pytest.approx(3.0)
        assert result.trace.num_tasks_completed == 2

    def test_trace_event_order(self, cluster):
        ptg = chain([1e9, 1e9], name="c2")
        s = make_schedule(ptg, cluster, [0, 1], [1, 2], [[0], [1]])
        events = simulate(s).trace.events
        kinds = [type(e).__name__ for e in events]
        # t0 starts, t0 finishes, t1 starts, t1 finishes
        assert kinds == [
            "TaskStarted",
            "TaskFinished",
            "TaskStarted",
            "TaskFinished",
        ]

    def test_duration_check_against_table(self, cluster):
        ptg = chain([1e9, 2e9], name="c2")
        table = TimeTable.build(AmdahlModel(), ptg, cluster)
        sched = map_allocations(
            ptg, table, np.array([1, 2], dtype=np.int64)
        )
        simulate(sched, table)  # must not raise

    def test_mapped_schedules_always_simulate(
        self, irregular_ptg, rng
    ):
        cluster = Cluster("c", num_processors=8, speed_gflops=2.0)
        table = TimeTable.build(
            SyntheticModel(), irregular_ptg, cluster
        )
        for _ in range(5):
            alloc = rng.integers(
                1, 9, size=irregular_ptg.num_tasks, dtype=np.int64
            )
            sched = map_allocations(irregular_ptg, table, alloc)
            result = simulate(sched, table)
            assert result.makespan == pytest.approx(sched.makespan)


class TestSimulateDetectsViolations:
    def test_precedence_violation(self, cluster):
        ptg = chain([1e9, 1e9], name="c2")
        s = make_schedule(
            ptg, cluster, [0, 0.5], [1, 1.5], [[0], [1]]
        )
        with pytest.raises(SimulationError, match="before predecessor"):
            simulate(s)

    def test_busy_processor(self, cluster):
        from repro.graph import PTG, Task

        ptg = PTG(
            [Task("a", work=1e9), Task("b", work=1e9)], []
        )
        s = make_schedule(
            ptg, cluster, [0, 0.5], [1, 1.5], [[0], [0]]
        )
        with pytest.raises(SimulationError, match="busy processor"):
            simulate(s)

    def test_duration_mismatch_with_table(self, cluster):
        ptg = chain([1e9], name="c1")
        table = TimeTable.build(AmdahlModel(), ptg, cluster)
        s = make_schedule(ptg, cluster, [0], [5.0], [[0]])  # T(1)=1
        with pytest.raises(SimulationError, match="disagrees"):
            simulate(s, table)

    def test_back_to_back_is_fine(self, cluster):
        ptg = chain([1e9, 1e9], name="c2")
        s = make_schedule(ptg, cluster, [0, 1], [1, 2], [[0], [0]])
        simulate(s)  # release at t=1 happens before the start at t=1


class TestTrace:
    def test_busy_time(self, cluster):
        ptg = chain([1e9, 2e9], name="c2")
        s = make_schedule(
            ptg, cluster, [0, 1], [1, 3], [[0], [0, 1]]
        )
        busy = simulate(s).trace.busy_time_per_processor()
        assert busy.tolist() == [3.0, 2.0, 0.0, 0.0]

    def test_utilization(self, cluster):
        ptg = chain([1e9, 2e9], name="c2")
        s = make_schedule(
            ptg, cluster, [0, 1], [1, 3], [[0], [0, 1]]
        )
        # busy 5 of 4 procs * 3 s
        assert simulate(s).utilization == pytest.approx(5 / 12)

    def test_concurrency_profile(self, cluster):
        ptg = chain([1e9, 2e9], name="c2")
        s = make_schedule(
            ptg, cluster, [0, 1], [1, 3], [[0], [0, 1]]
        )
        profile = simulate(s).trace.concurrency_profile()
        # 1 busy from 0, 2 busy from 1, 0 busy at 3
        assert profile[0] == (0.0, 1)
        assert profile[-1] == (3.0, 0)

    def test_events_for_task(self, cluster):
        ptg = chain([1e9], name="c1")
        s = make_schedule(ptg, cluster, [0], [1], [[0]])
        trace = simulate(s).trace
        events = trace.events_for_task(0)
        assert len(events) == 2

    def test_out_of_order_record_rejected(self):
        trace = SimulationTrace(num_processors=1)
        trace.record(
            TaskStarted(time=5.0, task=0, task_name="a", processors=(0,))
        )
        with pytest.raises(ValueError, match="arrived after"):
            trace.record(
                TaskFinished(
                    time=1.0, task=0, task_name="a", processors=(0,)
                )
            )

    def test_empty_trace(self):
        trace = SimulationTrace(num_processors=2)
        assert trace.makespan == 0.0
        assert trace.utilization() == 0.0
        assert len(trace) == 0

    def test_str_rendering(self, cluster):
        ptg = chain([1e9], name="c1")
        s = make_schedule(ptg, cluster, [0], [1], [[0]])
        out = str(simulate(s).trace)
        assert "TaskStarted" in out
        assert "t0" in out
