"""Checkpoint/resume: round-trip fidelity, atomicity, validation, and
the bit-identical interrupt/resume contract of ``EMTS.schedule``."""

from __future__ import annotations

import json
import os
import threading

import numpy as np
import pytest

from repro import emts5, grelon, SyntheticModel
from repro.core import (
    Checkpoint,
    load_checkpoint,
    problem_fingerprint,
    save_checkpoint,
    verify_resumable,
)
from repro.core.checkpoint import CHECKPOINT_FORMAT, CHECKPOINT_VERSION
from repro.core.config import emts5_config
from repro.exceptions import CheckpointError, ConfigurationError
from repro.timemodels import TimeTable
from repro.workloads import generate_fft

PTG = generate_fft(4, rng=7)
CLUSTER = grelon()
MODEL = SyntheticModel()


@pytest.fixture
def table() -> TimeTable:
    return TimeTable.build(MODEL, PTG, CLUSTER)


def run_baseline():
    return emts5().schedule(PTG, CLUSTER, MODEL, rng=7)


class CountdownEvent:
    """Event-like flag that sets itself after ``n`` ``is_set`` checks.

    Termination is checked once per generation boundary, so this stops
    an EMTS run after a deterministic number of generations.
    """

    def __init__(self, n: int) -> None:
        self.n = n
        self.calls = 0

    def is_set(self) -> bool:
        self.calls += 1
        return self.calls > self.n

    def set(self) -> None:
        self.n = -1


# ----------------------------------------------------------------------
# serialization round trip


def test_checkpoint_roundtrip_fields(tmp_path, table):
    run = emts5()
    path = tmp_path / "run.ckpt"
    result = run.schedule(
        PTG, CLUSTER, MODEL, rng=7, checkpoint_path=path
    )
    ckpt = load_checkpoint(path)
    assert ckpt.completed
    assert ckpt.generation == run.config.generations
    assert ckpt.seed_makespans == result.seed_makespans
    assert ckpt.problem == problem_fingerprint(PTG, table)
    assert len(ckpt.population) == run.config.mu
    log = ckpt.restore_log()
    assert log.generations == result.log.generations
    assert list(log.best_trajectory()) == list(
        result.log.best_trajectory()
    )
    pop = ckpt.restore_population()
    assert all(ind.evaluated for ind in pop)
    stats = ckpt.restore_eval_stats()
    assert stats.evaluations == result.evaluation_stats.evaluations


def test_checkpoint_file_is_json_with_format_header(tmp_path):
    path = tmp_path / "run.ckpt"
    emts5().schedule(PTG, CLUSTER, MODEL, rng=7, checkpoint_path=path)
    doc = json.loads(path.read_text(encoding="utf-8"))
    assert doc["format"] == CHECKPOINT_FORMAT
    assert doc["version"] == CHECKPOINT_VERSION


def test_atomic_write_leaves_no_temp_files(tmp_path):
    path = tmp_path / "run.ckpt"
    emts5().schedule(PTG, CLUSTER, MODEL, rng=7, checkpoint_path=path)
    leftovers = [p for p in tmp_path.iterdir() if p != path]
    assert leftovers == []


def test_save_checkpoint_unwritable_path_raises(tmp_path, table):
    ckpt = load_checkpoint(
        save_checkpoint(_tiny_checkpoint(table), tmp_path / "ok.ckpt")
    )
    missing_dir = tmp_path / "no" / "such" / "dir" / "run.ckpt"
    with pytest.raises(CheckpointError, match="could not write"):
        save_checkpoint(ckpt, missing_dir)


def _tiny_checkpoint(table) -> Checkpoint:
    cfg = emts5_config()
    rng = np.random.default_rng(0)
    from repro.ea import EvolutionLog, GenerationStats, Individual

    log = EvolutionLog()
    log.append(
        GenerationStats.from_population(
            0,
            [Individual(genome=np.ones(PTG.num_tasks, dtype=np.int64),
                        fitness=1.0)],
            1,
            0.0,
        )
    )
    return Checkpoint.capture(
        cfg,
        PTG,
        table,
        generation=0,
        rng=rng,
        population=[
            Individual(
                genome=np.ones(PTG.num_tasks, dtype=np.int64),
                fitness=1.0,
            )
        ],
        log=log,
        seed_makespans={"mcpa": 1.0},
    )


# ----------------------------------------------------------------------
# validation


def test_load_missing_file_raises(tmp_path):
    with pytest.raises(CheckpointError, match="could not read"):
        load_checkpoint(tmp_path / "absent.ckpt")


def test_load_corrupted_json_raises(tmp_path):
    path = tmp_path / "bad.ckpt"
    path.write_text('{"format": "repro-emts-che', encoding="utf-8")
    with pytest.raises(CheckpointError, match="corrupted"):
        load_checkpoint(path)


def test_load_wrong_format_raises(tmp_path):
    path = tmp_path / "other.ckpt"
    path.write_text(json.dumps({"format": "something-else"}))
    with pytest.raises(CheckpointError, match="not an EMTS checkpoint"):
        load_checkpoint(path)


def test_load_unsupported_version_raises(tmp_path, table):
    path = tmp_path / "v99.ckpt"
    doc = _tiny_checkpoint(table).to_dict()
    doc["version"] = 99
    path.write_text(json.dumps(doc))
    with pytest.raises(CheckpointError, match="version"):
        load_checkpoint(path)


def test_verify_resumable_reports_all_mismatches(tmp_path, table):
    ckpt = _tiny_checkpoint(table)
    other_cfg = emts5_config().with_updates(
        mu=7, generations=9, name="emts5"
    )
    with pytest.raises(CheckpointError) as err:
        verify_resumable(ckpt, other_cfg, PTG, table)
    message = str(err.value)
    assert "config.mu" in message
    assert "config.generations" in message


def test_verify_resumable_rejects_different_problem(table):
    ckpt = _tiny_checkpoint(table)
    other_ptg = generate_fft(8, rng=7)
    other_table = TimeTable.build(MODEL, other_ptg, CLUSTER)
    with pytest.raises(CheckpointError, match="problem\\."):
        verify_resumable(ckpt, emts5_config(), other_ptg, other_table)


def test_verify_resumable_rejects_completed_run(tmp_path):
    path = tmp_path / "run.ckpt"
    emts5().schedule(PTG, CLUSTER, MODEL, rng=7, checkpoint_path=path)
    with pytest.raises(CheckpointError, match="completed"):
        emts5().schedule(PTG, CLUSTER, MODEL, rng=7, resume_from=path)


def test_engine_knobs_are_not_fingerprinted(tmp_path):
    """A serial run's checkpoint resumes under different engine config."""
    path = tmp_path / "run.ckpt"
    stop = CountdownEvent(2)
    emts5().schedule(
        PTG, CLUSTER, MODEL, rng=7,
        checkpoint_path=path, stop_event=stop,
    )
    baseline = run_baseline()
    resumed = emts5(workers=2, fitness_cache=False).schedule(
        PTG, CLUSTER, MODEL, rng=7, resume_from=path
    )
    assert resumed.makespan == baseline.makespan


# ----------------------------------------------------------------------
# interrupt / resume bit-identity


def test_interrupt_and_resume_is_bit_identical(tmp_path):
    baseline = run_baseline()
    path = tmp_path / "run.ckpt"
    stop = CountdownEvent(2)
    partial = emts5().schedule(
        PTG, CLUSTER, MODEL, rng=7,
        checkpoint_path=path, stop_event=stop,
    )
    assert partial.interrupted
    assert partial.log.generations - 1 < baseline.log.generations - 1

    resumed = emts5().schedule(
        PTG, CLUSTER, MODEL, rng=7, resume_from=path
    )
    assert not resumed.interrupted
    assert resumed.makespan == baseline.makespan
    assert np.array_equal(resumed.allocation, baseline.allocation)
    assert list(resumed.log.best_trajectory()) == list(
        baseline.log.best_trajectory()
    )
    assert resumed.evaluations == baseline.evaluations
    assert resumed.seed_makespans == baseline.seed_makespans


def test_double_interrupt_then_resume_is_bit_identical(tmp_path):
    """Two interruption cycles still converge to the same answer."""
    baseline = run_baseline()
    path = tmp_path / "run.ckpt"
    emts5().schedule(
        PTG, CLUSTER, MODEL, rng=7,
        checkpoint_path=path, stop_event=CountdownEvent(1),
    )
    second = emts5().schedule(
        PTG, CLUSTER, MODEL, rng=7,
        checkpoint_path=path, resume_from=path,
        stop_event=CountdownEvent(2),
    )
    assert second.interrupted
    final = emts5().schedule(
        PTG, CLUSTER, MODEL, rng=7, resume_from=path
    )
    assert final.makespan == baseline.makespan
    assert final.evaluations == baseline.evaluations


def test_resume_accumulates_elapsed_and_eval_stats(tmp_path):
    baseline = run_baseline()
    path = tmp_path / "run.ckpt"
    emts5().schedule(
        PTG, CLUSTER, MODEL, rng=7,
        checkpoint_path=path, stop_event=CountdownEvent(2),
    )
    ckpt = load_checkpoint(path)
    resumed = emts5().schedule(
        PTG, CLUSTER, MODEL, rng=7, resume_from=path
    )
    assert resumed.elapsed_seconds >= ckpt.elapsed_seconds
    stats = resumed.evaluation_stats
    assert stats.evaluations == baseline.evaluation_stats.evaluations


def test_max_wall_time_interrupts_and_flags(tmp_path):
    result = emts5().schedule(
        PTG, CLUSTER, MODEL, rng=7, max_wall_time=1e-6
    )
    assert result.interrupted
    # the initial population is always evaluated before stopping
    assert result.log.generations >= 1
    assert result.makespan <= min(result.seed_makespans.values()) + 1e-12


def test_max_wall_time_must_be_positive():
    with pytest.raises(ConfigurationError, match="max_wall_time"):
        emts5().schedule(PTG, CLUSTER, MODEL, rng=7, max_wall_time=0)


def test_stop_event_threading_event_supported():
    event = threading.Event()
    event.set()
    result = emts5().schedule(
        PTG, CLUSTER, MODEL, rng=7, stop_event=event
    )
    assert result.interrupted
    assert result.log.generations - 1 == 0


def test_sigint_triggers_graceful_stop_with_checkpoint(tmp_path):
    """A SIGINT mid-run ends at a generation boundary, resumably.

    The stop event doubles as a probe: its second ``is_set`` check
    (i.e. after generation 1 completes) sends SIGINT to this process;
    the handler installed by ``handle_signals=True`` sets the event and
    the run stops at the following boundary.
    """
    import signal as _signal

    path = tmp_path / "run.ckpt"
    event = threading.Event()

    class SignalingEvent:
        def __init__(self, inner):
            self.inner = inner
            self.calls = 0

        def is_set(self):
            self.calls += 1
            if self.calls == 2:
                os.kill(os.getpid(), _signal.SIGINT)
            return self.inner.is_set()

        def set(self):
            self.inner.set()

    previous = _signal.getsignal(_signal.SIGINT)
    result = emts5().schedule(
        PTG, CLUSTER, MODEL, rng=7,
        checkpoint_path=path,
        handle_signals=True,
        stop_event=SignalingEvent(event),
    )
    assert result.interrupted
    assert event.is_set()
    assert result.log.generations - 1 < emts5().config.generations
    # the previous SIGINT handler was restored on the way out
    assert _signal.getsignal(_signal.SIGINT) is previous

    baseline = run_baseline()
    resumed = emts5().schedule(
        PTG, CLUSTER, MODEL, rng=7, resume_from=path
    )
    assert resumed.makespan == baseline.makespan
