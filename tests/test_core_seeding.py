"""Unit tests for EMTS population seeding (paper Section III-B)."""

import numpy as np
import pytest

from repro.core import (
    SEED_REGISTRY,
    AllocationMutation,
    make_allocator,
    seed_population,
)
from repro.exceptions import ConfigurationError


@pytest.fixture
def mutation(synthetic_table):
    return AllocationMutation(P=synthetic_table.num_processors)


class TestMakeAllocator:
    def test_all_registry_entries_instantiate(self):
        for name in SEED_REGISTRY:
            assert make_allocator(name).name == name

    def test_delta_passed_through(self):
        alloc = make_allocator("delta-critical", delta=0.5)
        assert alloc.delta == 0.5

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError, match="unknown seed"):
            make_allocator("nonexistent")


class TestSeedPopulation:
    def test_heuristic_seeds_present(
        self, fft8_ptg, synthetic_table, mutation, rng
    ):
        pop, seeds = seed_population(
            fft8_ptg,
            synthetic_table,
            heuristics=("mcpa", "hcpa", "delta-critical"),
            population_size=5,
            mutation=mutation,
            rng=rng,
        )
        assert len(pop) == 5
        assert set(seeds) == {"mcpa", "hcpa", "delta-critical"}
        origins = [i.origin for i in pop[:3]]
        assert origins == [
            "seed:mcpa",
            "seed:hcpa",
            "seed:delta-critical",
        ]

    def test_filler_individuals_derived_from_seeds(
        self, fft8_ptg, synthetic_table, mutation, rng
    ):
        pop, _ = seed_population(
            fft8_ptg,
            synthetic_table,
            heuristics=("mcpa",),
            population_size=4,
            mutation=mutation,
            rng=rng,
        )
        assert len(pop) == 4
        for filler in pop[1:]:
            assert "mutated" in filler.origin

    def test_population_smaller_than_seed_count(
        self, fft8_ptg, synthetic_table, mutation, rng
    ):
        pop, seeds = seed_population(
            fft8_ptg,
            synthetic_table,
            heuristics=("mcpa", "hcpa", "delta-critical"),
            population_size=2,
            mutation=mutation,
            rng=rng,
        )
        assert len(pop) == 2
        assert len(seeds) == 3  # all seeds still computed/reported

    def test_genomes_feasible(
        self, fft8_ptg, synthetic_table, mutation, rng
    ):
        pop, _ = seed_population(
            fft8_ptg,
            synthetic_table,
            heuristics=("mcpa", "hcpa", "delta-critical"),
            population_size=10,
            mutation=mutation,
            rng=rng,
        )
        P = synthetic_table.num_processors
        for ind in pop:
            assert ind.genome.min() >= 1
            assert ind.genome.max() <= P

    def test_random_seeds_mode(
        self, fft8_ptg, synthetic_table, mutation, rng
    ):
        pop, seeds = seed_population(
            fft8_ptg,
            synthetic_table,
            heuristics=("mcpa",),
            population_size=5,
            mutation=mutation,
            rng=rng,
            random_seeds=True,
        )
        assert len(pop) == 5
        assert seeds == {}  # no heuristics were run
        assert all("random" in i.origin for i in pop)

    def test_invalid_population_size(
        self, fft8_ptg, synthetic_table, mutation, rng
    ):
        with pytest.raises(ConfigurationError):
            seed_population(
                fft8_ptg,
                synthetic_table,
                heuristics=("mcpa",),
                population_size=0,
                mutation=mutation,
                rng=rng,
            )
