"""Unit tests for the DAGGEN-style random PTG generator."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graph import (
    is_connected,
    is_layered,
    level_members,
    precedence_levels,
    validate_ptg,
)
from repro.workloads import DaggenParams, generate_daggen


class TestParams:
    def test_defaults(self):
        p = DaggenParams(num_tasks=10)
        assert p.layered  # jump defaults to 0

    def test_label(self):
        p = DaggenParams(
            num_tasks=50, width=0.2, regularity=0.8, density=0.2, jump=4
        )
        assert p.label() == "n50-w0.2-r0.8-d0.2-j4"

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(num_tasks=0),
            dict(num_tasks=10, width=0.0),
            dict(num_tasks=10, width=1.5),
            dict(num_tasks=10, regularity=-0.1),
            dict(num_tasks=10, density=1.2),
            dict(num_tasks=10, jump=-1),
        ],
    )
    def test_invalid_params(self, kwargs):
        with pytest.raises(GraphError):
            DaggenParams(**kwargs)


class TestGeneration:
    @pytest.mark.parametrize("n", [20, 50, 100])
    def test_exact_task_count(self, n):
        p = DaggenParams(num_tasks=n, width=0.5)
        assert generate_daggen(p, rng=1).num_tasks == n

    def test_reproducible(self):
        p = DaggenParams(num_tasks=30)
        assert generate_daggen(p, rng=5) == generate_daggen(p, rng=5)

    def test_different_seeds_differ(self):
        p = DaggenParams(num_tasks=30, width=0.5)
        assert generate_daggen(p, rng=5) != generate_daggen(p, rng=6)

    def test_connected(self):
        for seed in range(5):
            p = DaggenParams(num_tasks=40, width=0.5, density=0.2)
            assert is_connected(generate_daggen(p, rng=seed))

    def test_single_task(self):
        g = generate_daggen(DaggenParams(num_tasks=1), rng=1)
        assert g.num_tasks == 1
        assert g.num_edges == 0

    def test_two_tasks_connected(self):
        g = generate_daggen(DaggenParams(num_tasks=2), rng=1)
        assert g.num_edges >= 1

    def test_validates(self):
        p = DaggenParams(
            num_tasks=60, width=0.8, regularity=0.2, density=0.8, jump=4
        )
        rep = validate_ptg(
            generate_daggen(p, rng=2), max_data_size=1.2 * 125e6
        )
        assert rep.ok, str(rep)


class TestShapeControls:
    def test_jump_zero_is_layered(self):
        for seed in range(4):
            p = DaggenParams(num_tasks=40, width=0.6, jump=0)
            assert is_layered(generate_daggen(p, rng=seed))

    def test_jump_allows_level_skips(self):
        # with jump=4 at least one generated instance has a skipping edge
        found_skip = False
        for seed in range(10):
            p = DaggenParams(
                num_tasks=50, width=0.6, density=0.5, jump=4
            )
            g = generate_daggen(p, rng=seed)
            lv = precedence_levels(g)
            if any(lv[v] - lv[u] > 1 for u, v in g.edges):
                found_skip = True
                break
        assert found_skip

    def test_width_controls_parallelism(self):
        narrow = DaggenParams(
            num_tasks=100, width=0.2, regularity=0.8
        )
        wide = DaggenParams(num_tasks=100, width=0.8, regularity=0.8)
        w_narrow = np.mean(
            [
                max(len(m) for m in level_members(
                    generate_daggen(narrow, rng=s)
                ))
                for s in range(5)
            ]
        )
        w_wide = np.mean(
            [
                max(len(m) for m in level_members(
                    generate_daggen(wide, rng=s)
                ))
                for s in range(5)
            ]
        )
        assert w_wide > w_narrow

    def test_density_controls_edges(self):
        sparse = DaggenParams(num_tasks=80, width=0.8, density=0.2)
        dense = DaggenParams(num_tasks=80, width=0.8, density=0.8)
        e_sparse = np.mean(
            [generate_daggen(sparse, rng=s).num_edges for s in range(5)]
        )
        e_dense = np.mean(
            [generate_daggen(dense, rng=s).num_edges for s in range(5)]
        )
        assert e_dense > e_sparse

    def test_layered_costs_similar_within_layer(self):
        p = DaggenParams(num_tasks=60, width=0.8, jump=0)
        g = generate_daggen(p, rng=3)
        for members in level_members(g):
            if len(members) < 2:
                continue
            d = g.data_size[members]
            # the generator jitters one per-layer size by at most +-10%
            assert d.max() / d.min() < 1.3

    def test_layered_has_no_spurious_sinks(self):
        # in a layered graph the construction levels equal the precedence
        # levels, so only the deepest layer may contain sinks
        p = DaggenParams(num_tasks=50, width=0.8, density=0.2, jump=0)
        g = generate_daggen(p, rng=4)
        lv = precedence_levels(g)
        deepest = lv.max()
        for v in range(g.num_tasks):
            if lv[v] < deepest:
                assert g.successors(v), f"task {v} is a spurious sink"
