"""Property-based tests (hypothesis) for the evolution-strategy engine.

The fitness functions here are arbitrary deterministic hash-based maps,
so the properties hold for *any* optimization problem, not just
scheduling: plus-selection monotonicity, population-size invariants,
and determinism.
"""

import hashlib

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ea import (
    EvolutionStrategy,
    Individual,
    UniformIntegerMutation,
    plus_selection,
)


def hash_fitness(genome: np.ndarray) -> float:
    """A deterministic, structureless fitness (worst case for an EA)."""
    digest = hashlib.sha256(genome.tobytes()).digest()
    return int.from_bytes(digest[:6], "big") / 2**48


@st.composite
def ea_setups(draw):
    mu = draw(st.integers(min_value=1, max_value=5))
    lam = draw(st.integers(min_value=mu, max_value=12))
    genome_len = draw(st.integers(min_value=1, max_value=10))
    n_initial = draw(st.integers(min_value=1, max_value=mu))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    generations = draw(st.integers(min_value=1, max_value=6))
    initial = [
        Individual(
            genome=np.full(genome_len, i + 1, dtype=np.int64),
            origin=f"s{i}",
        )
        for i in range(n_initial)
    ]
    strategy = EvolutionStrategy(
        mu=mu,
        lam=lam,
        mutation=UniformIntegerMutation(low=1, high=9, rate=0.5),
    )
    return strategy, initial, seed, generations


@given(ea_setups())
@settings(max_examples=50, deadline=None)
def test_plus_strategy_monotone_for_any_fitness(setup):
    strategy, initial, seed, generations = setup
    result = strategy.evolve(
        initial,
        hash_fitness,
        np.random.default_rng(seed),
        total_generations=generations,
    )
    assert result.log.is_monotone()
    # the best is never worse than the best initial individual
    best_initial = min(hash_fitness(i.genome) for i in initial)
    assert result.best_fitness <= best_initial + 1e-12


@given(ea_setups())
@settings(max_examples=50, deadline=None)
def test_population_size_invariant(setup):
    strategy, initial, seed, generations = setup
    result = strategy.evolve(
        initial,
        hash_fitness,
        np.random.default_rng(seed),
        total_generations=generations,
    )
    # lam >= mu in every generated setup, so after the first generation
    # the population always holds exactly mu survivors
    assert len(result.population) == strategy.mu
    # every survivor is evaluated and feasible
    for ind in result.population:
        assert ind.evaluated
        assert ind.genome.min() >= 1


@given(ea_setups())
@settings(max_examples=30, deadline=None)
def test_determinism_for_any_setup(setup):
    strategy, initial, seed, generations = setup
    r1 = strategy.evolve(
        initial,
        hash_fitness,
        np.random.default_rng(seed),
        total_generations=generations,
    )
    r2 = strategy.evolve(
        initial,
        hash_fitness,
        np.random.default_rng(seed),
        total_generations=generations,
    )
    assert r1.best_fitness == r2.best_fitness
    assert np.array_equal(r1.best.genome, r2.best.genome)


@given(
    st.lists(
        st.floats(
            min_value=0.0, max_value=1e6, allow_nan=False
        ),
        min_size=1,
        max_size=12,
    ),
    st.lists(
        st.floats(
            min_value=0.0, max_value=1e6, allow_nan=False
        ),
        min_size=0,
        max_size=12,
    ),
    st.integers(min_value=1, max_value=6),
)
@settings(max_examples=80, deadline=None)
def test_plus_selection_properties(parent_fits, child_fits, mu):
    parents = [
        Individual(genome=np.array([1]), fitness=f, origin="p")
        for f in parent_fits
    ]
    offspring = [
        Individual(genome=np.array([1]), fitness=f, origin="o")
        for f in child_fits
    ]
    pool_size = len(parents) + len(offspring)
    if pool_size < mu:
        return  # plus_selection requires a large enough pool
    survivors = plus_selection(parents, offspring, mu)
    assert len(survivors) == mu
    fits = [s.evaluated_fitness() for s in survivors]
    # survivors are exactly the mu smallest of the pool
    all_fits = sorted(parent_fits + child_fits)
    assert fits == all_fits[:mu]
