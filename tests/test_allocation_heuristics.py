"""Unit tests for Serial/Greedy/HCPA/MCPA/MCPA2/Delta-critical allocators."""

import numpy as np
import pytest

from repro.allocation import (
    CpaAllocator,
    DeltaCriticalAllocator,
    GreedyBestAllocator,
    HcpaAllocator,
    Mcpa2Allocator,
    McpaAllocator,
    SerialAllocator,
)
from repro.graph import level_members, precedence_levels
from repro.mapping import makespan_of
from repro.platform import Cluster, chti, grelon
from repro.timemodels import AmdahlModel, SyntheticModel, TimeTable


def table_for(ptg, P=8, model=None, speed=1.0):
    cluster = Cluster("c", num_processors=P, speed_gflops=speed)
    return TimeTable.build(model or AmdahlModel(), ptg, cluster)


class TestSerial:
    def test_all_ones(self, fft8_ptg):
        table = table_for(fft8_ptg)
        alloc = SerialAllocator().allocate(fft8_ptg, table)
        assert np.all(alloc == 1)

    def test_schedule_composition(self, fft8_ptg):
        table = table_for(fft8_ptg)
        s = SerialAllocator().schedule(fft8_ptg, table)
        s.validate()
        assert s.makespan == pytest.approx(
            makespan_of(
                fft8_ptg, table, np.ones(39, dtype=np.int64)
            )
        )


class TestGreedyBest:
    def test_monotone_model_takes_machine(self, fft8_ptg):
        table = table_for(fft8_ptg, P=8)
        alloc = GreedyBestAllocator().allocate(fft8_ptg, table)
        assert np.all(alloc == 8)  # strictly decreasing T: argmin at P

    def test_non_monotone_avoids_penalties(self, fft8_ptg):
        table = table_for(fft8_ptg, P=8, model=SyntheticModel())
        alloc = GreedyBestAllocator().allocate(fft8_ptg, table)
        # best column is per-task argmin; with the odd-penalty no task
        # should sit on 3, 5 or 7 processors
        assert not np.any(np.isin(alloc, [3, 5, 7]))


class TestHcpa:
    def test_equals_cpa_on_homogeneous(self, fft8_ptg, grelon_cluster):
        table = TimeTable.build(
            AmdahlModel(), fft8_ptg, grelon_cluster
        )
        assert np.array_equal(
            HcpaAllocator().allocate(fft8_ptg, table),
            CpaAllocator().allocate(fft8_ptg, table),
        )

    def test_matching_reference_speed_identity(
        self, fft8_ptg, grelon_cluster
    ):
        table = TimeTable.build(
            AmdahlModel(), fft8_ptg, grelon_cluster
        )
        h = HcpaAllocator(reference_speed_gflops=3.1)
        assert np.array_equal(
            h.allocate(fft8_ptg, table),
            CpaAllocator().allocate(fft8_ptg, table),
        )

    def test_reference_speed_needs_model(self, fft8_ptg):
        table = table_for(fft8_ptg, P=8)
        h = HcpaAllocator(reference_speed_gflops=99.0)
        with pytest.raises(ValueError, match="model"):
            h.allocate(fft8_ptg, table)

    def test_reference_translation_clamped(self, fft8_ptg):
        table = table_for(fft8_ptg, P=8, speed=1.0)
        h = HcpaAllocator(
            reference_speed_gflops=4.0, model=AmdahlModel()
        )
        alloc = h.allocate(fft8_ptg, table)
        assert alloc.min() >= 1
        assert alloc.max() <= 8


class TestMcpa:
    def test_level_budget_respected(self, fft8_ptg, chti_cluster):
        table = TimeTable.build(AmdahlModel(), fft8_ptg, chti_cluster)
        alloc = McpaAllocator().allocate(fft8_ptg, table)
        levels = precedence_levels(fft8_ptg)
        P = chti_cluster.num_processors
        for members in level_members(fft8_ptg):
            assert alloc[members].sum() <= P

    def test_never_worse_than_serial_makespan(
        self, irregular_ptg, chti_cluster
    ):
        table = TimeTable.build(
            AmdahlModel(), irregular_ptg, chti_cluster
        )
        mcpa_ms = makespan_of(
            irregular_ptg,
            table,
            McpaAllocator().allocate(irregular_ptg, table),
        )
        serial_ms = makespan_of(
            irregular_ptg,
            table,
            np.ones(irregular_ptg.num_tasks, dtype=np.int64),
        )
        assert mcpa_ms <= serial_ms * 1.0001

    def test_mcpa_bounded_by_cpa_on_wide_graphs(
        self, fork_join_ptg, chti_cluster
    ):
        """On a wide fork-join, MCPA must not allocate more total
        processors per level than CPA does overall."""
        table = TimeTable.build(
            AmdahlModel(), fork_join_ptg, chti_cluster
        )
        mcpa = McpaAllocator().allocate(fork_join_ptg, table)
        levels = precedence_levels(fork_join_ptg)
        branch_level = mcpa[levels == 1]
        assert branch_level.sum() <= 20


class TestMcpa2:
    def test_caps_are_work_proportional(self, chti_cluster):
        from repro.graph import PTG, Task

        # one heavy, three light concurrent tasks
        tasks = [Task("head", work=1e8)]
        tasks += [Task("heavy", work=9e9)]
        tasks += [Task(f"light{i}", work=1e9) for i in range(3)]
        edges = [(0, i) for i in range(1, 5)]
        ptg = PTG(tasks, edges)
        table = TimeTable.build(AmdahlModel(), ptg, chti_cluster)
        alloc = Mcpa2Allocator().allocate(ptg, table)
        heavy = alloc[1]
        lights = alloc[2:]
        assert heavy >= lights.max()

    def test_in_bounds(self, irregular_ptg):
        table = table_for(irregular_ptg, P=16)
        alloc = Mcpa2Allocator().allocate(irregular_ptg, table)
        assert alloc.min() >= 1
        assert alloc.max() <= 16


class TestDeltaCritical:
    def test_noncritical_get_one(self, fork_join_ptg):
        # make one branch dominant by building an uneven fork-join
        from repro.graph import PTG, Task

        tasks = [Task("head", work=1e8)]
        tasks += [Task("big", work=9e9)]
        tasks += [Task(f"small{i}", work=1e8) for i in range(3)]
        tasks += [Task("tail", work=1e8)]
        edges = [(0, i) for i in range(1, 5)] + [
            (i, 5) for i in range(1, 5)
        ]
        ptg = PTG(tasks, edges)
        table = table_for(ptg, P=8)
        alloc = DeltaCriticalAllocator(delta=0.9).allocate(ptg, table)
        assert alloc[1] == 8  # the single critical task takes the machine
        assert np.all(alloc[2:5] == 1)

    def test_processors_shared_among_criticals(self, fork_join_ptg):
        table = table_for(fork_join_ptg, P=8)
        # all 6 branches identical -> all critical -> floor(8/6) = 1 each
        alloc = DeltaCriticalAllocator(delta=0.9).allocate(
            fork_join_ptg, table
        )
        levels = precedence_levels(fork_join_ptg)
        assert np.all(alloc[levels == 1] == 1)

    def test_delta_zero_shares_everything(self, fork_join_ptg):
        table = table_for(fork_join_ptg, P=12)
        alloc = DeltaCriticalAllocator(delta=0.0).allocate(
            fork_join_ptg, table
        )
        levels = precedence_levels(fork_join_ptg)
        assert np.all(alloc[levels == 1] == 2)  # floor(12/6)

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            DeltaCriticalAllocator(delta=-0.1)

    def test_more_critical_tasks_than_processors(self):
        from repro.graph import PTG, Task

        tasks = [Task(f"t{i}", work=1e9) for i in range(10)]
        ptg = PTG(tasks, [])
        table = table_for(ptg, P=4)
        alloc = DeltaCriticalAllocator().allocate(ptg, table)
        assert np.all(alloc == 1)  # floor(4/10) -> clamped to 1


class TestPaperShapeProperties:
    """Cross-allocator properties the paper's evaluation relies on."""

    def test_model1_hcpa_overallocates_vs_mcpa(self, grelon_cluster):
        """HCPA ignores sibling parallelism; on a wide regular PTG its
        mapped makespan is no better than MCPA's (usually worse)."""
        from repro.workloads import generate_fft

        worse = 0
        for seed in range(5):
            ptg = generate_fft(8, rng=seed)
            table = TimeTable.build(AmdahlModel(), ptg, grelon_cluster)
            h = makespan_of(
                ptg, table, HcpaAllocator().allocate(ptg, table)
            )
            m = makespan_of(
                ptg, table, McpaAllocator().allocate(ptg, table)
            )
            if h >= m * 0.999:
                worse += 1
        assert worse >= 4  # MCPA wins (or ties) almost always

    def test_model2_stalls_all_cpa_family(self, grelon_cluster):
        from repro.workloads import generate_fft

        ptg = generate_fft(8, rng=3)
        table = TimeTable.build(
            SyntheticModel(), ptg, grelon_cluster
        )
        for A in (CpaAllocator(), HcpaAllocator(), McpaAllocator()):
            alloc = A.allocate(ptg, table)
            assert alloc.max() <= 8, A.name
