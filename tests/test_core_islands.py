"""Island-model EMTS: sharding invariance, migration, checkpointing.

The island model's central contract: the logical decomposition is fixed
at ``mu`` single-parent islands, so the ``islands`` execution parameter
(and the worker count, and the kernel backend) never changes the
result — same-seed runs are bit-identical for any shard count.  Ring
migration and per-island RNG streams are deterministic, checkpoints
capture the island RNG states, and worker crashes recover without
perturbing the trajectory.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import emts5, grelon, SyntheticModel
from repro.core import EMTSConfig
from repro.core.checkpoint import (
    Checkpoint,
    load_checkpoint,
    verify_resumable,
)
from repro.core.config import emts5_config
from repro.core.islands import IslandStrategy, island_offspring_counts
from repro.exceptions import CheckpointError, ConfigurationError
from repro.testing import ChaosEvaluator, ChaosPlan
from repro.timemodels import TimeTable
from repro.workloads import generate_fft

PTG = generate_fft(4, rng=7)
CLUSTER = grelon()
MODEL = SyntheticModel()
SEED = 20110926


@pytest.fixture(scope="module")
def classic_result():
    return emts5().schedule(PTG, CLUSTER, MODEL, rng=SEED)


@pytest.fixture(scope="module")
def island_result():
    return emts5(islands=1).schedule(PTG, CLUSTER, MODEL, rng=SEED)


def _assert_identical(a, b):
    assert a.makespan == b.makespan
    assert np.array_equal(a.allocation, b.allocation)
    assert list(a.log.best_trajectory()) == list(b.log.best_trajectory())
    assert a.evaluations == b.evaluations


# ----------------------------------------------------------------------
# offspring split


def test_offspring_counts_sum_and_spread():
    counts = island_offspring_counts(25, 5)
    assert counts == [5, 5, 5, 5, 5]
    counts = island_offspring_counts(27, 5)
    assert counts == [6, 6, 5, 5, 5]
    assert sum(island_offspring_counts(100, 7)) == 100
    assert max(island_offspring_counts(100, 7)) - min(
        island_offspring_counts(100, 7)
    ) <= 1


def test_strategy_validation():
    from repro.ea import UniformIntegerMutation

    op = UniformIntegerMutation(1, CLUSTER.num_processors)
    with pytest.raises(ConfigurationError):
        IslandStrategy(0, 5, op)
    with pytest.raises(ConfigurationError):
        IslandStrategy(5, 4, op)  # lam < mu
    with pytest.raises(ConfigurationError):
        IslandStrategy(5, 25, op, migration_interval=0)
    with pytest.raises(ConfigurationError):
        IslandStrategy(5, 25, op, shards=0)


def test_config_validation():
    with pytest.raises(ConfigurationError):
        EMTSConfig(islands=-1)
    with pytest.raises(ConfigurationError):
        EMTSConfig(islands=1, migration_interval=0)
    with pytest.raises(ConfigurationError):
        EMTSConfig(islands=2, selection="comma")
    with pytest.raises(ConfigurationError):
        EMTSConfig(islands=2, mu=10, lam=5)


# ----------------------------------------------------------------------
# shard-count / worker / backend invariance


@pytest.mark.parametrize("shards", [2, 4, 5])
def test_shard_count_is_pure_execution_knob(island_result, shards):
    other = emts5(islands=shards).schedule(PTG, CLUSTER, MODEL, rng=SEED)
    _assert_identical(island_result, other)


def test_worker_count_invariance(island_result):
    pooled = emts5(islands=2, workers=2).schedule(
        PTG, CLUSTER, MODEL, rng=SEED
    )
    _assert_identical(island_result, pooled)


def test_numpy_backend_invariance(island_result, monkeypatch):
    """REPRO_NO_CKERNEL=1 (numpy scheduling path) is bit-identical."""
    from repro.mapping import _cscheduler

    monkeypatch.setenv("REPRO_NO_CKERNEL", "1")
    monkeypatch.setattr(_cscheduler, "_tried", True)
    monkeypatch.setattr(_cscheduler, "_ffi", None)
    monkeypatch.setattr(_cscheduler, "_lib", None)
    fallback = emts5(islands=3).schedule(PTG, CLUSTER, MODEL, rng=SEED)
    _assert_identical(island_result, fallback)


def test_island_mode_is_a_different_trajectory(
    classic_result, island_result
):
    """islands=0 (panmictic) and island mode are both deterministic but
    follow different search trajectories; the island best can never be
    worse than its heuristic seeds (plus selection is elitist)."""
    assert island_result.makespan <= min(
        island_result.seed_makespans.values()
    )
    # determinism of each mode separately
    again = emts5(islands=1).schedule(PTG, CLUSTER, MODEL, rng=SEED)
    _assert_identical(island_result, again)


def test_migration_interval_changes_trajectory():
    every = emts5(islands=1).schedule(PTG, CLUSTER, MODEL, rng=SEED)
    never = emts5(islands=1, migration_interval=100).schedule(
        PTG, CLUSTER, MODEL, rng=SEED
    )
    # both deterministic; isolation without migration may only do worse
    # or equal on this seeded, elitist setup
    assert never.makespan >= every.makespan
    again = emts5(islands=1, migration_interval=100).schedule(
        PTG, CLUSTER, MODEL, rng=SEED
    )
    _assert_identical(never, again)


# ----------------------------------------------------------------------
# chaos: worker kills must not perturb the island trajectory


def test_island_run_survives_worker_kills_bit_identical(island_result):
    chaos = ChaosEvaluator(
        inner=None, plan=ChaosPlan(kill_batches=frozenset({2, 5}))
    )

    def wrap(ev):
        chaos.inner = ev
        return chaos

    survived = emts5(islands=2, workers=2).schedule(
        PTG, CLUSTER, MODEL, rng=SEED, evaluator_wrapper=wrap
    )
    assert chaos.faults_injected >= 1
    assert survived.evaluation_stats.pool_rebuilds >= 1
    _assert_identical(island_result, survived)


# ----------------------------------------------------------------------
# checkpoint / resume


def test_island_checkpoint_resume_bit_identical(
    island_result, tmp_path
):
    path = tmp_path / "island.ckpt"
    stop = threading.Event()
    segment = ChaosEvaluator(
        inner=None, plan=ChaosPlan(stop_after_batch=2), stop_event=stop
    )

    def wrap(ev):
        segment.inner = ev
        return segment

    partial = emts5(islands=2).schedule(
        PTG,
        CLUSTER,
        MODEL,
        rng=SEED,
        checkpoint_path=path,
        stop_event=stop,
        evaluator_wrapper=wrap,
    )
    assert partial.interrupted
    resumed = emts5(islands=4).schedule(
        PTG, CLUSTER, MODEL, rng=SEED, resume_from=path
    )
    assert not resumed.interrupted
    _assert_identical(island_result, resumed)


def test_island_checkpoint_records_rng_streams(tmp_path):
    path = tmp_path / "island.ckpt"
    stop = threading.Event()
    segment = ChaosEvaluator(
        inner=None, plan=ChaosPlan(stop_after_batch=2), stop_event=stop
    )

    def wrap(ev):
        segment.inner = ev
        return segment

    emts5(islands=1).schedule(
        PTG,
        CLUSTER,
        MODEL,
        rng=SEED,
        checkpoint_path=path,
        stop_event=stop,
        evaluator_wrapper=wrap,
    )
    ckpt = load_checkpoint(path)
    assert ckpt.island_rng_states is not None
    assert len(ckpt.island_rng_states) == 5  # EMTS5 mu
    rngs = ckpt.restore_island_rngs()
    assert len(rngs) == 5
    assert all(isinstance(g, np.random.Generator) for g in rngs)
    assert ckpt.config["island_mode"] is True


def test_classic_checkpoint_refuses_island_resume(tmp_path):
    """A panmictic checkpoint cannot seed an island-mode run (and the
    reverse direction is refused by the semantic-config gate)."""
    path = tmp_path / "classic.ckpt"
    stop = threading.Event()
    segment = ChaosEvaluator(
        inner=None, plan=ChaosPlan(stop_after_batch=2), stop_event=stop
    )

    def wrap(ev):
        segment.inner = ev
        return segment

    emts5().schedule(
        PTG,
        CLUSTER,
        MODEL,
        rng=SEED,
        checkpoint_path=path,
        stop_event=stop,
        evaluator_wrapper=wrap,
    )
    ckpt = load_checkpoint(path)
    assert ckpt.island_rng_states is None
    assert ckpt.restore_island_rngs() is None
    assert ckpt.config["island_mode"] is False
    with pytest.raises(CheckpointError):
        emts5(islands=2).schedule(
            PTG, CLUSTER, MODEL, rng=SEED, resume_from=path
        )


def test_semantic_config_defaults_accept_pre_island_checkpoints(
    tmp_path
):
    """Checkpoints written before the island fields existed must stay
    resumable: missing keys compare against the documented defaults."""
    path = tmp_path / "old.ckpt"
    stop = threading.Event()
    segment = ChaosEvaluator(
        inner=None, plan=ChaosPlan(stop_after_batch=2), stop_event=stop
    )

    def wrap(ev):
        segment.inner = ev
        return segment

    emts5().schedule(
        PTG,
        CLUSTER,
        MODEL,
        rng=SEED,
        checkpoint_path=path,
        stop_event=stop,
        evaluator_wrapper=wrap,
    )
    ckpt = load_checkpoint(path)
    # simulate a pre-island checkpoint: drop the new semantic keys
    stripped = {
        k: v
        for k, v in ckpt.config.items()
        if k not in ("island_mode", "migration_interval")
    }
    old = Checkpoint(**{**ckpt.__dict__, "config": stripped})
    table = TimeTable.build(MODEL, PTG, CLUSTER)
    verify_resumable(old, emts5_config(), PTG, table)  # must not raise
    # ... but an island-mode run still refuses the stripped checkpoint
    with pytest.raises(CheckpointError):
        verify_resumable(
            old, emts5_config().with_updates(islands=2), PTG, table
        )
