"""Unit tests for the FFT PTG generator."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graph import precedence_levels, validate_ptg
from repro.workloads import FFT_LEVELS, fft_task_count, generate_fft


class TestTaskCount:
    @pytest.mark.parametrize(
        "n,expected", [(2, 5), (4, 15), (8, 39), (16, 95)]
    )
    def test_paper_task_counts(self, n, expected):
        """The paper: FFT PTGs with 2/4/8/16 levels have 5/15/39/95 tasks."""
        assert fft_task_count(n) == expected

    @pytest.mark.parametrize("n", [0, 1, 3, 6, 12])
    def test_non_power_of_two_rejected(self, n):
        with pytest.raises(GraphError):
            fft_task_count(n)

    def test_paper_levels_constant(self):
        assert FFT_LEVELS == (2, 4, 8, 16)


class TestStructure:
    @pytest.mark.parametrize("n", [2, 4, 8, 16])
    def test_generated_size_matches(self, n):
        g = generate_fft(n, rng=1)
        assert g.num_tasks == fft_task_count(n)

    def test_single_source_single_sink_chain_shape(self):
        g = generate_fft(8, rng=2)
        assert len(g.sources) == 1  # the recursion root
        # sinks are the final butterfly layer: n of them
        assert len(g.sinks) == 8

    def test_depth(self):
        # tree: log2(n)+1 levels, butterflies: log2(n) more
        g = generate_fft(8, rng=3)
        lv = precedence_levels(g)
        assert int(lv.max()) == 2 * 3  # 2*log2(8)

    def test_butterfly_has_two_parents(self):
        g = generate_fft(4, rng=4)
        butterfly_indices = [
            i
            for i, t in enumerate(g.tasks)
            if t.kind == "fft-butterfly"
        ]
        assert len(butterfly_indices) == 8  # n * log2(n)
        for v in butterfly_indices:
            assert len(g.predecessors(v)) == 2

    def test_tree_nodes_have_one_parent(self):
        g = generate_fft(4, rng=5)
        for i, t in enumerate(g.tasks):
            if t.kind == "fft-split" and g.predecessors(i):
                assert len(g.predecessors(i)) == 1

    def test_validates(self):
        rep = validate_ptg(
            generate_fft(16, rng=6),
            max_data_size=125e6,
            require_connected=True,
        )
        assert rep.ok, str(rep)


class TestRandomization:
    def test_same_seed_same_graph(self):
        assert generate_fft(8, rng=7) == generate_fft(8, rng=7)

    def test_different_seed_same_shape_different_costs(self):
        g1 = generate_fft(8, rng=8)
        g2 = generate_fft(8, rng=9)
        assert g1.edges == g2.edges  # identical shape
        assert not np.allclose(g1.work, g2.work)  # different costs

    def test_custom_name(self):
        assert generate_fft(4, rng=1, name="xyz").name == "xyz"

    def test_alpha_within_paper_bounds(self):
        g = generate_fft(16, rng=10)
        assert np.all(g.alpha >= 0.0)
        assert np.all(g.alpha <= 0.25)
