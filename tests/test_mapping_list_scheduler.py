"""Unit tests for the bottom-level list scheduler (the paper's mapping
step and EMTS's fitness function)."""

import numpy as np
import pytest

from repro.exceptions import AllocationError
from repro.graph import PTG, PTGBuilder, Task, chain, fork_join
from repro.mapping import (
    check_allocation,
    makespan_of,
    map_allocations,
)
from repro.platform import Cluster
from repro.timemodels import AmdahlModel, SyntheticModel, TimeTable


def table_for(ptg, P=4, speed=1.0, model=None):
    cluster = Cluster("c", num_processors=P, speed_gflops=speed)
    return TimeTable.build(model or AmdahlModel(), ptg, cluster)


class TestCheckAllocation:
    def test_valid_passthrough(self, diamond_ptg):
        a = check_allocation(np.array([1, 2, 3, 4]), diamond_ptg, 4)
        assert a.dtype == np.int64

    def test_float_integers_accepted(self, diamond_ptg):
        a = check_allocation(
            np.array([1.0, 2.0, 3.0, 4.0]), diamond_ptg, 4
        )
        assert a.tolist() == [1, 2, 3, 4]

    def test_fractional_rejected(self, diamond_ptg):
        with pytest.raises(AllocationError, match="integers"):
            check_allocation(np.array([1.5, 1, 1, 1]), diamond_ptg, 4)

    def test_out_of_range_rejected(self, diamond_ptg):
        with pytest.raises(AllocationError, match="lie in"):
            check_allocation(np.array([0, 1, 1, 1]), diamond_ptg, 4)
        with pytest.raises(AllocationError, match="lie in"):
            check_allocation(np.array([1, 1, 1, 5]), diamond_ptg, 4)

    def test_wrong_shape_rejected(self, diamond_ptg):
        with pytest.raises(AllocationError, match="shape"):
            check_allocation(np.array([1, 1]), diamond_ptg, 4)


class TestHandComputedSchedules:
    def test_single_task(self, single_task_ptg):
        table = table_for(single_task_ptg, P=2, speed=4.3)
        s = map_allocations(
            single_task_ptg, table, np.array([1])
        )
        assert s.makespan == pytest.approx(1.0)
        assert s.proc_sets[0].tolist() == [0]

    def test_chain_serializes(self):
        ptg = chain([1e9, 2e9, 3e9])
        table = table_for(ptg, P=4)
        s = map_allocations(ptg, table, np.ones(3, dtype=np.int64))
        assert s.makespan == pytest.approx(6.0)
        assert s.start.tolist() == [0.0, 1.0, 3.0]

    def test_independent_tasks_pack(self):
        ptg = PTG(
            [Task(f"t{i}", work=1e9) for i in range(4)], []
        )
        table = table_for(ptg, P=2)
        s = map_allocations(ptg, table, np.ones(4, dtype=np.int64))
        # 4 unit tasks on 2 processors: 2 waves
        assert s.makespan == pytest.approx(2.0)

    def test_wide_allocation_serializes_parallel_tasks(self):
        ptg = PTG(
            [Task(f"t{i}", work=1e9) for i in range(2)], []
        )
        table = table_for(ptg, P=2)
        # each task takes the whole machine: forced serialization
        s = map_allocations(ptg, table, np.array([2, 2]))
        assert s.makespan == pytest.approx(1.0)  # alpha=0: T(2)=0.5 each

    def test_priority_order_highest_bl_first(self):
        # two ready tasks, one long chain behind the second
        b = PTGBuilder()
        short = b.add_task("short", work=1e9)
        long_head = b.add_task("long_head", work=1e9)
        long_tail = b.add_task("long_tail", work=9e9)
        b.add_edge(long_head, long_tail)
        ptg = b.build()
        table = table_for(ptg, P=1)
        s = map_allocations(ptg, table, np.ones(3, dtype=np.int64))
        # long_head has bl 10 > short's 1: must run first; once it ends,
        # long_tail (bl 9) outranks short (bl 1) in the ready queue too
        assert s.start[long_head] == 0.0
        assert s.start[long_tail] == pytest.approx(1.0)
        assert s.start[short] == pytest.approx(10.0)
        assert s.makespan == pytest.approx(11.0)

    def test_fork_join_hand_computed(self, fork_join_ptg):
        table = table_for(fork_join_ptg, P=3)
        alloc = np.ones(8, dtype=np.int64)
        s = map_allocations(fork_join_ptg, table, alloc)
        # head 0.1s, then 6 x 1s branches on 3 procs = 2 waves, tail 0.1s
        assert s.makespan == pytest.approx(0.1 + 2.0 + 0.1)


class TestConsistency:
    def test_fast_path_equals_full_schedule(
        self, fft8_ptg, grelon_cluster, rng
    ):
        table = TimeTable.build(
            SyntheticModel(), fft8_ptg, grelon_cluster
        )
        for _ in range(10):
            alloc = rng.integers(
                1, 121, size=fft8_ptg.num_tasks, dtype=np.int64
            )
            fast = makespan_of(fft8_ptg, table, alloc)
            full = map_allocations(fft8_ptg, table, alloc)
            assert fast == pytest.approx(full.makespan)

    def test_schedules_always_valid(self, irregular_ptg, rng):
        table = table_for(irregular_ptg, P=16)
        for _ in range(10):
            alloc = rng.integers(
                1, 17, size=irregular_ptg.num_tasks, dtype=np.int64
            )
            s = map_allocations(irregular_ptg, table, alloc)
            s.validate(times=table.times_for(alloc))

    def test_deterministic(self, irregular_ptg):
        table = table_for(irregular_ptg, P=8)
        alloc = np.full(irregular_ptg.num_tasks, 2, dtype=np.int64)
        s1 = map_allocations(irregular_ptg, table, alloc)
        s2 = map_allocations(irregular_ptg, table, alloc)
        assert np.array_equal(s1.start, s2.start)
        assert all(
            np.array_equal(a, b)
            for a, b in zip(s1.proc_sets, s2.proc_sets)
        )


class TestRejectionStrategy:
    def test_abort_returns_inf(self, fft8_ptg, grelon_cluster):
        table = TimeTable.build(
            SyntheticModel(), fft8_ptg, grelon_cluster
        )
        alloc = np.ones(fft8_ptg.num_tasks, dtype=np.int64)
        honest = makespan_of(fft8_ptg, table, alloc)
        # an incumbent far below the real makespan triggers the abort
        assert makespan_of(
            fft8_ptg, table, alloc, abort_above=honest / 10
        ) == np.inf

    def test_loose_bound_does_not_abort(self, fft8_ptg, grelon_cluster):
        table = TimeTable.build(
            SyntheticModel(), fft8_ptg, grelon_cluster
        )
        alloc = np.ones(fft8_ptg.num_tasks, dtype=np.int64)
        honest = makespan_of(fft8_ptg, table, alloc)
        assert makespan_of(
            fft8_ptg, table, alloc, abort_above=honest * 10
        ) == pytest.approx(honest)

    def test_abort_bound_is_sound(self, irregular_ptg, rng):
        """If the mapper aborts, the true makespan really is >= bound."""
        table = table_for(irregular_ptg, P=8)
        for _ in range(20):
            alloc = rng.integers(
                1, 9, size=irregular_ptg.num_tasks, dtype=np.int64
            )
            honest = makespan_of(irregular_ptg, table, alloc)
            bound = honest * 0.9
            aborted = makespan_of(
                irregular_ptg, table, alloc, abort_above=bound
            )
            if np.isinf(aborted):
                assert honest >= bound


class TestPriorityVariants:
    def test_all_priorities_produce_valid_schedules(
        self, irregular_ptg, rng
    ):
        from repro.mapping import PRIORITIES

        table = table_for(irregular_ptg, P=8)
        alloc = rng.integers(
            1, 9, size=irregular_ptg.num_tasks, dtype=np.int64
        )
        for priority in PRIORITIES:
            s = map_allocations(
                irregular_ptg, table, alloc, priority=priority
            )
            s.validate(times=table.times_for(alloc))

    def test_unknown_priority_rejected(self, diamond_ptg):
        table = table_for(diamond_ptg, P=4)
        with pytest.raises(AllocationError, match="unknown priority"):
            makespan_of(
                diamond_ptg,
                table,
                np.ones(4, dtype=np.int64),
                priority="magic",
            )

    def test_bottom_level_beats_naive_on_average(self, rng):
        """The paper's priority rule earns its keep: over several
        irregular PTGs, bottom-level ordering is at least as good as
        FIFO on average (and typically strictly better)."""
        from repro.workloads import DaggenParams, generate_daggen

        wins = ties = losses = 0
        for seed in range(8):
            ptg = generate_daggen(
                DaggenParams(
                    num_tasks=40,
                    width=0.8,
                    regularity=0.2,
                    density=0.2,
                    jump=2,
                ),
                rng=seed,
            )
            table = table_for(ptg, P=4)
            alloc = np.ones(ptg.num_tasks, dtype=np.int64)
            bl_ms = makespan_of(ptg, table, alloc)
            fifo_ms = makespan_of(
                ptg, table, alloc, priority="topological"
            )
            if bl_ms < fifo_ms - 1e-9:
                wins += 1
            elif bl_ms > fifo_ms + 1e-9:
                losses += 1
            else:
                ties += 1
        assert wins + ties >= losses  # no systematic regression
        assert wins >= 1  # and it genuinely helps somewhere

    def test_lower_bound_is_sound_and_tight_for_chain(self):
        from repro.mapping import makespan_lower_bound

        ptg = chain([1e9, 2e9, 3e9])
        table = table_for(ptg, P=4)
        alloc = np.ones(3, dtype=np.int64)
        lb = makespan_lower_bound(ptg, table, alloc)
        ms = makespan_of(ptg, table, alloc)
        assert lb <= ms + 1e-9
        assert lb == pytest.approx(ms)  # a chain is its own CP

    def test_lower_bound_area_branch(self):
        from repro.graph import PTG, Task
        from repro.mapping import makespan_lower_bound

        # 4 independent unit tasks on 2 procs: area bound 2 > CP 1
        ptg = PTG(
            [Task(f"t{i}", work=1e9) for i in range(4)], []
        )
        table = table_for(ptg, P=2)
        lb = makespan_lower_bound(
            ptg, table, np.ones(4, dtype=np.int64)
        )
        assert lb == pytest.approx(2.0)


class TestPriorityTies:
    def test_equal_bl_breaks_by_index(self):
        ptg = PTG(
            [Task("x", work=1e9), Task("y", work=1e9)], []
        )
        table = table_for(ptg, P=1)
        s = map_allocations(ptg, table, np.ones(2, dtype=np.int64))
        assert s.start[0] == 0.0  # lower index first
        assert s.start[1] == pytest.approx(1.0)
