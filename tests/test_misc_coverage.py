"""Tests covering remaining small public paths: report panels, figure
row export, degenerate Gantt input, EMTS with every registered seed,
and the figure-5 single-row variant."""

import numpy as np

from repro.core import SEED_REGISTRY, EMTSConfig, EMTS
from repro.experiments import format_panel
from repro.graph import chain
from repro.mapping import Schedule, ascii_gantt
from repro.platform import Cluster
from repro.timemodels import SyntheticModel, TimeTable
from repro.workloads import generate_fft


class TestFormatPanel:
    def test_title_and_body(self):
        out = format_panel("My Panel", "content here")
        lines = out.splitlines()
        assert lines[0] == "My Panel"
        assert set(lines[1]) == {"="}
        assert "content here" in out


class TestFigureRowExport:
    def test_to_rows(self):
        from repro.experiments.figures import (
            run_relative_makespan_figure,
        )
        from repro.core import emts5
        from repro.timemodels import AmdahlModel

        panels = {"fft": [generate_fft(4, rng=0)]}
        fig = run_relative_makespan_figure(
            AmdahlModel(),
            emts5(generations=2),
            seed=1,
            panels=panels,
        )
        rows = fig.to_rows()
        # 1 panel x 2 platforms x 2 baselines
        assert len(rows) == 4
        assert {r["platform"] for r in rows} == {"chti", "grelon"}
        assert all(r["mean"] >= 1.0 - 1e-9 for r in rows)
        assert all(r["emts"] == "emts5" for r in rows)

    def test_figure5_without_emts10(self):
        from repro.experiments.figures import generate_figure5

        panels = {"fft": [generate_fft(4, rng=0)]}
        fig = generate_figure5(
            seed=1, panels=panels, include_emts10=False
        )
        # the EMTS10 row falls back to the EMTS5 row
        assert fig.emts10_row is fig.emts5_row


class TestDegenerateGantt:
    def test_empty_schedule_rendering(self):
        ptg = chain([1e9], name="degenerate")
        cluster = Cluster("c", num_processors=2, speed_gflops=1.0)
        s = Schedule(
            ptg,
            cluster,
            start=np.array([0.0]),
            finish=np.array([0.0]),  # zero-duration placement
            proc_sets=[np.array([0])],
        )
        assert "empty schedule" in ascii_gantt(s)


class TestAllSeedsEndToEnd:
    def test_emts_accepts_every_registered_seed(self):
        """Every allocator in the registry works as an EMTS seed."""
        ptg = generate_fft(4, rng=5)
        cluster = Cluster("c", num_processors=12, speed_gflops=2.0)
        table = TimeTable.build(SyntheticModel(), ptg, cluster)
        config = EMTSConfig(
            mu=len(SEED_REGISTRY),
            lam=10,
            generations=2,
            seed_heuristics=tuple(sorted(SEED_REGISTRY)),
        )
        result = EMTS(config).schedule(ptg, cluster, table, rng=5)
        assert set(result.seed_makespans) == set(SEED_REGISTRY)
        assert result.makespan <= min(
            result.seed_makespans.values()
        ) + 1e-9
