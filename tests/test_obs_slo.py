"""Tests for the SLO engine (repro.obs.slo)."""

from __future__ import annotations

import pytest

from repro.obs import MetricsRegistry, SLOEngine, SLOSpec
from repro.obs.slo import (
    DEFAULT_WINDOWS,
    default_service_slos,
    evaluate_bench,
    latency_compliance,
)


def ratio_spec(**overrides):
    kwargs = dict(
        name="avail",
        description="jobs that finish",
        objective=0.99,
        kind="ratio",
        good=("jobs.good",),
        bad=("jobs.bad",),
    )
    kwargs.update(overrides)
    return SLOSpec(**kwargs)


class FakeClock:
    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t


def snapshot(good: float, bad: float = 0.0):
    registry = MetricsRegistry()
    registry.counter("jobs.good").inc(good)
    registry.counter("jobs.bad").inc(bad)
    return registry.snapshot()


class TestSpecValidation:
    def test_objective_must_be_a_fraction(self):
        with pytest.raises(ValueError, match="objective"):
            ratio_spec(objective=1.0)
        with pytest.raises(ValueError, match="objective"):
            ratio_spec(objective=0.0)

    def test_ratio_needs_a_good_counter(self):
        with pytest.raises(ValueError, match="good counter"):
            ratio_spec(good=())

    def test_latency_needs_a_histogram(self):
        with pytest.raises(ValueError, match="histogram"):
            SLOSpec(
                name="lat",
                description="",
                objective=0.99,
                kind="latency",
            )

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown kind"):
            ratio_spec(kind="nonsuch")

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            SLOEngine([ratio_spec(), ratio_spec()])


class TestLatencyCompliance:
    def test_threshold_on_bucket_boundary(self):
        hist = {
            "kind": "histogram",
            "buckets": [0.1, 1.0],
            "counts": [80, 20],
            "total": 100,
        }
        assert latency_compliance(hist, 0.1) == pytest.approx(0.8)
        assert latency_compliance(hist, 1.0) == pytest.approx(1.0)

    def test_interpolates_inside_a_bucket(self):
        hist = {
            "kind": "histogram",
            "buckets": [0.1, 1.1],
            "counts": [50, 50],
            "total": 100,
        }
        # halfway through the (0.1, 1.1] bucket: half its 50 samples
        assert latency_compliance(hist, 0.6) == pytest.approx(0.75)

    def test_empty_histogram_is_compliant(self):
        assert latency_compliance({"total": 0}, 1.0) == 1.0

    def test_overflow_samples_count_as_violations(self):
        hist = {
            "kind": "histogram",
            "buckets": [0.1],
            "counts": [50],
            "total": 100,  # 50 samples beyond the last finite bound
        }
        assert latency_compliance(hist, 99.0) == pytest.approx(0.5)


class TestEngine:
    def test_healthy_service_never_alerts(self):
        clock = FakeClock()
        engine = SLOEngine([ratio_spec()], clock=clock)
        for step in range(5):
            clock.t = step * 10.0
            engine.observe(snapshot(good=100 * (step + 1)))
        (row,) = engine.report()
        assert row["ok"] is True
        assert row["alerting"] is False
        assert row["compliance"] == 1.0
        assert row["budget_remaining"] == pytest.approx(1.0)
        assert set(row["burn_rates"]) == {"60s", "600s"}

    def test_fast_burn_alerts_on_both_windows(self):
        clock = FakeClock()
        engine = SLOEngine([ratio_spec()], clock=clock)
        engine.observe(snapshot(good=0))
        clock.t = 30.0
        # every event bad: burn rate 1/0.01 = 100 >> 14.4 on
        # both windows (the whole history fits inside each)
        engine.observe(snapshot(good=0, bad=50))
        (row,) = engine.report()
        assert row["ok"] is False
        assert row["alerting"] is True
        assert row["burn_rates"]["60s"] == pytest.approx(100.0)
        assert engine.alerts() == ["avail"]

    def test_old_failures_age_out_of_the_fast_window(self):
        clock = FakeClock()
        engine = SLOEngine([ratio_spec()], clock=clock)
        engine.observe(snapshot(good=0, bad=50))  # ancient disaster
        for step in range(1, 8):
            clock.t = step * 100.0
            engine.observe(snapshot(good=step * 1000, bad=50))
        (row,) = engine.report()
        # the fast window saw only good events; the alert needs BOTH
        assert row["burn_rates"]["60s"] == pytest.approx(0.0)
        assert row["alerting"] is False

    def test_registry_reset_restarts_the_window(self):
        clock = FakeClock()
        engine = SLOEngine([ratio_spec()], clock=clock)
        engine.observe(snapshot(good=1000))
        clock.t = 10.0
        # counters went backwards: a drain/restart, not time travel
        engine.observe(snapshot(good=3, bad=1))
        (row,) = engine.report()
        assert row["burn_rates"]["60s"] == pytest.approx(
            (1 - 0.75) / 0.01
        )

    def test_history_stays_bounded(self):
        clock = FakeClock()
        engine = SLOEngine([ratio_spec()], clock=clock)
        for step in range(10_000):
            clock.t = float(step)
            engine.observe(snapshot(good=step))
        assert len(engine._samples) < DEFAULT_WINDOWS[-1] + 10

    def test_latency_spec_against_live_registry(self):
        spec = SLOSpec(
            name="lat",
            description="",
            objective=0.9,
            kind="latency",
            histogram="req.seconds",
            threshold=0.1,
        )
        engine = SLOEngine([spec], clock=FakeClock())
        registry = MetricsRegistry()
        hist = registry.histogram("req.seconds", buckets=(0.1, 1.0))
        for _ in range(99):
            hist.observe(0.05)
        hist.observe(0.9)
        engine.observe(registry.snapshot())
        (row,) = engine.report()
        assert row["compliance"] == pytest.approx(0.99)
        assert row["ok"] is True


class TestDefaults:
    def test_default_specs_cover_the_serving_stack(self):
        names = {s.name for s in default_service_slos()}
        assert names == {
            "availability",
            "submit-latency",
            "online-reaction",
            "recovery",
        }

    def test_default_specs_construct_an_engine(self):
        engine = SLOEngine(default_service_slos())
        engine.observe(MetricsRegistry().snapshot())
        assert len(engine.report()) == 4


class TestEvaluateBench:
    def test_service_bench_within_budget(self):
        doc = {
            "p99_ms": 400.0,
            "loaded_warm_p99_ms": 30.0,
            "budgets": {"p99_ms": 5000.0, "warm_p99_ms": 500.0},
        }
        rows = evaluate_bench(doc, "BENCH_service.json")
        assert [r["name"] for r in rows] == [
            "service-p99",
            "service-warm-p99",
        ]
        assert all(r["ok"] for r in rows)

    def test_violated_budget_flagged(self):
        doc = {
            "restart_p99_ms": 99_999.0,
            "jobs_lost": 1,
            "budgets": {"restart_p99_ms": 10_000.0},
        }
        rows = {r["name"]: r for r in evaluate_bench(doc, "x.json")}
        assert rows["recovery-restart-p99"]["ok"] is False
        assert rows["recovery-jobs-lost"]["ok"] is False

    def test_unmapped_bench_kinds_return_nothing(self):
        assert evaluate_bench({"anything": 1}, "BENCH_obs.json") == []
