"""Unit tests for Gantt rendering (ASCII + SVG)."""

import numpy as np
import pytest

from repro.graph import chain
from repro.mapping import (
    ascii_gantt,
    map_allocations,
    save_svg_gantt,
    svg_gantt,
)
from repro.platform import Cluster
from repro.timemodels import AmdahlModel, TimeTable


@pytest.fixture
def schedule():
    ptg = chain([1e9, 2e9, 1e9], name="gantt-chain")
    cluster = Cluster("c", num_processors=4, speed_gflops=1.0)
    table = TimeTable.build(AmdahlModel(), ptg, cluster)
    return map_allocations(ptg, table, np.array([1, 2, 4]))


class TestAsciiGantt:
    def test_contains_header(self, schedule):
        out = ascii_gantt(schedule)
        assert "gantt-chain" in out
        assert "makespan" in out

    def test_one_row_per_processor(self, schedule):
        out = ascii_gantt(schedule)
        for p in range(4):
            assert f"P{p:>3} |" in out

    def test_processor_cap(self, schedule):
        out = ascii_gantt(schedule, max_processors=2)
        assert "P  0" in out
        assert "P  3" not in out
        assert "2 more processors not shown" in out

    def test_respects_width(self, schedule):
        out = ascii_gantt(schedule, width=60)
        lines = [l for l in out.splitlines() if l.startswith("P")]
        assert all(len(l) <= 62 for l in lines)

    def test_busy_processors_have_glyphs(self, schedule):
        out = ascii_gantt(schedule)
        row0 = [l for l in out.splitlines() if l.startswith("P  0")][0]
        # P0 runs all three tasks back to back: nearly full row
        interior = row0.split("|")[1]
        assert interior.count(" ") < len(interior) * 0.2


class TestSvgGantt:
    def test_valid_svg_document(self, schedule):
        svg = svg_gantt(schedule)
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")

    def test_one_rect_per_processor_occupation(self, schedule):
        svg = svg_gantt(schedule)
        # t0: 1 proc, t1: 2 procs, t2: 4 procs -> 7 rectangles
        assert svg.count("<rect") == 7

    def test_task_names_in_tooltips(self, schedule):
        svg = svg_gantt(schedule)
        for name in ("t0", "t1", "t2"):
            assert name in svg

    def test_custom_title(self, schedule):
        assert "MYTITLE" in svg_gantt(schedule, title="MYTITLE")

    def test_save(self, schedule, tmp_path):
        path = tmp_path / "g.svg"
        save_svg_gantt(schedule, path)
        assert path.read_text().startswith("<svg")
