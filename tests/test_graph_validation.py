"""Unit tests for PTG validation (repro.graph.validation)."""

import pytest

from repro.graph import (
    PTG,
    PTGBuilder,
    Task,
    chain,
    is_connected,
    is_layered,
    validate_ptg,
)


class TestIsConnected:
    def test_chain_connected(self):
        assert is_connected(chain([1.0, 1.0]))

    def test_single_node_connected(self, single_task_ptg):
        assert is_connected(single_task_ptg)

    def test_two_components_disconnected(self):
        g = PTG(
            [Task("a", work=1.0), Task("b", work=1.0)], []
        )
        assert not is_connected(g)

    def test_undirected_connectivity(self):
        # a -> c <- b : weakly connected despite two sources
        g = PTG(
            [Task(n, work=1.0) for n in "abc"],
            [(0, 2), (1, 2)],
        )
        assert is_connected(g)


class TestIsLayered:
    def test_chain_is_layered(self):
        assert is_layered(chain([1.0] * 3))

    def test_skip_edge_not_layered(self):
        g = PTG(
            [Task(n, work=1.0) for n in "abc"],
            [(0, 1), (1, 2), (0, 2)],  # a->c skips a level
        )
        assert not is_layered(g)

    def test_generated_layered_corpus_property(self):
        from repro.workloads import DaggenParams, generate_daggen

        for seed in range(5):
            g = generate_daggen(
                DaggenParams(
                    num_tasks=30,
                    width=0.5,
                    regularity=0.5,
                    density=0.5,
                    jump=0,
                ),
                rng=seed,
            )
            assert is_layered(g)


class TestValidatePtg:
    def test_healthy_graph_ok(self, diamond_ptg):
        rep = validate_ptg(diamond_ptg)
        assert rep.ok
        assert str(rep) == "OK"

    def test_data_size_bound(self):
        b = PTGBuilder()
        b.add_task("big", work=1.0, data_size=2e8)
        g = b.build()
        rep = validate_ptg(g, max_data_size=125e6)
        assert not rep.ok
        assert "data_size" in rep.errors[0]

    def test_disconnected_warning_vs_error(self):
        g = PTG(
            [Task("a", work=1.0), Task("b", work=1.0)], []
        )
        assert validate_ptg(g).ok  # warning only
        assert not validate_ptg(g, require_connected=True).ok

    def test_raise_if_failed(self):
        g = PTG(
            [Task("a", work=1.0), Task("b", work=1.0)], []
        )
        rep = validate_ptg(g, require_connected=True)
        with pytest.raises(ValueError, match="validation failed"):
            rep.raise_if_failed()

    def test_ok_report_does_not_raise(self, diamond_ptg):
        validate_ptg(diamond_ptg).raise_if_failed()

    def test_many_sources_warned(self):
        tasks = [Task(f"s{i}", work=1.0) for i in range(6)]
        tasks.append(Task("sink", work=1.0))
        edges = [(i, 6) for i in range(6)]
        rep = validate_ptg(PTG(tasks, edges))
        assert rep.ok
        assert any("sources" in w for w in rep.warnings)
