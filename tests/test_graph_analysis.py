"""Unit tests for graph analyses (bottom/top levels, critical path,
precedence levels, delta-critical sets)."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.graph import (
    bottom_levels,
    chain,
    critical_path,
    critical_path_length,
    delta_critical_sets,
    fork_join,
    graph_width,
    level_members,
    precedence_levels,
    top_levels,
)


def times_of(ptg, mapping):
    """Helper: build a times array from {name: time}."""
    t = np.zeros(ptg.num_tasks)
    for name, val in mapping.items():
        t[ptg.index(name)] = val
    return t


class TestBottomLevels:
    def test_chain(self):
        g = chain([1.0, 1.0, 1.0])
        t = np.array([1.0, 2.0, 3.0])
        bl = bottom_levels(g, t)
        # bl includes own time: sink = 3, middle = 2+3, head = 1+2+3
        assert bl.tolist() == [6.0, 5.0, 3.0]

    def test_diamond(self, diamond_ptg):
        t = times_of(diamond_ptg, {"a": 1, "b": 2, "c": 4, "d": 1})
        bl = bottom_levels(diamond_ptg, t)
        assert bl[diamond_ptg.index("d")] == 1
        assert bl[diamond_ptg.index("b")] == 3
        assert bl[diamond_ptg.index("c")] == 5
        assert bl[diamond_ptg.index("a")] == 6  # 1 + max(3, 5)

    def test_single_node(self, single_task_ptg):
        bl = bottom_levels(single_task_ptg, np.array([7.0]))
        assert bl.tolist() == [7.0]

    def test_zero_times_allowed(self, diamond_ptg):
        bl = bottom_levels(diamond_ptg, np.zeros(4))
        assert np.all(bl == 0)

    def test_shape_mismatch_rejected(self, diamond_ptg):
        with pytest.raises(ValidationError, match="shape"):
            bottom_levels(diamond_ptg, np.ones(3))

    def test_negative_times_rejected(self, diamond_ptg):
        with pytest.raises(ValidationError, match="non-negative"):
            bottom_levels(diamond_ptg, np.array([1, -1, 1, 1.0]))

    def test_nan_times_rejected(self, diamond_ptg):
        with pytest.raises(ValidationError):
            bottom_levels(
                diamond_ptg, np.array([1, np.nan, 1, 1.0])
            )

    def test_matches_recursive_reference(self, irregular_ptg, rng):
        t = rng.random(irregular_ptg.num_tasks) * 10
        bl = bottom_levels(irregular_ptg, t)
        ref = t.copy()
        for v in irregular_ptg.topological_order[::-1]:
            succs = irregular_ptg.successors(int(v))
            if succs:
                ref[v] = t[v] + max(ref[w] for w in succs)
        assert np.allclose(bl, ref)


class TestTopLevels:
    def test_chain(self):
        g = chain([1.0, 1.0, 1.0])
        t = np.array([1.0, 2.0, 3.0])
        tl = top_levels(g, t)
        assert tl.tolist() == [0.0, 1.0, 3.0]

    def test_diamond(self, diamond_ptg):
        t = times_of(diamond_ptg, {"a": 1, "b": 2, "c": 4, "d": 1})
        tl = top_levels(diamond_ptg, t)
        assert tl[diamond_ptg.index("a")] == 0
        assert tl[diamond_ptg.index("b")] == 1
        assert tl[diamond_ptg.index("c")] == 1
        assert tl[diamond_ptg.index("d")] == 5  # max(1+2, 1+4)

    def test_matches_recursive_reference(self, irregular_ptg, rng):
        t = rng.random(irregular_ptg.num_tasks) * 10
        tl = top_levels(irregular_ptg, t)
        ref = np.zeros(irregular_ptg.num_tasks)
        for v in irregular_ptg.topological_order:
            preds = irregular_ptg.predecessors(int(v))
            if preds:
                ref[v] = max(ref[u] + t[u] for u in preds)
        assert np.allclose(tl, ref)

    def test_tl_plus_bl_bounded_by_cp(self, irregular_ptg, rng):
        t = rng.random(irregular_ptg.num_tasks)
        tl = top_levels(irregular_ptg, t)
        bl = bottom_levels(irregular_ptg, t)
        t_cp = bl.max()
        assert np.all(tl + bl <= t_cp + 1e-9)


class TestPrecedenceLevels:
    def test_chain(self):
        g = chain([1.0] * 4)
        assert precedence_levels(g).tolist() == [0, 1, 2, 3]

    def test_diamond(self, diamond_ptg):
        lv = precedence_levels(diamond_ptg)
        assert lv[diamond_ptg.index("a")] == 0
        assert lv[diamond_ptg.index("b")] == 1
        assert lv[diamond_ptg.index("c")] == 1
        assert lv[diamond_ptg.index("d")] == 2

    def test_cached(self, diamond_ptg):
        lv1 = precedence_levels(diamond_ptg)
        lv2 = precedence_levels(diamond_ptg)
        assert lv1 is lv2

    def test_edges_go_deeper(self, irregular_ptg):
        lv = precedence_levels(irregular_ptg)
        for u, v in irregular_ptg.edges:
            assert lv[v] > lv[u]

    def test_level_members_partition(self, irregular_ptg):
        members = level_members(irregular_ptg)
        all_nodes = np.concatenate(members)
        assert sorted(all_nodes) == list(range(irregular_ptg.num_tasks))

    def test_graph_width(self, fork_join_ptg):
        assert graph_width(fork_join_ptg) == 6


class TestCriticalPath:
    def test_chain_is_its_own_cp(self):
        g = chain([1.0] * 3)
        t = np.ones(3)
        assert critical_path(g, t) == [0, 1, 2]
        assert critical_path_length(g, t) == 3.0

    def test_diamond_follows_heavy_branch(self, diamond_ptg):
        t = times_of(diamond_ptg, {"a": 1, "b": 2, "c": 4, "d": 1})
        path = critical_path(diamond_ptg, t)
        names = [diamond_ptg.task(v).name for v in path]
        assert names == ["a", "c", "d"]

    def test_path_is_connected(self, irregular_ptg, rng):
        t = rng.random(irregular_ptg.num_tasks)
        path = critical_path(irregular_ptg, t)
        for u, v in zip(path, path[1:]):
            assert v in irregular_ptg.successors(u)

    def test_path_length_equals_cp(self, irregular_ptg, rng):
        t = rng.random(irregular_ptg.num_tasks)
        path = critical_path(irregular_ptg, t)
        assert sum(t[v] for v in path) == pytest.approx(
            critical_path_length(irregular_ptg, t)
        )

    def test_starts_at_source_ends_at_sink(self, irregular_ptg, rng):
        t = rng.random(irregular_ptg.num_tasks)
        path = critical_path(irregular_ptg, t)
        assert path[0] in irregular_ptg.sources
        assert path[-1] in irregular_ptg.sinks


class TestDeltaCritical:
    def test_delta_one_only_max(self, fork_join_ptg):
        t = np.array([1.0] + [1, 2, 3, 4, 5, 6] + [1.0])
        sets = delta_critical_sets(fork_join_ptg, t, delta=1.0)
        # the branch level: only the heaviest branch is critical
        branch_level = sets[1]
        assert len(branch_level) == 1
        assert fork_join_ptg.task(int(branch_level[0])).name == "branch5"

    def test_delta_zero_everything(self, fork_join_ptg):
        t = np.ones(8)
        sets = delta_critical_sets(fork_join_ptg, t, delta=0.0)
        assert len(sets[1]) == 6  # every branch is critical

    def test_delta_09_near_critical_included(self, fork_join_ptg):
        # branches with bl 10 and 9.5: both within 10% of the max
        t = np.array([1.0, 10.0, 9.5, 1.0, 1.0, 1.0, 1.0, 1.0])
        sets = delta_critical_sets(fork_join_ptg, t, delta=0.9)
        crit_names = {
            fork_join_ptg.task(int(v)).name for v in sets[1]
        }
        assert crit_names == {"branch0", "branch1"}

    def test_invalid_delta_rejected(self, fork_join_ptg):
        with pytest.raises(ValidationError, match="delta"):
            delta_critical_sets(fork_join_ptg, np.ones(8), delta=1.5)

    def test_every_level_has_a_critical_task(self, irregular_ptg, rng):
        t = rng.random(irregular_ptg.num_tasks) + 0.1
        sets = delta_critical_sets(irregular_ptg, t, delta=0.9)
        for s in sets:
            assert len(s) >= 1
