"""Tests for cross-process trace assembly (repro.obs.assemble)."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import TraceError
from repro.obs import (
    TraceContext,
    Tracer,
    assemble_traces,
    canonical_tree,
    derive_span_id,
    derive_trace_id,
    render_service_report,
)


def request_root(tag="req"):
    tid = derive_trace_id("test", tag)
    return TraceContext(
        trace_id=tid, span_id=derive_span_id(tid, "request")
    )


def write_server_shard(trace_dir, root, status=202):
    """A server-style shard: one explicit-ctx ``request`` event."""
    with Tracer(trace_dir / "server.jsonl", append=True) as tracer:
        span = derive_span_id(
            root.trace_id, f"{root.span_id}/http-{tracer.next_span}"
        )
        tracer.event(
            "request",
            attrs={
                "outcome": "accepted",
                "status": status,
                "tenant": "default",
                "priority": 0,
            },
            ctx=TraceContext(
                trace_id=root.trace_id,
                span_id=span,
                parent_id=root.span_id,
            ),
        )


def write_attempt_shard(trace_dir, root, attempt=1, finish=True):
    """A worker-style shard: queue_wait anchor + nested run span."""
    ctx = root.child(f"attempt-{attempt}")
    path = trace_dir / f"job-{root.trace_id}-a{attempt}.jsonl"
    tracer = Tracer(path, context=ctx)
    tracer.event(
        "queue_wait",
        attrs={"attempt": attempt, "priority": 0, "tenant": "default"},
        dur=0.01,
        ctx=ctx,
    )
    tracer.begin(
        "service_run_start", attrs={"attempt": attempt, "job_id": "j-1"}
    )
    tracer.begin("run_start", attrs={"algorithm": "emts5"})
    tracer.event("generation", attrs={"generation": 1, "best": 3.0})
    tracer.event("verify", attrs={"verified": 8, "service": True})
    if finish:
        tracer.end("run_end", attrs={"makespan": 3.0, "engine": "c"})
        tracer.end(
            "service_run_end", attrs={"state": "done", "warm_hit": True}
        )
    tracer.close()
    return path


class TestAssembly:
    def test_round_trip_tree_shape(self, tmp_path):
        root = request_root()
        write_server_shard(tmp_path, root)
        write_attempt_shard(tmp_path, root)
        (tree,) = assemble_traces(tmp_path)
        assert tree.trace_id == root.trace_id
        assert tree.crashed is False
        # synthetic root anchors the client-minted request span
        assert tree.root.synthetic is True
        kinds = [c.kind for c in tree.root.children]
        assert kinds == ["request", "queue_wait"]  # server shard first
        (queue_wait,) = [
            c for c in tree.root.children if c.kind == "queue_wait"
        ]
        (service_run,) = queue_wait.children
        assert service_run.kind == "service_run_start"
        assert service_run.complete is True
        assert service_run.end_attrs["state"] == "done"
        (run,) = service_run.children
        assert run.kind == "run_start"
        assert run.end_attrs["makespan"] == 3.0
        assert [c.kind for c in run.children] == [
            "generation",
            "verify",
        ]

    def test_same_inputs_bit_identical_canonical_trees(self, tmp_path):
        for sub in ("a", "b"):
            d = tmp_path / sub
            d.mkdir()
            root = request_root()
            write_server_shard(d, root)
            write_attempt_shard(d, root)
        (ta,) = assemble_traces(tmp_path / "a")
        (tb,) = assemble_traces(tmp_path / "b")
        assert json.dumps(
            canonical_tree(ta), sort_keys=True
        ) == json.dumps(canonical_tree(tb), sort_keys=True)

    def test_canonical_tree_strips_volatile_attrs(self, tmp_path):
        root = request_root()
        write_attempt_shard(tmp_path, root)
        (tree,) = assemble_traces(tmp_path)
        doc = json.dumps(canonical_tree(tree))
        assert "job_id" not in doc
        assert "engine" not in doc
        assert '"t"' not in doc and '"dur"' not in doc

    def test_two_requests_two_trees(self, tmp_path):
        for tag in ("one", "two"):
            root = request_root(tag)
            write_server_shard(tmp_path, root)
            write_attempt_shard(tmp_path, root)
        trees = assemble_traces(tmp_path)
        assert len(trees) == 2
        assert trees[0].trace_id != trees[1].trace_id

    def test_context_free_events_stay_out_of_trees(self, tmp_path):
        root = request_root()
        write_attempt_shard(tmp_path, root)
        with Tracer(tmp_path / "server.jsonl", append=True) as tracer:
            tracer.event("drain", attrs={"queued": 0, "running": 0})
        (tree,) = assemble_traces(tmp_path)
        assert all(
            n.kind != "drain" for n in tree.root.walk()
        )


class TestCrashTolerance:
    def test_torn_shard_yields_partial_flagged_tree(self, tmp_path):
        root = request_root()
        write_server_shard(tmp_path, root)
        path = write_attempt_shard(tmp_path, root, finish=False)
        # tear the final line mid-write, like a kill -9 would
        raw = path.read_bytes()
        path.write_bytes(raw[:-7])
        (tree,) = assemble_traces(tmp_path)
        assert tree.crashed is True
        assert tree.truncated_shards == (path.stem,)
        open_kinds = {
            n.kind for n in tree.root.walk() if not n.complete
        }
        assert "service_run_start" in open_kinds

    def test_unclosed_span_flags_crash_without_truncation(
        self, tmp_path
    ):
        root = request_root()
        write_attempt_shard(tmp_path, root, finish=False)
        (tree,) = assemble_traces(tmp_path)
        assert tree.crashed is True
        assert tree.truncated_shards == ()

    def test_strict_mode_refuses_crash_damage(self, tmp_path):
        root = request_root()
        write_attempt_shard(tmp_path, root, finish=False)
        with pytest.raises(TraceError, match="never.*closed"):
            assemble_traces(tmp_path, strict=True)


class TestStructuralBreaks:
    def test_duplicate_span_ids_raise(self, tmp_path):
        root = request_root()
        # two shards claiming the same attempt context collide
        write_attempt_shard(tmp_path, root, attempt=1)
        clone = tmp_path / "job-clone-a1.jsonl"
        clone.write_text(
            (tmp_path / f"job-{root.trace_id}-a1.jsonl").read_text()
        )
        with pytest.raises(TraceError, match="duplicate span id"):
            assemble_traces(tmp_path)

    def test_multiple_anchors_without_tear_raise(self, tmp_path):
        root = request_root()
        write_server_shard(tmp_path, root)
        # an attempt parented under a context the request never minted
        stray = TraceContext(
            trace_id=root.trace_id,
            span_id=derive_span_id(root.trace_id, "not-the-request"),
        )
        write_attempt_shard(tmp_path, stray)
        with pytest.raises(TraceError, match="structurally broken"):
            assemble_traces(tmp_path)

    def test_empty_directory_raises(self, tmp_path):
        with pytest.raises(TraceError, match="no .*shards"):
            assemble_traces(tmp_path)

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(TraceError, match="does not exist"):
            assemble_traces(tmp_path / "nonsuch")

    def test_shards_without_context_raise(self, tmp_path):
        with Tracer(tmp_path / "plain.jsonl") as tracer:
            tracer.begin("run_start", attrs={})
            tracer.end("run_end", attrs={})
        with pytest.raises(TraceError, match="nothing to assemble"):
            assemble_traces(tmp_path)


class TestWaterfall:
    def test_report_renders_every_phase(self, tmp_path):
        root = request_root()
        write_server_shard(tmp_path, root)
        write_attempt_shard(tmp_path, root)
        text = render_service_report(tmp_path)
        assert f"trace {root.trace_id}" in text
        assert "request:  accepted status=202" in text
        assert "queue wait" in text
        assert "run attempt" in text
        assert "emts run" in text
        assert "verify" in text
        assert "1 generations" in text

    def test_report_flags_crashes(self, tmp_path):
        root = request_root()
        path = write_attempt_shard(tmp_path, root, finish=False)
        raw = path.read_bytes()
        path.write_bytes(raw[:-5])
        text = render_service_report(tmp_path)
        assert "CRASHED — partial tree" in text
        assert "[UNCLOSED — crash?]" in text
