#!/usr/bin/env python
"""Measure the observability layer's performance envelope.

Writes ``benchmarks/BENCH_obs.json`` (the machine-readable baseline the
CI perf-smoke job regenerates and gates) with three numbers:

``fitness_evals_per_sec``
    End-to-end EMTS5 throughput with observability off — fitness
    evaluations divided by optimization wall time, the quantity the
    paper's runtime table is built from.
``batch_evals_per_sec``
    Raw :meth:`ScheduleKernel.makespan_batch` throughput (genomes/s) on
    an EA-generation-sized block; the ceiling the evaluator stack can
    approach.
``disabled_overhead_pct``
    The cost of the instrumentation hooks that remain on the hot path
    when observability is *disabled*.  With ``trace``/``metrics`` unset
    the only added per-generation work is one :data:`NULL_PROFILER`
    phase context (the :class:`ObservedEvaluator` wrapper is never even
    constructed), so the benchmark times the real per-generation work
    (one lambda-sized fitness batch) with and without that hook,
    interleaved min-of-reps, and reports the relative difference.

``python benchmarks/check_perf.py --obs benchmarks/BENCH_obs.json``
enforces the <2 % disabled-overhead gate (override with
``REPRO_OBS_MAX_OVERHEAD``).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

sys.path.insert(
    0, str(Path(__file__).resolve().parent.parent / "src")
)

import numpy as np  # noqa: E402

from repro._rng import spawn  # noqa: E402
from repro.core import emts5  # noqa: E402
from repro.core.evaluator import create_evaluator  # noqa: E402
from repro.mapping.kernel import kernel_for  # noqa: E402
from repro.obs import NULL_PROFILER  # noqa: E402
from repro.platform import grelon  # noqa: E402
from repro.timemodels import SyntheticModel, TimeTable  # noqa: E402
from repro.workloads import DaggenParams, generate_daggen  # noqa: E402

DEFAULT_OUT = Path(__file__).resolve().parent / "BENCH_obs.json"
BENCH_SEED = 20110926
#: one EA generation of EMTS5 offspring
LAMBDA = 25


def _problem():
    ptg = generate_daggen(
        DaggenParams(
            num_tasks=100, width=0.5, regularity=0.2, density=0.5, jump=2
        ),
        rng=BENCH_SEED,
    )
    cluster = grelon()
    table = TimeTable.build(SyntheticModel(), ptg, cluster)
    kernel_for(table)  # exclude one-off kernel construction
    return ptg, cluster, table


def measure_fitness_throughput(ptg, cluster, table) -> float:
    """Evaluations per second of a full EMTS5 run, observability off."""
    result = emts5().schedule(ptg, cluster, table, rng=BENCH_SEED)
    return result.evaluations / max(result.elapsed_seconds, 1e-9)


def measure_batch_throughput(ptg, table, reps: int = 7) -> float:
    """Genomes per second through the raw kernel batch path."""
    kernel = kernel_for(table)
    rng = spawn(BENCH_SEED, "obs-bench", "batch")
    block = rng.integers(
        1, table.num_processors + 1, size=(100, ptg.num_tasks),
        dtype=np.int64,
    )
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        kernel.makespan_batch(block)
        best = min(best, time.perf_counter() - t0)
    return len(block) / best


def measure_disabled_overhead(
    ptg, table, generations: int = 200, reps: int = 9
) -> float:
    """Relative cost (%) of the disabled-instrumentation hooks.

    Per simulated generation the "hooked" loop runs exactly the code
    ``evolve`` adds when observability is off — one null profiler phase
    context — before the generation's fitness batch; the "bare" loop
    runs the batch alone.  Both are timed interleaved (min of ``reps``)
    on the same evaluator so cache state and CPU frequency drift cancel.
    """
    evaluator = create_evaluator(ptg, table, workers=0, cache=False)
    rng = spawn(BENCH_SEED, "obs-bench", "overhead")
    batch = [
        rng.integers(
            1, table.num_processors + 1, size=ptg.num_tasks,
            dtype=np.int64,
        )
        for _ in range(LAMBDA)
    ]
    evaluator.evaluate(batch)  # warm-up

    def hooked() -> float:
        t0 = time.perf_counter()
        for _ in range(generations):
            with NULL_PROFILER.phase("mutation"):
                pass
            evaluator.evaluate(batch)
        return time.perf_counter() - t0

    def bare() -> float:
        t0 = time.perf_counter()
        for _ in range(generations):
            evaluator.evaluate(batch)
        return time.perf_counter() - t0

    t_hooked = min(hooked() for _ in range(reps))
    t_bare = min(bare() for _ in range(reps))
    evaluator.close()
    return (t_hooked - t_bare) / t_bare * 100.0


def run(out_path: Path) -> dict:
    ptg, cluster, table = _problem()
    print("measuring EMTS5 fitness throughput ...")
    fitness = measure_fitness_throughput(ptg, cluster, table)
    print(f"  {fitness:,.0f} evals/s")
    print("measuring kernel batch throughput ...")
    batch = measure_batch_throughput(ptg, table)
    print(f"  {batch:,.0f} genomes/s")
    print("measuring disabled-instrumentation overhead ...")
    overhead = measure_disabled_overhead(ptg, table)
    print(f"  {overhead:+.3f} %")
    result = {
        "comment": (
            "Observability perf baseline; regenerate with: "
            "python benchmarks/bench_obs.py  — gated by "
            "check_perf.py --obs (REPRO_OBS_MAX_OVERHEAD, default 2%)"
        ),
        "fitness_evals_per_sec": fitness,
        "batch_evals_per_sec": batch,
        "disabled_overhead_pct": overhead,
        "machine_info": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
        },
    }
    out_path.write_text(
        json.dumps(result, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"wrote {out_path}")
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=DEFAULT_OUT,
        help="output JSON path (default: benchmarks/BENCH_obs.json)",
    )
    args = parser.parse_args(argv)
    run(args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
