"""E6 / Figure 6 — example schedules of MCPA vs EMTS10.

Regenerates the side-by-side Gantt comparison for an irregular 100-node
PTG on Grelon under Model 2, asserts the paper's reading of the picture
(MCPA leaves the machine mostly idle; EMTS10 stretches the big tasks and
finishes earlier), and writes both charts (text + SVG) into results/.
"""

import pytest

from repro.experiments.figures import generate_figure6
from repro.simulator import simulate

from .conftest import BENCH_SEED, write_result
from .conftest import RESULTS_DIR


@pytest.fixture(scope="module")
def fig6():
    return generate_figure6(seed=BENCH_SEED)


def test_figure6_comparison(benchmark, fig6):
    # kernel: re-running the EMTS10 schedule construction dominates the
    # figure; benchmark the full generation once
    benchmark.pedantic(
        generate_figure6, kwargs={"seed": BENCH_SEED + 1},
        rounds=1, iterations=1,
    )

    # the paper's statement: EMTS finds a shorter schedule by stretching
    # the big tasks, using the cluster more efficiently
    assert fig6.speedup > 1.0
    assert (
        fig6.emts_schedule.utilization
        > fig6.mcpa_schedule.utilization
    )

    # MCPA's pathology: tiny allocations on the 120-processor machine
    assert fig6.mcpa_schedule.allocations.max() <= 8
    # EMTS stretches: some tasks span many processors
    assert fig6.emts_schedule.allocations.max() >= 16

    # both schedules replay cleanly in the simulator
    simulate(fig6.mcpa_schedule)
    simulate(fig6.emts_schedule)

    write_result("figure6.txt", fig6.render())
    fig6.save_svgs(RESULTS_DIR)
