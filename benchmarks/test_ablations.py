"""Ablation benchmarks for EMTS's design choices (DESIGN.md Section 6).

Each ablation removes one design element the paper argues for.  The
paper designed EMTS to *refine heuristic solutions quickly* ("the main
purpose of our experiments is to reveal whether an EA can tune given
schedules in a short amount of time"), so the directional assertions are
made in that design-center regime — Model 1 on Chti, where the seeds
are strong and small-step refinement is the right move.  Each ablation
is additionally *measured* in the exploration regime (Model 2 on
Grelon, where the CPA-family seeds stall at tiny allocations) and the
outcome recorded in results/: there, exploration-heavy variants can win
at the paper's tiny 5-generation budget — an instructive finding the
paper does not evaluate, discussed in EXPERIMENTS.md.

Ablations:

* **seeding** — heuristic seeds vs random initial populations
  (Section III-B);
* **mutation distribution** — Eq. 1 small-step-biased mutation vs
  uniform resampling (Section III-D);
* **mutation-count annealing** — the (1 - u/U) schedule vs a constant
  count (Section III-C);
* **plus vs comma selection** — plus conserves the best solution
  (Section V);
* **rejection strategy** — the future-work mapping early-abort must be
  outcome-identical while saving time.
"""

import numpy as np
import pytest

from repro.core import EMTS, EMTSConfig, AllocationMutation, emts5
from repro.core.seeding import seed_population
from repro.ea import EvolutionStrategy, UniformIntegerMutation
from repro.mapping import makespan_of
from repro.platform import chti, grelon
from repro.timemodels import AmdahlModel, SyntheticModel, TimeTable
from repro.workloads import DaggenParams, generate_daggen

from .conftest import BENCH_SEED, write_result


def _problems(model, cluster, count=4):
    out = []
    for seed in range(count):
        ptg = generate_daggen(
            DaggenParams(
                num_tasks=50,
                width=0.5,
                regularity=0.2,
                density=0.5,
                jump=2,
            ),
            rng=seed,
        )
        out.append((ptg, TimeTable.build(model, ptg, cluster)))
    return out


@pytest.fixture(scope="module")
def refinement_problems():
    """The paper's design-center regime: strong seeds (Model 1, Chti)."""
    return _problems(AmdahlModel(), chti())


@pytest.fixture(scope="module")
def exploration_problems():
    """Stalled seeds (Model 2, Grelon): measured, not asserted."""
    return _problems(SyntheticModel(), grelon())


def _evolve(ptg, table, mutation=None, random_seeds=False, gens=5):
    """One (5+25)-EA run with configurable operator/initialization."""
    rng = np.random.default_rng(BENCH_SEED)
    seed_op = AllocationMutation(P=table.num_processors)
    initial, _ = seed_population(
        ptg,
        table,
        heuristics=("mcpa", "hcpa", "delta-critical"),
        population_size=5,
        mutation=seed_op,
        rng=rng,
        random_seeds=random_seeds,
    )
    strategy = EvolutionStrategy(
        mu=5, lam=25, mutation=mutation or seed_op
    )
    return strategy.evolve(
        initial,
        lambda g: makespan_of(ptg, table, g),
        rng=rng,
        total_generations=gens,
    ).best_fitness


def _mean(problems, run):
    return float(np.mean([run(ptg, tab) for ptg, tab in problems]))


class ConstantCountMutation(AllocationMutation):
    """Eq. 1 steps but always at the generation-0 mutation width."""

    def mutate(self, genome, rng, generation, total_generations):
        return super().mutate(genome, rng, 0, total_generations)


def test_ablation_seeding(
    benchmark, refinement_problems, exploration_problems
):
    """Heuristic seeding beats random initialization where the seeds
    are good; both regimes are recorded."""

    def seeded(ptg, tab):
        return _evolve(ptg, tab)

    def unseeded(ptg, tab):
        return _evolve(ptg, tab, random_seeds=True)

    ref_seeded = benchmark.pedantic(
        lambda: _mean(refinement_problems, seeded),
        rounds=1,
        iterations=1,
    )
    ref_random = _mean(refinement_problems, unseeded)
    exp_seeded = _mean(exploration_problems, seeded)
    exp_random = _mean(exploration_problems, unseeded)

    # design-center claim: seeds help where heuristics are strong
    assert ref_seeded <= ref_random * 1.02

    write_result(
        "ablation_seeding.txt",
        "refinement regime (model1/chti):\n"
        f"  seeded {ref_seeded:.4f}  random {ref_random:.4f}  "
        f"(random/seeded = {ref_random / ref_seeded:.3f})\n"
        "exploration regime (model2/grelon):\n"
        f"  seeded {exp_seeded:.4f}  random {exp_random:.4f}  "
        f"(random/seeded = {exp_random / exp_seeded:.3f})\n",
    )


def test_ablation_mutation_operator(
    benchmark, refinement_problems, exploration_problems
):
    """Eq. 1's small-step bias beats uniform resampling when refining
    good seeds."""

    def eq1(ptg, tab):
        return _evolve(
            ptg, tab, AllocationMutation(P=tab.num_processors)
        )

    def uniform(ptg, tab):
        return _evolve(
            ptg,
            tab,
            UniformIntegerMutation(
                low=1, high=tab.num_processors, rate=0.33
            ),
        )

    ref_eq1 = benchmark.pedantic(
        lambda: _mean(refinement_problems, eq1),
        rounds=1,
        iterations=1,
    )
    ref_uniform = _mean(refinement_problems, uniform)
    exp_eq1 = _mean(exploration_problems, eq1)
    exp_uniform = _mean(exploration_problems, uniform)

    assert ref_eq1 <= ref_uniform * 1.02

    write_result(
        "ablation_mutation_op.txt",
        "refinement regime (model1/chti):\n"
        f"  eq1 {ref_eq1:.4f}  uniform {ref_uniform:.4f}\n"
        "exploration regime (model2/grelon):\n"
        f"  eq1 {exp_eq1:.4f}  uniform {exp_uniform:.4f}\n",
    )


def test_ablation_annealing(
    benchmark, refinement_problems, exploration_problems
):
    """The (1 - u/U) annealed mutation count vs a constant count."""

    def annealed(ptg, tab):
        return _evolve(
            ptg, tab, AllocationMutation(P=tab.num_processors)
        )

    def constant(ptg, tab):
        return _evolve(
            ptg, tab, ConstantCountMutation(P=tab.num_processors)
        )

    ref_annealed = benchmark.pedantic(
        lambda: _mean(refinement_problems, annealed),
        rounds=1,
        iterations=1,
    )
    ref_constant = _mean(refinement_problems, constant)
    exp_annealed = _mean(exploration_problems, annealed)
    exp_constant = _mean(exploration_problems, constant)

    assert ref_annealed <= ref_constant * 1.03

    write_result(
        "ablation_annealing.txt",
        "refinement regime (model1/chti):\n"
        f"  annealed {ref_annealed:.4f}  constant {ref_constant:.4f}\n"
        "exploration regime (model2/grelon):\n"
        f"  annealed {exp_annealed:.4f}  constant {exp_constant:.4f}\n",
    )


def test_ablation_selection(benchmark, exploration_problems):
    """Plus selection never loses to the seeds; comma selection can."""
    ptg, tab = exploration_problems[0]
    cluster = grelon()

    def run(selection):
        cfg = EMTSConfig(
            mu=5, lam=25, generations=5, selection=selection
        )
        return EMTS(cfg).schedule(ptg, cluster, tab, rng=BENCH_SEED)

    plus_result = benchmark.pedantic(
        lambda: run("plus"), rounds=1, iterations=1
    )
    comma_result = run("comma")

    best_seed = min(plus_result.seed_makespans.values())
    assert plus_result.makespan <= best_seed + 1e-9

    write_result(
        "ablation_selection.txt",
        f"best seed makespan: {best_seed:.4f}\n"
        f"plus  selection:    {plus_result.makespan:.4f}\n"
        f"comma selection:    {comma_result.makespan:.4f}\n",
    )


def test_ablation_rejection(benchmark, exploration_problems):
    """The mapper early-abort is outcome-identical (same makespan AND
    same allocation vector) while skipping provably-useless mappings."""
    cluster = grelon()
    lines = []
    for i, (ptg, tab) in enumerate(exploration_problems):
        plain = emts5().schedule(ptg, cluster, tab, rng=BENCH_SEED)
        fast = emts5(use_rejection=True).schedule(
            ptg, cluster, tab, rng=BENCH_SEED
        )
        assert fast.makespan == pytest.approx(plain.makespan)
        assert np.array_equal(fast.allocation, plain.allocation)
        lines.append(
            f"problem {i}: plain {plain.elapsed_seconds:.3f}s  "
            f"rejection {fast.elapsed_seconds:.3f}s"
        )

    ptg, tab = exploration_problems[0]
    benchmark.pedantic(
        lambda: emts5(use_rejection=True).schedule(
            ptg, cluster, tab, rng=BENCH_SEED
        ),
        rounds=2,
        iterations=1,
    )
    write_result("ablation_rejection.txt", "\n".join(lines) + "\n")
