#!/usr/bin/env python
"""Reaction-latency harness for the online reactive runtime.

Runs :func:`repro.execute_online` over a deterministic battery of
fault scenarios and writes ``benchmarks/BENCH_online.json`` — the
machine-readable baseline the CI online job regenerates and gates via
``check_perf.py --online``:

``zero_fault_identical``
    Every paper-corpus class (plus the synthetic fft/grelon case)
    executed with an empty fault plan must reproduce the static
    simulator's makespan *bit for bit* and pass as-executed
    verification.  The whole online runtime is gated on this: no
    faults, no divergence.
``determinism_identical``
    The heaviest fault scenario replayed with the same seeds must
    produce byte-identical canonical traces and the same makespan —
    fault injection, straggler detection and rescheduling are pure
    functions of their seeds.
``reaction_p50_ms`` / ``reaction_p99_ms``
    Wall-clock latency percentiles of individual reschedule reactions
    (warm-started EMTS rung down to the greedy patch), harvested from
    the ``reaction_seconds`` attribute of ``reschedule`` trace events
    across every faulty run; gated against the pinned ``budgets``
    (committed values that a refresh never relaxes).
``outcomes`` / ``unverified_runs`` / ``rungs``
    Cross-checks: every terminal run must verify its as-executed
    schedule, and the battery must actually exercise the recovery
    ladder (reschedules > 0).

The workload: ``--runs`` seeds, each sampling a mixed fault plan
(crashes + transient failures + stragglers) against an fft graph
scheduled by MCPA on grelon, with a deadline generous enough that
reactions — not breaches — dominate.

``python benchmarks/check_perf.py --online benchmarks/BENCH_online.json``
enforces the gates.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from pathlib import Path

sys.path.insert(
    0, str(Path(__file__).resolve().parent.parent / "src")
)

from repro.core import make_allocator  # noqa: E402
from repro.mapping import _cscheduler, map_allocations  # noqa: E402
from repro.obs import Tracer, canonical_events  # noqa: E402
from repro.online import (  # noqa: E402
    FaultPlan,
    ReactionPolicy,
    execute_online,
)
from repro.platform import chti, grelon  # noqa: E402
from repro.simulator import simulate  # noqa: E402
from repro.timemodels import (  # noqa: E402
    AmdahlModel,
    SyntheticModel,
    TimeTable,
)
from repro.workloads import generate_fft, paper_corpus  # noqa: E402

DEFAULT_OUT = Path(__file__).resolve().parent / "BENCH_online.json"
#: latency budgets are pinned: regenerating the baseline never relaxes
#: them (same idiom as BENCH_service.json's budgets section)
BUDGET_DEFAULTS: dict[str, float] = {
    "reaction_p50_ms": 100.0,
    "reaction_p99_ms": 500.0,
}

#: mixed fault pressure: enough to force every recovery rung without
#: making completion hopeless (grelon has enough processors that even
#: a 5% crash rate kills a dozen of them per run)
FAULT_RATES = {
    "crash_rate": 0.05,
    "failure_rate": 0.25,
    "straggler_rate": 0.25,
    "straggler_factor": 2.5,
    "max_retries": 6,
}


def percentile(samples: list[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    idx = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[idx]


def build_planned(size: int):
    """One fft-on-grelon planning problem, MCPA-allocated."""
    ptg = generate_fft(size, rng=777)
    cluster = grelon()
    table = TimeTable.build(SyntheticModel(), ptg, cluster)
    alloc = make_allocator("mcpa").allocate(ptg, table)
    return map_allocations(ptg, table, alloc), table


def check_zero_fault_identity() -> tuple[bool, int]:
    """Empty-plan online execution must match ``simulate()`` bitwise."""
    cases = 0
    cluster = chti()
    model = AmdahlModel()
    corpus = paper_corpus(seed=11, scale=0.02)
    for cls in corpus.classes:
        for ptg in corpus.by_class(cls)[:2]:
            table = TimeTable.build(model, ptg, cluster)
            alloc = make_allocator("hcpa").allocate(ptg, table)
            schedule = map_allocations(ptg, table, alloc)
            baseline = simulate(schedule)
            result = execute_online(schedule, table)
            if (
                result.makespan != baseline.makespan
                or result.trace.events != baseline.trace.events
                or not result.verified
            ):
                return False, cases
            cases += 1
    planned, table = build_planned(8)
    baseline = simulate(planned)
    result = execute_online(planned, table)
    if (
        result.makespan != baseline.makespan
        or result.trace.events != baseline.trace.events
        or not result.verified
    ):
        return False, cases
    return True, cases + 1


def faulty_run(planned, table, seed: int, trace_path: Path):
    plan = FaultPlan.sampled(
        seed,
        planned.ptg.num_tasks,
        planned.cluster.num_processors,
        horizon=planned.makespan,
        **FAULT_RATES,
    )
    tracer = Tracer(trace_path)
    try:
        result = execute_online(
            planned,
            table,
            plan=plan,
            policy=ReactionPolicy(),
            deadline=planned.makespan * 10.0,
            rng=seed,
            tracer=tracer,
        )
    finally:
        tracer.close()
    return result


def reaction_samples_ms(trace_path: Path) -> list[float]:
    """Raw per-reschedule wall-clock latencies from a trace file."""
    samples = []
    with trace_path.open(encoding="utf-8") as fh:
        for line in fh:
            doc = json.loads(line)
            if doc.get("kind") != "reschedule":
                continue
            attrs = doc.get("attrs", {})
            if "reaction_seconds" in attrs:
                samples.append(float(attrs["reaction_seconds"]) * 1e3)
    return samples


def check_determinism(planned, table, tmp_dir: Path) -> bool:
    """Same seeds twice -> identical canonical trace and makespan."""
    paths = [tmp_dir / f"determinism-{i}.jsonl" for i in (0, 1)]
    results = [faulty_run(planned, table, 17, p) for p in paths]
    if results[0].makespan != results[1].makespan:
        return False
    first, second = (canonical_events(p) for p in paths)
    return first == second


def run(
    runs: int, size: int, out_path: Path, results_txt: Path | None
) -> dict:
    engine = "numpy" if _cscheduler.load()[0] is None else "c"
    print(f"engine: {engine}")

    identical, zero_cases = check_zero_fault_identity()
    print(
        f"zero-fault identity: {zero_cases} cases "
        f"{'ok' if identical else 'BROKEN'}"
    )

    planned, table = build_planned(size)
    tmp_dir = out_path.parent / ".bench_online_traces"
    tmp_dir.mkdir(exist_ok=True)

    deterministic = check_determinism(planned, table, tmp_dir)
    print(f"same-seed determinism: {'ok' if deterministic else 'BROKEN'}")

    latencies: list[float] = []
    outcomes: dict[str, int] = {}
    rungs: dict[str, int] = {}
    reschedules = faults = retries = budget_used = 0
    unverified = 0
    for seed in range(runs):
        trace_path = tmp_dir / f"run-{seed}.jsonl"
        result = faulty_run(planned, table, seed, trace_path)
        outcomes[result.outcome] = outcomes.get(result.outcome, 0) + 1
        for rung, n in result.rungs.items():
            rungs[rung] = rungs.get(rung, 0) + n
        reschedules += result.reschedules
        faults += result.faults_injected
        retries += result.retries
        budget_used += result.budget_used
        # aborted runs have no schedule to verify; every run that
        # produced one must pass as-executed verification
        if result.outcome != "aborted" and not result.verified:
            unverified += 1
        latencies.extend(reaction_samples_ms(trace_path))
        trace_path.unlink()
    for leftover in tmp_dir.glob("*.jsonl"):
        leftover.unlink()
    tmp_dir.rmdir()

    p50 = percentile(latencies, 0.50)
    p99 = percentile(latencies, 0.99)
    print(
        f"{runs} faulty runs: {faults} faults, {reschedules} "
        f"reschedules, rungs {rungs}, outcomes {outcomes}"
    )
    print(
        f"reaction latency: p50 {p50:.2f} ms  p99 {p99:.2f} ms  "
        f"({len(latencies)} samples)"
    )

    budgets = dict(BUDGET_DEFAULTS)
    if out_path.exists():
        previous = json.loads(out_path.read_text(encoding="utf-8"))
        budgets.update(previous.get("budgets", {}))

    result = {
        "comment": (
            "online reactive runtime baseline; regenerate with "
            "benchmarks/bench_online.py, gate with "
            "check_perf.py --online (budgets are pinned: refreshing "
            "never relaxes them)"
        ),
        "engine": engine,
        "zero_fault_identical": identical,
        "zero_fault_cases": zero_cases,
        "determinism_identical": deterministic,
        "runs": runs,
        "graph_size": size,
        "fault_rates": dict(FAULT_RATES),
        "outcomes": outcomes,
        "unverified_runs": unverified,
        "reschedules_total": reschedules,
        "faults_total": faults,
        "retries_total": retries,
        "budget_used_total": budget_used,
        "rungs": rungs,
        "reaction_samples": len(latencies),
        "reaction_p50_ms": round(p50, 3),
        "reaction_p99_ms": round(p99, 3),
        "reaction_max_ms": round(max(latencies), 3) if latencies else 0.0,
        "budgets": budgets,
        "machine_info": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
        },
    }
    out_path.write_text(
        json.dumps(result, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"wrote {out_path}")
    if results_txt is not None:
        lines = [
            f"online engine={engine} runs={runs}",
            f"zero_fault_identical={identical} ({zero_cases} cases)",
            f"determinism_identical={deterministic}",
            f"reaction_p50_ms={p50:.3f} reaction_p99_ms={p99:.3f}",
            f"reschedules={reschedules} faults={faults} rungs={rungs}",
            f"outcomes={outcomes}",
        ]
        results_txt.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--runs",
        type=int,
        default=24,
        help="number of seeded fault scenarios (default: 24)",
    )
    parser.add_argument(
        "--size",
        type=int,
        default=8,
        help="fft generator size of the planning problem (default: 8)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=DEFAULT_OUT,
        help="output JSON path (default: benchmarks/BENCH_online.json)",
    )
    parser.add_argument(
        "--results-txt",
        type=Path,
        default=None,
        help="also write a plain-text summary for CI job logs",
    )
    args = parser.parse_args(argv)
    run(args.runs, args.size, args.out, args.results_txt)
    return 0


if __name__ == "__main__":
    sys.exit(main())
