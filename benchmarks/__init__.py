"""Benchmark suite regenerating every figure/table of the paper."""
