"""E4 / Figure 4 — relative makespan under Model 1 (Amdahl), EMTS5.

Regenerates the four-panel comparison grid (FFT, Strassen, layered-100,
irregular-100 on Chti and Grelon) and asserts the paper's findings:

* EMTS5 never loses to MCPA or HCPA (plus-strategy + seeding);
* the improvement over HCPA exceeds the improvement over MCPA on the
  regular PTG classes (MCPA's level bound fits them well);
* the improvement on irregular PTGs is larger on the bigger platform.

Set ``REPRO_BENCH_SCALE=1.0`` for the paper's full corpus.
"""

import pytest

from repro.experiments.figures import generate_figure4
from repro.platform import grelon
from repro.timemodels import AmdahlModel, TimeTable
from repro.workloads import generate_fft
from repro.core import emts5

from .conftest import BENCH_SEED, bench_scale, write_result


@pytest.fixture(scope="module")
def fig4():
    return generate_figure4(
        seed=BENCH_SEED, scale=bench_scale(0.02)
    )


def test_figure4_grid(benchmark, fig4):
    # benchmark the representative kernel: one EMTS5 run under Model 1
    ptg = generate_fft(8, rng=BENCH_SEED)
    cluster = grelon()
    table = TimeTable.build(AmdahlModel(), ptg, cluster)
    benchmark.pedantic(
        lambda: emts5().schedule(ptg, cluster, table, rng=BENCH_SEED),
        rounds=3,
        iterations=1,
    )

    # --- the paper's qualitative findings --------------------------------
    for (panel, platform, baseline), ci in fig4.cells.items():
        assert ci.mean >= 1.0 - 1e-9, (panel, platform, baseline)

    for panel in ("fft", "strassen", "layered-100"):
        for platform in fig4.platforms:
            hcpa = fig4.cell(panel, platform, "hcpa").mean
            mcpa = fig4.cell(panel, platform, "mcpa").mean
            assert hcpa >= mcpa - 0.02, (panel, platform)

    irr_small = fig4.cell("irregular-100", "chti", "mcpa").mean
    irr_large = fig4.cell("irregular-100", "grelon", "mcpa").mean
    assert irr_large >= irr_small - 0.05

    write_result("figure4.txt", fig4.render())
    from repro.experiments import write_csv

    write_result("figure4.csv", write_csv(fig4.to_rows()))
