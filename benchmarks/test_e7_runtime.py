"""E7 — EMTS optimization run times (the in-text table of Section V).

Measures the paper's six (variant, platform, workload) cells on this
host and asserts the structural relations that must hold regardless of
hardware:

* 100-node PTGs cost more than the small Strassen PTGs;
* EMTS10 costs several times EMTS5 (8x the evaluations).

(The paper's third trend — the larger platform costing more — holds for
its Python-prototype timings but is within measurement noise for this
implementation on small PTGs: the vectorized mapper's cost is dominated
by per-task work, not by the processor count.  It is reported, not
asserted.)

Absolute seconds differ from the paper's 2009-era Core i5 running
unoptimized prototype code; EXPERIMENTS.md records both side by side.
"""

import pytest

from repro.core import emts5
from repro.experiments.runtime import measure_runtimes
from repro.platform import grelon
from repro.timemodels import SyntheticModel, TimeTable
from repro.workloads import generate_strassen

from .conftest import BENCH_SEED, write_result


@pytest.fixture(scope="module")
def report():
    return measure_runtimes(seed=BENCH_SEED, repetitions=3)


def test_runtime_table(benchmark, report):
    # kernel: the cheapest cell (EMTS5 / Strassen / Grelon)
    ptg = generate_strassen(rng=BENCH_SEED)
    cluster = grelon()
    table = TimeTable.build(SyntheticModel(), ptg, cluster)
    benchmark.pedantic(
        lambda: emts5().schedule(ptg, cluster, table, rng=BENCH_SEED),
        rounds=3,
        iterations=1,
    )

    def cell(variant, platform, workload):
        return report.cell(variant, platform, workload).mean_seconds

    # structure of the paper's table
    assert cell("emts5", "chti", "100-node") > cell(
        "emts5", "chti", "strassen"
    )
    assert cell("emts5", "grelon", "100-node") > cell(
        "emts5", "grelon", "strassen"
    )
    assert cell("emts10", "grelon", "100-node") > cell(
        "emts5", "grelon", "100-node"
    )
    assert cell("emts10", "grelon", "strassen") > cell(
        "emts5", "grelon", "strassen"
    )

    write_result("e7_runtime.txt", report.render())
