"""E1 / Figure 1 — PDGEMM-like non-monotone execution times.

Regenerates the two timing curves (matrix sizes 1024 and 2048, 1-32
processors), asserts the paper's qualitative point — execution time is
NOT monotonically decreasing in the processor count — and benchmarks the
model evaluation itself.
"""

import numpy as np

from repro.experiments.figures import generate_figure1
from repro.timemodels import pdgemm_time

from .conftest import write_result


def test_figure1_curves(benchmark):
    fig = benchmark(generate_figure1)

    # the headline property of the paper's Figure 1
    assert fig.non_monotone(1024)
    assert fig.non_monotone(2048)

    # time still broadly decreases: using the whole range beats serial
    for n in fig.matrix_sizes:
        assert fig.times[n][-1] < fig.times[n][0]

    # spikes occur at degenerate-grid counts (primes)
    assert set(fig.spikes(2048)) & {5, 7, 11, 13, 17, 19}

    write_result("figure1.txt", fig.render())


def test_pdgemm_model_kernel(benchmark):
    """Throughput of one model evaluation (used inside time tables)."""

    def evaluate_curve():
        return [pdgemm_time(2048, p) for p in range(1, 33)]

    times = benchmark(evaluate_curve)
    assert all(t > 0 for t in times)
