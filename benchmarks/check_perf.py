#!/usr/bin/env python
"""Compare a pytest-benchmark JSON run against the committed baseline.

Usage
-----
Check a fresh run (exit code 1 on regression)::

    python -m pytest benchmarks/test_kernels.py \
        --benchmark-json=bench.json
    python benchmarks/check_perf.py bench.json

Refresh the committed baseline from a run::

    python benchmarks/check_perf.py bench.json --update

A kernel regresses when its mean time exceeds ``baseline * max-ratio``
(default 2.0, overridable via ``--max-ratio`` or the
``REPRO_PERF_MAX_RATIO`` environment variable).  Kernels present in the
run but missing from the baseline are reported and added on
``--update``; kernels missing from the run are ignored (so the check
can run on a benchmark subset).

The baseline records *mean seconds per kernel* plus the machine info of
the host that produced it.  Absolute timings move with hardware, which
is why the gate is a generous ratio rather than an equality: it catches
algorithmic regressions (the hot path growing a new O(n) factor), not
single-digit-percent noise.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).resolve().parent / "perf_baseline.json"
DEFAULT_MAX_RATIO = 2.0


def load_means(run_path: Path) -> dict[str, float]:
    """Kernel-name -> mean-seconds from a pytest-benchmark JSON file."""
    data = json.loads(run_path.read_text(encoding="utf-8"))
    means: dict[str, float] = {}
    for bench in data.get("benchmarks", []):
        means[bench["name"]] = float(bench["stats"]["mean"])
    if not means:
        raise SystemExit(
            f"{run_path}: no benchmarks found — was the run executed "
            "with --benchmark-json?"
        )
    return means


def update_baseline(
    run_path: Path, baseline_path: Path
) -> None:
    data = json.loads(run_path.read_text(encoding="utf-8"))
    baseline = {
        "comment": (
            "Committed perf baseline for the CI perf-smoke job; "
            "refresh with: python benchmarks/check_perf.py "
            "<run.json> --update"
        ),
        "machine_info": {
            "node": data.get("machine_info", {}).get("node", "unknown"),
            "cpu_count": os.cpu_count(),
        },
        "means": load_means(run_path),
    }
    baseline_path.write_text(
        json.dumps(baseline, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(
        f"wrote {len(baseline['means'])} kernel baselines -> "
        f"{baseline_path}"
    )


def check(
    run_path: Path, baseline_path: Path, max_ratio: float
) -> int:
    if not baseline_path.exists():
        print(
            f"no baseline at {baseline_path}; create one with --update",
            file=sys.stderr,
        )
        return 1
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    base_means: dict[str, float] = baseline["means"]
    run_means = load_means(run_path)

    failures: list[str] = []
    new_kernels: list[str] = []
    width = max(len(n) for n in run_means)
    print(
        f"{'kernel':<{width}}  {'baseline':>12}  {'current':>12}  "
        f"{'ratio':>7}"
    )
    for name in sorted(run_means):
        current = run_means[name]
        base = base_means.get(name)
        if base is None:
            new_kernels.append(name)
            print(
                f"{name:<{width}}  {'(new)':>12}  "
                f"{current * 1e3:>10.3f}ms  {'-':>7}"
            )
            continue
        ratio = current / base
        flag = "  << REGRESSION" if ratio > max_ratio else ""
        print(
            f"{name:<{width}}  {base * 1e3:>10.3f}ms  "
            f"{current * 1e3:>10.3f}ms  {ratio:>6.2f}x{flag}"
        )
        if ratio > max_ratio:
            failures.append(name)

    if new_kernels:
        print(
            f"\n{len(new_kernels)} kernel(s) missing from the "
            "baseline; run with --update to record them."
        )
    if failures:
        print(
            f"\nFAIL: {len(failures)} kernel(s) slower than "
            f"{max_ratio:.1f}x baseline: {', '.join(failures)}",
            file=sys.stderr,
        )
        return 1
    print(f"\nOK: all kernels within {max_ratio:.1f}x of baseline")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "run", type=Path, help="pytest-benchmark JSON output"
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help="committed baseline JSON (default: benchmarks/perf_baseline.json)",
    )
    parser.add_argument(
        "--max-ratio",
        type=float,
        default=float(
            os.environ.get("REPRO_PERF_MAX_RATIO", DEFAULT_MAX_RATIO)
        ),
        help="fail when current mean exceeds baseline * ratio",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline from this run instead of checking",
    )
    args = parser.parse_args(argv)
    if args.update:
        update_baseline(args.run, args.baseline)
        return 0
    return check(args.run, args.baseline, args.max_ratio)


if __name__ == "__main__":
    sys.exit(main())
