#!/usr/bin/env python
"""Compare a pytest-benchmark JSON run against the committed baseline.

Usage
-----
Check a fresh run (exit code 1 on regression)::

    python -m pytest benchmarks/test_kernels.py \
        --benchmark-json=bench.json
    python benchmarks/check_perf.py bench.json

Refresh the committed baseline from a run::

    python benchmarks/check_perf.py bench.json --update

A kernel regresses when its mean time exceeds ``baseline * max-ratio``
(default 2.0, overridable via ``--max-ratio`` or the
``REPRO_PERF_MAX_RATIO`` environment variable).  Kernels present in the
run but missing from the baseline are reported and added on
``--update``; kernels missing from the run are ignored (so the check
can run on a benchmark subset).

The baseline records *mean seconds per kernel* plus the machine info of
the host that produced it.  Absolute timings move with hardware, which
is why the gate is a generous ratio rather than an equality: it catches
algorithmic regressions (the hot path growing a new O(n) factor), not
single-digit-percent noise.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).resolve().parent / "perf_baseline.json"
DEFAULT_MAX_RATIO = 2.0
#: Observability promise: instrumentation that is *disabled* may cost
#: at most this much of hot-path wall time (percent).
DEFAULT_MAX_OBS_OVERHEAD = 2.0
#: Batch promise: population-at-once evaluation must beat per-genome
#: single calls by this much on the compiled engine (same-run ratio).
DEFAULT_MIN_BATCH_SPEEDUP = 5.0
#: ... and on the numpy fallback it must at least never be slower.
DEFAULT_MIN_BATCH_SPEEDUP_NUMPY = 1.0
#: Pinned floor: the committed batch mean must keep this speedup over
#: the frozen pre-batch-kernel measurement (committed file only, so it
#: cannot flake on slower CI hosts).
MIN_PINNED_BATCH_SPEEDUP = 3.0
#: Service promise: an exact repeat request (cross-request result
#: cache) must beat a cold start by this much, same run, same host.
DEFAULT_MIN_SERVICE_WARM_SPEEDUP = 10.0
#: Latency budgets (ms) used when a BENCH_service.json predates the
#: pinned ``budgets`` section; the committed file's own pinned budgets
#: take precedence and a refresh never relaxes them.
SERVICE_BUDGET_DEFAULTS: dict[str, float] = {
    "p99_ms": 5000.0,
    "warm_p99_ms": 500.0,
}
#: Online reactive-runtime budgets (ms per reschedule reaction) used
#: when a BENCH_online.json predates the pinned ``budgets`` section;
#: the committed file's own pinned budgets take precedence and a
#: refresh never relaxes them.
ONLINE_BUDGET_DEFAULTS: dict[str, float] = {
    "reaction_p50_ms": 100.0,
    "reaction_p99_ms": 500.0,
}
#: Kill-restart recovery budgets (ms restart-to-serving) used when a
#: BENCH_recovery.json predates the pinned ``budgets`` section; the
#: committed file's own pinned budgets take precedence and a refresh
#: never relaxes them.
RECOVERY_BUDGET_DEFAULTS: dict[str, float] = {
    "restart_p99_ms": 10000.0,
}

# Same-run speedup gates: (fast kernel, reference kernel, committed
# floor, fresh-run floor).  Both engines are measured in the same run
# on the same host, so the ratio is robust to hardware differences;
# the floors sit below the recorded speedup to absorb scheduler noise.
SPEEDUP_GATES: list[tuple[str, str, float, float]] = [
    (
        "test_kernel_fitness_evaluation",
        "test_kernel_fitness_reference",
        2.5,
        2.5,
    ),
]

# Pinned speedup gates: (pinned key, kernel, floor).  The ``pinned``
# section of the baseline freezes a mean measured *before* an
# optimization landed, on the machine that produced the baseline; the
# gate asserts the committed baseline's kernel mean keeps the promised
# speedup against it.  Checked from the committed file alone (no
# re-measurement), so it cannot flake on slower CI hosts — and it
# stops a baseline refresh from quietly absorbing a regression.
# ``pre_pr_fitness_mean`` is test_kernel_fitness_evaluation as
# committed before the compiled ScheduleKernel existed (reference
# engine, same benchmark, same machine).
PINNED_GATES: list[tuple[str, str, float]] = [
    ("pre_pr_fitness_mean", "test_kernel_fitness_evaluation", 3.0),
]
PINNED_DEFAULTS: dict[str, float] = {
    "pre_pr_fitness_mean": 0.001220367897901581,
}


def load_means(run_path: Path) -> dict[str, float]:
    """Kernel-name -> mean-seconds from a pytest-benchmark JSON file."""
    data = json.loads(run_path.read_text(encoding="utf-8"))
    means: dict[str, float] = {}
    for bench in data.get("benchmarks", []):
        means[bench["name"]] = float(bench["stats"]["mean"])
    if not means:
        raise SystemExit(
            f"{run_path}: no benchmarks found — was the run executed "
            "with --benchmark-json?"
        )
    return means


def update_baseline(
    run_path: Path, baseline_path: Path
) -> None:
    data = json.loads(run_path.read_text(encoding="utf-8"))
    # pinned values survive refreshes: they anchor speedup promises to
    # pre-optimization measurements and must never track the new run
    pinned = dict(PINNED_DEFAULTS)
    if baseline_path.exists():
        previous = json.loads(baseline_path.read_text(encoding="utf-8"))
        pinned.update(previous.get("pinned", {}))
    baseline = {
        "comment": (
            "Committed perf baseline for the CI perf-smoke job; "
            "refresh with: python benchmarks/check_perf.py "
            "<run.json> --update"
        ),
        "machine_info": {
            "node": data.get("machine_info", {}).get("node", "unknown"),
            "cpu_count": os.cpu_count(),
        },
        "means": load_means(run_path),
        "pinned": pinned,
    }
    baseline_path.write_text(
        json.dumps(baseline, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(
        f"wrote {len(baseline['means'])} kernel baselines -> "
        f"{baseline_path}"
    )
    means = baseline["means"]
    for fast, ref, committed_floor, _ in SPEEDUP_GATES:
        if fast in means and ref in means:
            ratio = means[ref] / means[fast]
            note = (
                ""
                if ratio >= committed_floor
                else f"  (below the {committed_floor:.1f}x gate — "
                "CI will reject this baseline)"
            )
            print(
                f"recorded speedup {ref}/{fast}: {ratio:.2f}x{note}"
            )
    for key, fast, floor in PINNED_GATES:
        if key in pinned and fast in means:
            ratio = pinned[key] / means[fast]
            note = (
                ""
                if ratio >= floor
                else f"  (below the {floor:.1f}x gate — CI will "
                "reject this baseline)"
            )
            print(
                f"recorded speedup {key}/{fast}: {ratio:.2f}x{note}"
            )


def check_speedups(
    base_means: dict[str, float], run_means: dict[str, float]
) -> list[str]:
    """Enforce the compiled-kernel speedup gates.

    Returns the list of failed gate labels (empty when all hold).  A
    gate is skipped — with a notice — when its benchmarks are absent
    from the respective source, so subset runs stay usable.
    """
    failures: list[str] = []
    for fast, ref, committed_floor, run_floor in SPEEDUP_GATES:
        label = f"{ref}/{fast}"
        for means, floor, source in (
            (base_means, committed_floor, "baseline"),
            (run_means, run_floor, "this run"),
        ):
            if fast not in means or ref not in means:
                print(
                    f"speedup gate {label}: not measured in {source}, "
                    "skipped"
                )
                continue
            ratio = means[ref] / means[fast]
            ok = ratio >= floor
            verdict = "ok" if ok else "<< TOO SLOW"
            print(
                f"speedup gate {label} ({source}): {ratio:.2f}x "
                f"(floor {floor:.1f}x) {verdict}"
            )
            if not ok:
                failures.append(f"{label}@{source}")
    return failures


def check_pinned(
    pinned: dict[str, float], base_means: dict[str, float]
) -> list[str]:
    """Enforce the pinned speedup gates on the committed baseline."""
    failures: list[str] = []
    for key, fast, floor in PINNED_GATES:
        label = f"{key}/{fast}"
        if key not in pinned or fast not in base_means:
            print(f"pinned gate {label}: not recorded, skipped")
            continue
        ratio = pinned[key] / base_means[fast]
        ok = ratio >= floor
        verdict = "ok" if ok else "<< TOO SLOW"
        print(
            f"pinned gate {label}: {ratio:.2f}x "
            f"(floor {floor:.1f}x) {verdict}"
        )
        if not ok:
            failures.append(f"{label}@pinned")
    return failures


def check_obs(obs_path: Path, max_overhead: float) -> int:
    """Enforce the observability gates on a ``BENCH_obs.json`` file.

    The hard gate is ``disabled_overhead_pct`` < ``max_overhead``
    (percent; the ISSUE's <2 % promise).  The throughput numbers are
    sanity-checked to be positive so an empty or failed benchmark run
    cannot pass silently.
    """
    data = json.loads(obs_path.read_text(encoding="utf-8"))
    failures: list[str] = []
    overhead = float(data["disabled_overhead_pct"])
    ok = overhead < max_overhead
    verdict = "ok" if ok else "<< TOO SLOW"
    print(
        f"obs gate disabled_overhead_pct: {overhead:+.3f}% "
        f"(max {max_overhead:.1f}%) {verdict}"
    )
    if not ok:
        failures.append("disabled_overhead_pct")
    for key in ("fitness_evals_per_sec", "batch_evals_per_sec"):
        value = float(data.get(key, 0.0))
        ok = value > 0
        print(
            f"obs gate {key}: {value:,.0f}/s "
            f"{'ok' if ok else '<< NOT MEASURED'}"
        )
        if not ok:
            failures.append(key)
    if failures:
        print(
            f"\nFAIL: {len(failures)} observability gate(s) failed: "
            f"{', '.join(failures)}",
            file=sys.stderr,
        )
        return 1
    print("\nOK: observability overhead within budget")
    return 0


def check_batch(batch_path: Path, min_speedup: float | None) -> int:
    """Enforce the batch-evaluation gates on a ``BENCH_batch.json``.

    Three gates:

    * ``batch_speedup_x`` (same-run single-call / population-at-once
      ratio) must reach ``min_speedup`` — default >= 5x on the
      compiled engine, >= 1x on the numpy fallback (which only saves
      Python dispatch, not the FFI crossing).
    * the recorded ``batch_us_per_genome`` must keep a >=
      ``MIN_PINNED_BATCH_SPEEDUP`` speedup over the pinned
      pre-optimization mean (committed-file comparison: both numbers
      come from the baseline host, so a slow CI runner cannot flake
      it — and a baseline refresh cannot quietly absorb a regression).
    * ``island_identical`` must be true: same-seed EMTS island runs
      are bit-identical across execution shard counts.
    """
    data = json.loads(batch_path.read_text(encoding="utf-8"))
    failures: list[str] = []
    engine = data.get("engine", "unknown")
    if min_speedup is None:
        min_speedup = (
            DEFAULT_MIN_BATCH_SPEEDUP
            if engine == "c"
            else DEFAULT_MIN_BATCH_SPEEDUP_NUMPY
        )
    speedup = float(data["batch_speedup_x"])
    ok = speedup >= min_speedup
    verdict = "ok" if ok else "<< TOO SLOW"
    print(
        f"batch gate batch_speedup_x ({engine} engine): "
        f"{speedup:.2f}x (floor {min_speedup:.1f}x) {verdict}"
    )
    if not ok:
        failures.append("batch_speedup_x")
    pinned = data.get("pinned", {})
    pre = pinned.get("pre_batch_us_per_genome")
    batch_us = float(data.get("batch_us_per_genome", 0.0))
    if pre is None or batch_us <= 0:
        print("batch gate pre_batch_us_per_genome: not recorded, skipped")
    elif engine != "c":
        print(
            "batch gate pre_batch_us_per_genome: numpy engine, skipped"
        )
    else:
        ratio = float(pre) / batch_us
        ok = ratio >= MIN_PINNED_BATCH_SPEEDUP
        verdict = "ok" if ok else "<< TOO SLOW"
        print(
            f"batch gate pre_batch/batch (pinned): {ratio:.2f}x "
            f"(floor {MIN_PINNED_BATCH_SPEEDUP:.1f}x) {verdict}"
        )
        if not ok:
            failures.append("pre_batch_us_per_genome")
    identical = bool(data.get("island_identical", False))
    makespans = data.get("island_makespans", {})
    print(
        f"batch gate island_identical: {identical} "
        f"(shards {sorted(makespans)}) "
        f"{'ok' if identical else '<< DIVERGED'}"
    )
    if not identical:
        failures.append("island_identical")
    if failures:
        print(
            f"\nFAIL: {len(failures)} batch gate(s) failed: "
            f"{', '.join(failures)}",
            file=sys.stderr,
        )
        return 1
    print("\nOK: batch speedup and island identity gates hold")
    return 0


def check_service(
    service_path: Path, min_warm_speedup: float | None
) -> int:
    """Enforce the scheduling-service gates on a ``BENCH_service.json``.

    Four gates:

    * ``warm_over_cold_x`` — an exact repeat request (served from the
      cross-request result cache) must beat a cold start (table +
      kernel + full EMTS run) by >= 10x.  Same-run ratio, so hardware
      differences cancel.
    * latency budgets — ``p99_ms`` (whole concurrent mixed load) and
      ``warm_p99_ms`` (quiescent repeats) must stay within the pinned
      ``budgets`` committed in the file; a baseline refresh never
      relaxes them.
    * cache integrity — the daemon's own counters must show every
      repeat request served from the result cache, and every
      submitted job completed.
    * liveness — the mixed load must have measured a positive
      throughput over a non-trivial request count.
    """
    data = json.loads(service_path.read_text(encoding="utf-8"))
    failures: list[str] = []
    if min_warm_speedup is None:
        min_warm_speedup = DEFAULT_MIN_SERVICE_WARM_SPEEDUP
    budgets = dict(SERVICE_BUDGET_DEFAULTS)
    budgets.update(data.get("budgets", {}))

    speedup = float(data["warm_over_cold_x"])
    ok = speedup >= min_warm_speedup
    print(
        f"service gate warm_over_cold_x: {speedup:.1f}x "
        f"(floor {min_warm_speedup:.1f}x) "
        f"{'ok' if ok else '<< TOO SLOW'}"
    )
    if not ok:
        failures.append("warm_over_cold_x")

    for key in ("p99_ms", "warm_p99_ms"):
        value = float(data[key])
        budget = float(budgets[key])
        ok = value <= budget
        print(
            f"service gate {key}: {value:.1f} ms "
            f"(budget {budget:.0f} ms) "
            f"{'ok' if ok else '<< OVER BUDGET'}"
        )
        if not ok:
            failures.append(key)

    server = data.get("server", {})
    repeats = int(data.get("repeat_requests", 0))
    cache_hits = int(server.get("result_cache_hits", 0))
    ok = repeats > 0 and cache_hits >= repeats
    print(
        f"service gate result-cache integrity: {cache_hits} hits for "
        f"{repeats} repeat requests "
        f"{'ok' if ok else '<< CACHE MISSED REPEATS'}"
    )
    if not ok:
        failures.append("result_cache_integrity")
    submitted = int(server.get("jobs_submitted", 0))
    completed = int(server.get("jobs_completed", 0))
    ok = submitted > 0 and completed == submitted
    print(
        f"service gate completion: {completed}/{submitted} jobs "
        f"completed {'ok' if ok else '<< LOST JOBS'}"
    )
    if not ok:
        failures.append("completion")

    rps = float(data.get("requests_per_sec", 0.0))
    total = int(data.get("requests_total", 0))
    ok = rps > 0 and total >= 50
    print(
        f"service gate liveness: {total} requests at {rps:.0f} req/s "
        f"{'ok' if ok else '<< NO LOAD MEASURED'}"
    )
    if not ok:
        failures.append("liveness")

    if failures:
        print(
            f"\nFAIL: {len(failures)} service gate(s) failed: "
            f"{', '.join(failures)}",
            file=sys.stderr,
        )
        return 1
    print("\nOK: service warm-cache speedup and latency budgets hold")
    return 0


def check_online(online_path: Path) -> int:
    """Enforce the online-runtime gates on a ``BENCH_online.json``.

    Five gates:

    * zero-fault identity — executing a faultless plan online must
      reproduce the static simulator's makespan bit for bit across
      every paper-corpus class; the whole reactive runtime hangs off
      this equivalence.
    * determinism — the same fault seeds replayed twice must yield
      identical canonical traces and makespans.
    * reaction latency — per-reschedule wall-clock p50/p99 must stay
      within the pinned ``budgets`` committed in the file; a baseline
      refresh never relaxes them.
    * verification — every run that produced an as-executed schedule
      must have passed :class:`ScheduleVerifier` checks.
    * liveness — the battery must actually have exercised the
      recovery ladder (faults injected, reschedules applied, latency
      samples collected).
    """
    data = json.loads(online_path.read_text(encoding="utf-8"))
    failures: list[str] = []
    budgets = dict(ONLINE_BUDGET_DEFAULTS)
    budgets.update(data.get("budgets", {}))

    identical = bool(data.get("zero_fault_identical", False))
    cases = int(data.get("zero_fault_cases", 0))
    ok = identical and cases >= 4
    print(
        f"online gate zero-fault identity: {cases} cases "
        f"{'ok' if ok else '<< IDENTITY BROKEN'}"
    )
    if not ok:
        failures.append("zero_fault_identity")

    deterministic = bool(data.get("determinism_identical", False))
    print(
        f"online gate same-seed determinism: "
        f"{'ok' if deterministic else '<< NONDETERMINISTIC'}"
    )
    if not deterministic:
        failures.append("determinism")

    for key in ("reaction_p50_ms", "reaction_p99_ms"):
        value = float(data[key])
        budget = float(budgets[key])
        ok = value <= budget
        print(
            f"online gate {key}: {value:.2f} ms "
            f"(budget {budget:.0f} ms) "
            f"{'ok' if ok else '<< OVER BUDGET'}"
        )
        if not ok:
            failures.append(key)

    unverified = int(data.get("unverified_runs", 0))
    ok = unverified == 0
    print(
        f"online gate verification: {unverified} unverified runs "
        f"{'ok' if ok else '<< UNVERIFIED SCHEDULES'}"
    )
    if not ok:
        failures.append("verification")

    runs = int(data.get("runs", 0))
    reschedules = int(data.get("reschedules_total", 0))
    samples = int(data.get("reaction_samples", 0))
    faults = int(data.get("faults_total", 0))
    ok = runs >= 10 and faults > 0 and reschedules > 0 and samples > 0
    print(
        f"online gate liveness: {runs} runs, {faults} faults, "
        f"{reschedules} reschedules, {samples} latency samples "
        f"{'ok' if ok else '<< NO REACTIONS MEASURED'}"
    )
    if not ok:
        failures.append("liveness")

    if failures:
        print(
            f"\nFAIL: {len(failures)} online gate(s) failed: "
            f"{', '.join(failures)}",
            file=sys.stderr,
        )
        return 1
    print(
        "\nOK: online zero-fault identity, determinism and "
        "reaction-latency budgets hold"
    )
    return 0


def check_recovery(recovery_path: Path) -> int:
    """Enforce the exactly-once gates on a ``BENCH_recovery.json``.

    Four gates:

    * no-loss — every job the client got an ack for reached ``done``
      after the kill-restart cycles (``jobs_lost == 0``).
    * no-duplicate — no idempotency key ever owned more than one spool
      record (``jobs_duplicated == 0``): retries after lost acks were
      answered by the original job, never by a twin.
    * bit-identity — the per-cycle reference request produced the same
      result document in every cycle, crashes notwithstanding.
    * restart latency — restart-to-serving p99 (process start + spool
      recovery until ``/healthz``) must stay within the pinned
      ``budgets`` committed in the file; a refresh never relaxes them.

    Plus liveness: at least 3 crash cycles with acked jobs.
    """
    data = json.loads(recovery_path.read_text(encoding="utf-8"))
    failures: list[str] = []
    budgets = dict(RECOVERY_BUDGET_DEFAULTS)
    budgets.update(data.get("budgets", {}))

    lost = int(data.get("jobs_lost", -1))
    ok = lost == 0
    print(
        f"recovery gate no-loss: {lost} acked job(s) lost "
        f"{'ok' if ok else '<< ACKED JOBS LOST'}"
    )
    if not ok:
        failures.append("no_loss")

    duplicated = int(data.get("jobs_duplicated", -1))
    ok = duplicated == 0
    print(
        f"recovery gate no-duplicate: {duplicated} duplicated key(s) "
        f"{'ok' if ok else '<< DUPLICATE EXECUTION'}"
    )
    if not ok:
        failures.append("no_duplicate")

    identical = bool(data.get("results_identical", False))
    print(
        f"recovery gate bit-identity: reference results "
        f"{'identical ok' if identical else '<< RESULTS DIVERGED'}"
    )
    if not identical:
        failures.append("bit_identity")

    value = float(data["restart_p99_ms"])
    budget = float(budgets["restart_p99_ms"])
    ok = value <= budget
    print(
        f"recovery gate restart_p99_ms: {value:.0f} ms "
        f"(budget {budget:.0f} ms) "
        f"{'ok' if ok else '<< OVER BUDGET'}"
    )
    if not ok:
        failures.append("restart_p99_ms")

    cycles = int(data.get("cycles", 0))
    acked = int(data.get("jobs_acked", 0))
    ok = cycles >= 3 and acked > 0
    print(
        f"recovery gate liveness: {cycles} crash cycles, "
        f"{acked} acked jobs "
        f"{'ok' if ok else '<< NO CRASHES MEASURED'}"
    )
    if not ok:
        failures.append("liveness")

    if failures:
        print(
            f"\nFAIL: {len(failures)} recovery gate(s) failed: "
            f"{', '.join(failures)}",
            file=sys.stderr,
        )
        return 1
    print(
        "\nOK: no acked job lost, no duplicate execution, "
        "bit-identical recovery within the restart budget"
    )
    return 0


def check(
    run_path: Path, baseline_path: Path, max_ratio: float
) -> int:
    if not baseline_path.exists():
        print(
            f"no baseline at {baseline_path}; create one with --update",
            file=sys.stderr,
        )
        return 1
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    base_means: dict[str, float] = baseline["means"]
    run_means = load_means(run_path)

    failures: list[str] = []
    new_kernels: list[str] = []
    width = max(len(n) for n in run_means)
    print(
        f"{'kernel':<{width}}  {'baseline':>12}  {'current':>12}  "
        f"{'ratio':>7}"
    )
    for name in sorted(run_means):
        current = run_means[name]
        base = base_means.get(name)
        if base is None:
            new_kernels.append(name)
            print(
                f"{name:<{width}}  {'(new)':>12}  "
                f"{current * 1e3:>10.3f}ms  {'-':>7}"
            )
            continue
        ratio = current / base
        flag = "  << REGRESSION" if ratio > max_ratio else ""
        print(
            f"{name:<{width}}  {base * 1e3:>10.3f}ms  "
            f"{current * 1e3:>10.3f}ms  {ratio:>6.2f}x{flag}"
        )
        if ratio > max_ratio:
            failures.append(name)

    if new_kernels:
        print(
            f"\n{len(new_kernels)} kernel(s) missing from the "
            "baseline; run with --update to record them."
        )
    failures += check_speedups(base_means, run_means)
    failures += check_pinned(baseline.get("pinned", {}), base_means)
    if failures:
        print(
            f"\nFAIL: {len(failures)} check(s) failed: "
            f"{', '.join(failures)}",
            file=sys.stderr,
        )
        return 1
    print(
        f"\nOK: all kernels within {max_ratio:.1f}x of baseline "
        "and all speedup gates hold"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "run",
        type=Path,
        nargs="?",
        default=None,
        help="pytest-benchmark JSON output",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help="committed baseline JSON (default: benchmarks/perf_baseline.json)",
    )
    parser.add_argument(
        "--max-ratio",
        type=float,
        default=float(
            os.environ.get("REPRO_PERF_MAX_RATIO", DEFAULT_MAX_RATIO)
        ),
        help="fail when current mean exceeds baseline * ratio",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline from this run instead of checking",
    )
    parser.add_argument(
        "--obs",
        type=Path,
        default=None,
        help=(
            "BENCH_obs.json from benchmarks/bench_obs.py; enforces "
            "the <2%% disabled-instrumentation overhead gate"
        ),
    )
    parser.add_argument(
        "--batch",
        type=Path,
        default=None,
        help=(
            "BENCH_batch.json from benchmarks/bench_batch.py; "
            "enforces the >= 5x population-at-once speedup and the "
            "island shard-count bit-identity gates"
        ),
    )
    parser.add_argument(
        "--service",
        type=Path,
        default=None,
        help=(
            "BENCH_service.json from benchmarks/bench_service.py; "
            "enforces the >= 10x warm-over-cold speedup, the pinned "
            "latency budgets and the cache-integrity gates"
        ),
    )
    parser.add_argument(
        "--online",
        type=Path,
        default=None,
        help=(
            "BENCH_online.json from benchmarks/bench_online.py; "
            "enforces the zero-fault bit-identity, same-seed "
            "determinism and pinned reaction-latency gates"
        ),
    )
    parser.add_argument(
        "--recovery",
        type=Path,
        default=None,
        help=(
            "BENCH_recovery.json from benchmarks/bench_recovery.py; "
            "enforces the no-loss / no-duplicate / bit-identity "
            "exactly-once gates and the pinned restart-to-serving "
            "p99 budget"
        ),
    )
    parser.add_argument(
        "--min-service-warm-speedup",
        type=float,
        default=(
            float(os.environ["REPRO_MIN_SERVICE_WARM_SPEEDUP"])
            if "REPRO_MIN_SERVICE_WARM_SPEEDUP" in os.environ
            else None
        ),
        help=(
            "override the service warm-over-cold floor "
            "(default: 10.0)"
        ),
    )
    parser.add_argument(
        "--min-batch-speedup",
        type=float,
        default=(
            float(os.environ["REPRO_MIN_BATCH_SPEEDUP"])
            if "REPRO_MIN_BATCH_SPEEDUP" in os.environ
            else None
        ),
        help=(
            "override the batch speedup floor (default: 5.0 on the "
            "compiled engine, 1.0 on the numpy fallback)"
        ),
    )
    parser.add_argument(
        "--max-obs-overhead",
        type=float,
        default=float(
            os.environ.get(
                "REPRO_OBS_MAX_OVERHEAD", DEFAULT_MAX_OBS_OVERHEAD
            )
        ),
        help="fail when disabled_overhead_pct meets or exceeds this",
    )
    args = parser.parse_args(argv)
    if (
        args.run is None
        and args.obs is None
        and args.batch is None
        and args.service is None
        and args.online is None
        and args.recovery is None
    ):
        parser.error(
            "provide a benchmark run file, --obs, --batch, "
            "--service, --online and/or --recovery"
        )
    if args.update:
        update_baseline(args.run, args.baseline)
        return 0
    rc = 0
    if args.run is not None:
        rc |= check(args.run, args.baseline, args.max_ratio)
    if args.obs is not None:
        rc |= check_obs(args.obs, args.max_obs_overhead)
    if args.batch is not None:
        rc |= check_batch(args.batch, args.min_batch_speedup)
    if args.service is not None:
        rc |= check_service(
            args.service, args.min_service_warm_speedup
        )
    if args.online is not None:
        rc |= check_online(args.online)
    if args.recovery is not None:
        rc |= check_recovery(args.recovery)
    return rc


if __name__ == "__main__":
    sys.exit(main())
