#!/usr/bin/env python
"""Measure the population-at-once batch evaluation speedup.

Writes ``benchmarks/BENCH_batch.json`` (the machine-readable baseline
the CI perf-smoke job regenerates and gates) with:

``single_us_per_genome``
    Mean microseconds per genome when each genome crosses the full
    evaluator stack in its own call — one FFI round-trip (or numpy
    schedule) per genome, the per-genome-overhead-dominated path the
    batch entry point eliminates.
``batch_us_per_genome``
    Mean microseconds per genome when one generation-sized block goes
    through :meth:`FitnessEvaluator.evaluate_batch` in a single call.
``batch_speedup_x``
    ``single / batch`` measured in the *same run* on the same host, so
    the ratio is robust to hardware differences.  Gated at >= 5x on
    the compiled engine (the numpy fallback saves only Python
    dispatch, not the FFI crossing, and is gated at >= 1x).
``engine``
    ``"c"`` when the compiled cffi kernel scored the block, else
    ``"numpy"``.
``island_makespans`` / ``island_identical``
    Same-seed EMTS5 island-mode makespans for ``islands`` in
    {1, 2, 4} — the shard count is a pure execution knob, so the gate
    requires them bit-identical.
``pinned``
    Frozen pre-optimization means that never track a fresh run (same
    idiom as ``perf_baseline.json``): ``pre_batch_us_per_genome`` is
    the *whole-generation* batch path as committed before the
    slot-based native batch scheduler landed, same benchmark, same
    machine.  ``check_perf.py --batch`` asserts the committed
    ``batch_us_per_genome`` keeps a >= 3x speedup against it.

The benchmark problem is the paper's flagship Strassen task graph
(V=23) on the Grelon cluster — the regime the EMTS campaigns spend
their time in, where per-genome call overhead dominates single-call
evaluation.

``python benchmarks/check_perf.py --batch benchmarks/BENCH_batch.json``
enforces the gates.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

sys.path.insert(
    0, str(Path(__file__).resolve().parent.parent / "src")
)

import numpy as np  # noqa: E402

from repro._rng import spawn  # noqa: E402
from repro.core import emts5  # noqa: E402
from repro.core.evaluator import create_evaluator  # noqa: E402
from repro.mapping.kernel import kernel_for  # noqa: E402
from repro.platform import grelon  # noqa: E402
from repro.timemodels import SyntheticModel, TimeTable  # noqa: E402
from repro.workloads import generate_strassen  # noqa: E402

DEFAULT_OUT = Path(__file__).resolve().parent / "BENCH_batch.json"
BENCH_SEED = 20110926
#: genomes per block — one EMTS10 generation of offspring
BLOCK = 100
ISLAND_SHARDS = (1, 2, 4)
#: pre-optimization batch path (whole generation through the evaluator
#: stack, heap-based C scheduler, one FFI call) on the machine that
#: produced the committed baseline — never refreshed from a run
PINNED_DEFAULTS: dict[str, float] = {
    "pre_batch_us_per_genome": 10.06,
}


def _problem():
    ptg = generate_strassen(rng=11)
    cluster = grelon()
    table = TimeTable.build(SyntheticModel(), ptg, cluster)
    kernel_for(table)  # exclude one-off kernel construction
    return ptg, cluster, table


def measure_paths(ptg, table, reps: int = 9) -> tuple[float, float]:
    """(single-call, batch-call) microseconds per genome, best-of-reps.

    Both paths run on the *same* evaluator over the same genome
    blocks, interleaved, so cache state and CPU frequency drift
    cancel.  The single path calls ``evaluate`` once per genome — one
    FFI round-trip each, the per-call overhead the batch entry point
    amortizes across the population.
    """
    evaluator = create_evaluator(ptg, table, workers=0, cache=False)
    rng = spawn(BENCH_SEED, "batch-bench")
    blocks = [
        rng.integers(
            1, table.num_processors + 1, size=(BLOCK, ptg.num_tasks),
            dtype=np.int64,
        )
        for _ in range(reps + 1)
    ]
    # warm-up + bit-identity sanity: both paths must agree exactly
    warm = blocks[-1]
    batch_values = evaluator.evaluate_batch(warm)
    single_values = [evaluator.evaluate([g])[0] for g in warm]
    if batch_values != single_values:
        raise SystemExit(
            "batch and single-call evaluation disagree — refusing to "
            "benchmark a broken kernel"
        )

    t_single = t_batch = float("inf")
    for r in range(reps):
        genomes = list(blocks[r])
        t0 = time.perf_counter()
        for g in genomes:
            evaluator.evaluate([g])
        t_single = min(t_single, time.perf_counter() - t0)
        t0 = time.perf_counter()
        evaluator.evaluate_batch(blocks[r])
        t_batch = min(t_batch, time.perf_counter() - t0)
    evaluator.close()
    scale = 1e6 / BLOCK
    return t_single * scale, t_batch * scale


def measure_island_identity(ptg, cluster, table) -> dict:
    """Same-seed EMTS5 makespans across island execution shard counts."""
    makespans = {}
    for shards in ISLAND_SHARDS:
        result = emts5(islands=shards).schedule(
            ptg, cluster, table, rng=BENCH_SEED
        )
        makespans[str(shards)] = result.makespan
    values = set(makespans.values())
    return {
        "island_makespans": makespans,
        "island_identical": len(values) == 1,
    }


def run(out_path: Path) -> dict:
    ptg, cluster, table = _problem()
    engine = kernel_for(table).engine
    print(f"engine: {engine}")
    print("measuring single-call vs batch evaluation ...")
    single_us, batch_us = measure_paths(ptg, table)
    speedup = single_us / batch_us
    print(
        f"  single {single_us:.2f} us/genome, batch "
        f"{batch_us:.2f} us/genome -> {speedup:.2f}x"
    )
    print("checking island shard-count bit-identity ...")
    islands = measure_island_identity(ptg, cluster, table)
    verdict = "identical" if islands["island_identical"] else "DIVERGED"
    print(f"  islands {ISLAND_SHARDS}: {verdict}")
    # pinned values survive refreshes (see perf_baseline.json idiom)
    pinned = dict(PINNED_DEFAULTS)
    if out_path.exists():
        previous = json.loads(out_path.read_text(encoding="utf-8"))
        pinned.update(previous.get("pinned", {}))
    result = {
        "comment": (
            "Batch-evaluation perf baseline; regenerate with: "
            "python benchmarks/bench_batch.py  — gated by "
            "check_perf.py --batch (>= 5x single/batch on the "
            "compiled engine, >= 3x over the pinned pre-batch path, "
            "island shard counts bit-identical)"
        ),
        "engine": engine,
        "single_us_per_genome": single_us,
        "batch_us_per_genome": batch_us,
        "batch_speedup_x": speedup,
        **islands,
        "pinned": pinned,
        "machine_info": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
        },
    }
    out_path.write_text(
        json.dumps(result, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"wrote {out_path}")
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=DEFAULT_OUT,
        help="output JSON path (default: benchmarks/BENCH_batch.json)",
    )
    args = parser.parse_args(argv)
    run(args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
