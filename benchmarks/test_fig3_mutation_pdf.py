"""E3 / Figure 3 — the probability density of the mutation operator.

Samples the Eq. 1 operator at the paper's parameters (sigma_1 = sigma_2
= 5, a = 0.2), verifies the distribution against the closed form, and
benchmarks the sampling kernel (it runs inside every EA generation).
"""

import numpy as np

from repro._rng import spawn
from repro.core import sample_adjustments
from repro.experiments.figures import generate_figure3

from .conftest import BENCH_SEED, write_result


def test_figure3_distribution(benchmark):
    fig = benchmark(
        generate_figure3, samples=300_000, rng=BENCH_SEED
    )

    # empirical distribution matches the analytic Eq. 1 pmf
    assert fig.max_abs_error < 0.01

    # the paper's design constraints on the operator:
    # (1) allocations shrink with probability a = 0.2
    assert abs(fig.shrink_mass - 0.2) < 0.01
    # (2) no mutation is a no-op (P[C = 0] = 0)
    assert fig.empirical[fig.support == 0].sum() == 0.0
    # (3) small steps dominate large ones
    small = fig.empirical[np.abs(fig.support) <= 3].sum()
    large = fig.empirical[np.abs(fig.support) >= 10].sum()
    assert small > 3 * large

    write_result("figure3.txt", fig.render())


def test_mutation_sampling_kernel(benchmark):
    """Raw operator throughput (called once per offspring allele)."""
    rng = spawn(BENCH_SEED, "bench", "fig3")
    draws = benchmark(sample_adjustments, 10_000, rng)
    assert np.all(draws != 0)
