"""Shared configuration for the benchmark/experiment suite.

Every paper artifact (Figures 1-6 and the Section V runtime table) has
one module here that (a) regenerates the artifact's data, (b) asserts
the paper's qualitative findings hold, (c) benchmarks the representative
computational kernel with pytest-benchmark, and (d) writes the rendered
artifact into ``results/``.

Corpus sizes are controlled by the ``REPRO_BENCH_SCALE`` environment
variable (default: a small smoke scale so the suite completes in
minutes).  ``REPRO_BENCH_SCALE=1.0`` reproduces the paper's full corpus
(400 FFT + 100 Strassen + layered/irregular PTGs on both platforms) and
takes on the order of an hour.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

#: Root seed for every benchmark experiment (reproducible).
BENCH_SEED = 20110926

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def bench_scale(default: float) -> float:
    """Corpus scale from the environment, else ``default``."""
    raw = os.environ.get("REPRO_BENCH_SCALE")
    if raw is None:
        return default
    scale = float(raw)
    if not (0.0 < scale <= 1.0):
        raise ValueError(
            f"REPRO_BENCH_SCALE must lie in (0, 1], got {raw}"
        )
    return scale


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory collecting the regenerated artifacts."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


def write_result(name: str, content: str) -> Path:
    """Persist one rendered artifact under results/."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(content, encoding="utf-8")
    return path
