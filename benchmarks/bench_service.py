#!/usr/bin/env python
"""Latency-gated load harness for the scheduling service.

Starts a real ``SchedulingService`` daemon (in-process, ephemeral port)
and drives it with N concurrent HTTP clients over a repeated/fresh
request mix, then writes ``benchmarks/BENCH_service.json`` — the
machine-readable baseline the CI service job regenerates and gates via
``check_perf.py --service``:

``cold_ms`` / ``warm_ms``
    Median client-observed latency of first-time requests (table +
    kernel build + full EMTS run) vs exact repeats (served from the
    cross-request result cache without touching the queue).  Both are
    measured sequentially against an otherwise idle daemon so the
    ratio compares like with like; the mixed-load phase separately
    captures behavior under contention.
``warm_over_cold_x``
    ``cold / warm``, measured in the *same run* on the same host, so
    the ratio survives hardware differences.  Gated at >= 10x: a
    repeat request must come back an order of magnitude faster than a
    cold start.
``p50_ms`` / ``p99_ms`` / ``warm_p99_ms`` / ``loaded_warm_p99_ms``
    Client-observed latency percentiles over the whole concurrent
    mixed load and over warm repeats (quiescent and loaded); gated
    against the pinned ``budgets`` (committed values that a refresh
    never overwrites).
``requests_per_sec``
    Completed requests over the mixed-load wall time.
``server``
    The daemon's own view (Prometheus counters): result-cache and
    warm-tier hits/misses and queue metrics — ``check_perf.py``
    cross-checks that every repeat was actually served from cache.

The workload: ``--problems`` distinct requests are submitted once
(cold phase), then ``--clients`` threads fire ``--requests`` calls
each, seven of eight repeating a known request and one in eight a
fresh seed (the mix keeps workers busy while repeats measure the cache
path).

``python benchmarks/check_perf.py --service benchmarks/BENCH_service.json``
enforces the gates.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import platform
import statistics
import sys
import threading
import time
from pathlib import Path

sys.path.insert(
    0, str(Path(__file__).resolve().parent.parent / "src")
)

from repro.graph import ptg_to_dict  # noqa: E402
from repro.mapping import _cscheduler  # noqa: E402
from repro.service import SchedulingService, ServiceClient  # noqa: E402
from repro.workloads import generate_fft  # noqa: E402

DEFAULT_OUT = Path(__file__).resolve().parent / "BENCH_service.json"
#: latency budgets are pinned: regenerating the baseline never relaxes
#: them (same idiom as perf_baseline.json's pinned section)
BUDGET_DEFAULTS: dict[str, float] = {
    "p99_ms": 5000.0,
    "warm_p99_ms": 500.0,
}


def make_doc(seed: int) -> dict:
    # generations=40 makes the cold path a realistic multi-generation
    # run; repeats skip all of it, so the warm/cold contrast is real
    return {
        "ptg": ptg_to_dict(generate_fft(8, rng=7)),
        "platform": "chti",
        "model": "amdahl",
        "algorithm": "emts5",
        "seed": seed,
        "generations": 40,
    }


def start_service(workers: int) -> tuple[SchedulingService, threading.Thread]:
    service = SchedulingService(port=0, workers=workers)
    ready = threading.Event()

    def run():
        async def main():
            await service.start()
            ready.set()
            await service._drained.wait()

        asyncio.run(main())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    if not ready.wait(timeout=30):
        raise SystemExit("service did not start")
    return service, thread


def percentile(samples: list[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    idx = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[idx]


def parse_prometheus(text: str) -> dict[str, float]:
    values: dict[str, float] = {}
    for line in text.splitlines():
        if line.startswith("#") or not line.strip():
            continue
        parts = line.split()
        if len(parts) == 2 and "{" not in parts[0]:
            try:
                values[parts[0]] = float(parts[1])
            except ValueError:
                continue
    return values


def run(
    out_path: Path,
    *,
    clients: int,
    requests: int,
    problems: int,
    workers: int,
    results_txt: Path | None = None,
) -> dict:
    engine = "numpy" if _cscheduler.load()[0] is None else "c"
    print(f"engine: {engine}")
    service, thread = start_service(workers)
    port = service.bound_port
    print(
        f"daemon up on port {port}: {workers} workers, "
        f"{clients} clients x {requests} requests, "
        f"{problems} distinct problems"
    )
    try:
        client = ServiceClient(port=port, timeout=60.0)

        # -- cold phase: every distinct request once ------------------
        cold_ms: list[float] = []
        for seed in range(problems):
            t0 = time.perf_counter()
            doc = client.schedule(make_doc(seed), timeout=120)
            cold_ms.append((time.perf_counter() - t0) * 1e3)
            assert doc["job"]["state"] == "done", doc
        print(
            f"cold: median {statistics.median(cold_ms):.1f} ms over "
            f"{len(cold_ms)} first-time requests"
        )

        # -- mixed load: 7/8 repeats, 1/8 fresh seeds -----------------
        all_ms: list[list[float]] = [[] for _ in range(clients)]
        warm_ms: list[list[float]] = [[] for _ in range(clients)]
        errors: list[str] = []
        fresh_base = problems  # fresh seeds must stay unique
        repeat_requests = 0
        lock = threading.Lock()

        def worker(ci: int) -> None:
            nonlocal repeat_requests
            c = ServiceClient(port=port, timeout=60.0)
            my_repeats = 0
            for r in range(requests):
                fresh = (r % 8) == 7
                if fresh:
                    seed = fresh_base + ci * requests + r
                else:
                    seed = (ci + r) % problems
                    my_repeats += 1
                t0 = time.perf_counter()
                try:
                    doc = c.schedule(make_doc(seed), timeout=120)
                except Exception as exc:  # noqa: BLE001
                    errors.append(f"client {ci} seed {seed}: {exc}")
                    continue
                dt = (time.perf_counter() - t0) * 1e3
                all_ms[ci].append(dt)
                if not fresh:
                    if doc["job"]["served_from"] != "result-cache":
                        errors.append(
                            f"repeat seed {seed} was not served from "
                            f"cache ({doc['job']['served_from']})"
                        )
                    warm_ms[ci].append(dt)
            with lock:
                repeat_requests += my_repeats

        t_load = time.perf_counter()
        threads = [
            threading.Thread(target=worker, args=(ci,))
            for ci in range(clients)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall = time.perf_counter() - t_load
        if errors:
            for e in errors[:10]:
                print(f"ERROR: {e}", file=sys.stderr)
            raise SystemExit(f"{len(errors)} request(s) failed")

        flat_all = [x for chunk in all_ms for x in chunk]
        flat_loaded_warm = [x for chunk in warm_ms for x in chunk]

        # -- quiescent warm phase: repeats with no competing runs -----
        # measured under the same (sequential) conditions as the cold
        # phase, so warm_over_cold_x compares like with like; the
        # loaded percentiles above capture behavior under contention
        flat_warm: list[float] = []
        for r in range(4 * problems):
            t0 = time.perf_counter()
            doc = client.schedule(make_doc(r % problems), timeout=120)
            flat_warm.append((time.perf_counter() - t0) * 1e3)
            if doc["job"]["served_from"] != "result-cache":
                raise SystemExit(
                    f"quiescent repeat (seed {r % problems}) missed "
                    f"the result cache: {doc['job']['served_from']}"
                )
            repeat_requests += 1
        metrics = parse_prometheus(client.metrics_text())
    finally:
        service.request_drain()
        thread.join(timeout=60)

    cold = statistics.median(cold_ms)
    warm = statistics.median(flat_warm)
    speedup = cold / warm if warm > 0 else float("inf")
    rps = len(flat_all) / wall
    p50 = percentile(flat_all, 0.50)
    p99 = percentile(flat_all, 0.99)
    warm_p99 = percentile(flat_warm, 0.99)
    loaded_warm_p99 = percentile(flat_loaded_warm, 0.99)
    print(
        f"mixed load: {len(flat_all)} requests in {wall:.2f} s "
        f"({rps:.0f} req/s)"
    )
    print(
        f"latency: p50 {p50:.1f} ms, p99 {p99:.1f} ms "
        f"(loaded warm p99 {loaded_warm_p99:.1f} ms)"
    )
    print(
        f"quiescent warm {warm:.2f} ms vs cold {cold:.1f} ms -> "
        f"{speedup:.0f}x warm-over-cold "
        f"(warm p99 {warm_p99:.2f} ms)"
    )

    budgets = dict(BUDGET_DEFAULTS)
    if out_path.exists():
        previous = json.loads(out_path.read_text(encoding="utf-8"))
        budgets.update(previous.get("budgets", {}))
    result = {
        "comment": (
            "Scheduling-service load baseline; regenerate with: "
            "python benchmarks/bench_service.py  — gated by "
            "check_perf.py --service (>= 10x warm-over-cold, "
            "latency percentiles within the pinned budgets, every "
            "repeat served from the result cache)"
        ),
        "engine": engine,
        "workers": workers,
        "clients": clients,
        "requests_total": (
            len(flat_all) + len(cold_ms) + len(flat_warm)
        ),
        "repeat_requests": repeat_requests,
        "cold_ms": cold,
        "warm_ms": warm,
        "warm_over_cold_x": speedup,
        "p50_ms": p50,
        "p99_ms": p99,
        "warm_p99_ms": warm_p99,
        "loaded_warm_p99_ms": loaded_warm_p99,
        "requests_per_sec": rps,
        "wall_seconds": wall,
        "budgets": budgets,
        "server": {
            "result_cache_hits": metrics.get(
                "repro_service_jobs_served_from_cache", 0.0
            ),
            "warm_tier_hits": metrics.get(
                "repro_service_cache_warm_hits", 0.0
            ),
            "warm_tier_misses": metrics.get(
                "repro_service_cache_warm_misses", 0.0
            ),
            "jobs_submitted": metrics.get(
                "repro_service_jobs_submitted", 0.0
            ),
            "jobs_completed": metrics.get(
                "repro_service_jobs_completed", 0.0
            ),
        },
        "machine_info": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
        },
    }
    out_path.write_text(
        json.dumps(result, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"wrote {out_path}")
    if results_txt is not None:
        results_txt.parent.mkdir(parents=True, exist_ok=True)
        results_txt.write_text(
            "Scheduling-service throughput "
            "(benchmarks/bench_service.py)\n"
            f"engine: {engine}  workers: {workers}  "
            f"clients: {clients}\n"
            f"requests: {result['requests_total']} "
            f"({repeat_requests} repeats)\n"
            f"throughput: {rps:.0f} req/s over {wall:.2f} s\n"
            f"cold median: {cold:.1f} ms   "
            f"warm median: {warm:.2f} ms   "
            f"warm-over-cold: {speedup:.0f}x\n"
            f"p50: {p50:.1f} ms   p99: {p99:.1f} ms   "
            f"warm p99: {warm_p99:.2f} ms\n",
            encoding="utf-8",
        )
        print(f"wrote {results_txt}")
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0]
    )
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument(
        "--requests",
        type=int,
        default=24,
        help="requests per client in the mixed-load phase",
    )
    parser.add_argument(
        "--problems",
        type=int,
        default=8,
        help="distinct requests submitted in the cold phase",
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="daemon worker threads"
    )
    parser.add_argument(
        "--results-txt",
        type=Path,
        default=None,
        help="also write a human-readable summary here",
    )
    args = parser.parse_args(argv)
    run(
        args.out,
        clients=args.clients,
        requests=args.requests,
        problems=args.problems,
        workers=args.workers,
        results_txt=args.results_txt,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
