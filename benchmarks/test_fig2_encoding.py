"""E2 / Figure 2 — the allocation-vector encoding of individuals.

Figure 2 is an illustration; its executable counterpart here round-trips
the example encoding through the library's genome validation and the
mapper, and benchmarks the encode/validate/describe path.
"""

import numpy as np

from repro.core import validate_genome
from repro.experiments.figures import generate_figure2
from repro.mapping import map_allocations
from repro.platform import Cluster
from repro.timemodels import AmdahlModel, TimeTable

from .conftest import write_result


def test_figure2_encoding(benchmark):
    fig = benchmark(generate_figure2)

    # the individual is a feasible allocation vector for an 8-proc cluster
    genome = validate_genome(fig.genome, fig.ptg.num_tasks, 8)

    # and it maps to a valid schedule (position i drives task v_i)
    cluster = Cluster("enc", num_processors=8, speed_gflops=1.0)
    table = TimeTable.build(AmdahlModel(), fig.ptg, cluster)
    schedule = map_allocations(fig.ptg, table, genome)
    schedule.validate(times=table.times_for(genome))
    assert np.array_equal(schedule.allocations, genome)

    write_result("figure2.txt", fig.render())
