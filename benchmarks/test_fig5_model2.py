"""E5 / Figure 5 — relative makespan under Model 2 (non-monotone),
EMTS5 (upper row) and EMTS10 (lower row).

Asserts the paper's findings for the non-monotone model:

* EMTS never loses to either baseline;
* the gains on Grelon are substantial (the heuristics stall at tiny
  allocations while EMTS keeps optimizing);
* EMTS10's mean relative makespan is >= EMTS5's in every panel (more
  budget cannot hurt under plus-selection and shared seeds);
* under Model 2 the baselines' allocations really do stall at <= 8
  processors (the paper's Section V-B explanation).

Set ``REPRO_BENCH_SCALE=1.0`` for the paper's full corpus.
"""

import numpy as np
import pytest

from repro.allocation import HcpaAllocator, McpaAllocator
from repro.core import emts10
from repro.experiments.figures import generate_figure5
from repro.platform import grelon
from repro.timemodels import SyntheticModel, TimeTable
from repro.workloads import DaggenParams, generate_daggen

from .conftest import BENCH_SEED, bench_scale, write_result


@pytest.fixture(scope="module")
def fig5():
    return generate_figure5(
        seed=BENCH_SEED, scale=bench_scale(0.01)
    )


def test_figure5_grid(benchmark, fig5):
    # representative kernel: EMTS10 on an irregular 100-node PTG
    ptg = generate_daggen(
        DaggenParams(
            num_tasks=100, width=0.5, regularity=0.2, density=0.2, jump=2
        ),
        rng=BENCH_SEED,
    )
    cluster = grelon()
    table = TimeTable.build(SyntheticModel(), ptg, cluster)
    benchmark.pedantic(
        lambda: emts10().schedule(ptg, cluster, table, rng=BENCH_SEED),
        rounds=2,
        iterations=1,
    )

    row5, row10 = fig5.emts5_row, fig5.emts10_row

    # EMTS never loses
    for row in (row5, row10):
        for key, ci in row.cells.items():
            assert ci.mean >= 1.0 - 1e-9, key

    # significant gains on the larger platform (paper: "EMTS5
    # significantly reduces the makespan in all cases" on Grelon)
    for panel in row5.panels:
        best_gain = max(
            row5.cell(panel, "grelon", b).mean
            for b in row5.baselines
        )
        assert best_gain > 1.02, panel

    # more budget cannot hurt: EMTS10 >= EMTS5 per panel (small slack
    # for sampling noise at reduced corpus scale)
    for key, ci5 in row5.cells.items():
        ci10 = row10.cells[key]
        assert ci10.mean >= ci5.mean - 0.03, key

    # the Section V-B explanation: baselines stall at 4-8 processors
    alloc_mcpa = McpaAllocator().allocate(ptg, table)
    alloc_hcpa = HcpaAllocator().allocate(ptg, table)
    assert alloc_mcpa.max() <= 8
    assert alloc_hcpa.max() <= 8

    write_result("figure5.txt", fig5.render())
    from repro.experiments import write_csv

    write_result(
        "figure5.csv",
        write_csv(
            fig5.emts5_row.to_rows() + fig5.emts10_row.to_rows()
        ),
    )
