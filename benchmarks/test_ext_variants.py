"""Extension experiment — comparing evolutionary methods
(the paper's first future-work item: "different evolutionary methods
could be compared to each other with respect to scheduling performance
and speed").

Runs the default variant panel on irregular 100-task PTGs (Grelon,
Model 2) and records the quality/speed table.  Structural assertions:

* EMTS10 produces the best (or tied-best) mean makespan of the panel;
* the rejection-strategy variant matches plain EMTS5's quality exactly;
* EMTS10 costs more wall time than EMTS5 (quality is bought with time).
"""

import pytest

from repro.experiments import compare_variants
from repro.platform import grelon
from repro.timemodels import SyntheticModel
from repro.workloads import DaggenParams, generate_daggen

from .conftest import BENCH_SEED, write_result


@pytest.fixture(scope="module")
def result():
    ptgs = [
        generate_daggen(
            DaggenParams(
                num_tasks=100,
                width=0.5,
                regularity=0.2,
                density=0.2,
                jump=2,
            ),
            rng=s,
        )
        for s in range(3)
    ]
    return compare_variants(
        ptgs, grelon(), SyntheticModel(), seed=BENCH_SEED
    )


def test_variant_panel(benchmark, result):
    benchmark.pedantic(lambda: result, rounds=1, iterations=1)

    emts5 = result.outcome("emts5")
    emts10 = result.outcome("emts10")
    reject = result.outcome("emts5-reject")

    # more budget -> better (or equal) quality, at higher cost
    assert emts10.mean_makespan <= emts5.mean_makespan + 1e-9
    assert emts10.mean_seconds > emts5.mean_seconds

    # the rejection mapper changes speed, never quality
    assert reject.mean_makespan == pytest.approx(
        emts5.mean_makespan
    )

    write_result("ext_variants.txt", result.render())
