"""Extension experiment — EMTS parameter sensitivity.

The paper fixes Δ = 0.9, f_m = 0.33, σ = 5, a = 0.2 without tuning
("we set the parameters to reasonable values").  This benchmark sweeps
each parameter around the paper's value and records how much schedule
quality moves — validating (or bounding) the paper's untuned choice.
"""

import pytest

from repro.experiments import run_sensitivity_study
from repro.platform import grelon
from repro.timemodels import SyntheticModel
from repro.workloads import DaggenParams, generate_daggen

from .conftest import BENCH_SEED, write_result


@pytest.fixture(scope="module")
def study():
    ptgs = [
        generate_daggen(
            DaggenParams(
                num_tasks=50,
                width=0.5,
                regularity=0.2,
                density=0.2,
                jump=2,
            ),
            rng=s,
        )
        for s in range(3)
    ]
    return run_sensitivity_study(
        ptgs, grelon(), SyntheticModel(), seed=BENCH_SEED
    )


def test_sensitivity_profiles(benchmark, study):
    benchmark.pedantic(lambda: study, rounds=1, iterations=1)

    # the paper-default cell is the baseline by construction
    for parameter in ("fm", "shrink_probability", "sigma", "delta"):
        profile = study.profile(parameter)
        assert all(rel > 0 for rel in profile.values())

    # none of the swept values should *catastrophically* beat the
    # paper's settings (> 25 % better would mean the defaults are
    # poorly chosen for this regime) — and results are recorded either
    # way for inspection
    for parameter, profile in study.profiles.items():
        assert min(profile.values()) > 0.6, parameter

    write_result("ext_sensitivity.txt", study.render())
