"""Extension experiment — platform-size scalability of EMTS's gain.

The paper observes (Section V-A) that EMTS's improvement grows with
platform size, but only samples two sizes (Chti: 20, Grelon: 120).
This benchmark sweeps the platform size and asserts the full trend,
writing the curve to results/.
"""

import pytest

from repro.experiments import run_scalability_sweep
from repro.workloads import DaggenParams, generate_daggen

from .conftest import BENCH_SEED, write_result


@pytest.fixture(scope="module")
def workload():
    return [
        generate_daggen(
            DaggenParams(
                num_tasks=50,
                width=0.5,
                regularity=0.2,
                density=0.2,
                jump=2,
            ),
            rng=s,
        )
        for s in range(4)
    ]


def test_scalability_sweep(benchmark, workload):
    sweep = benchmark.pedantic(
        run_scalability_sweep,
        args=(workload,),
        kwargs={"sizes": (10, 20, 40, 80, 120, 160), "seed": BENCH_SEED},
        rounds=1,
        iterations=1,
    )

    # EMTS never loses to MCPA at any size
    for ci in sweep.cells.values():
        assert ci.mean >= 1.0 - 1e-9

    # the paper's claim: gains grow (weakly) with platform size
    assert sweep.trend_is_nondecreasing(slack=0.1)

    # and the extremes separate clearly: the largest platform's gain
    # exceeds the smallest platform's
    assert (
        sweep.cells[160].mean >= sweep.cells[10].mean - 1e-9
    )

    write_result("ext_scalability.txt", sweep.render())
