"""Micro-benchmarks of the library's hot kernels.

The paper's complexity analysis identifies the mapping function as the
cost driver of the whole algorithm (``O(U * mu * lambda * C_map)``); the
conclusions single it out as the main optimization target.  These
benchmarks track the kernels so performance regressions are visible:

* ``bottom_levels`` — computed once per fitness evaluation and once per
  CPA iteration (the measured hot spot, vectorized layer-wise);
* ``makespan_of`` — one full fitness evaluation;
* CPA/MCPA allocation — the seed cost;
* ``TimeTable.build`` — the per-(PTG, platform) setup cost.
"""

import numpy as np
import pytest

from repro._rng import spawn
from repro.allocation import CpaAllocator, McpaAllocator
from repro.graph import bottom_levels
from repro.mapping import makespan_of, map_allocations
from repro.platform import grelon
from repro.timemodels import AmdahlModel, SyntheticModel, TimeTable
from repro.workloads import DaggenParams, generate_daggen

from .conftest import BENCH_SEED


@pytest.fixture(scope="module")
def problem():
    ptg = generate_daggen(
        DaggenParams(
            num_tasks=100, width=0.5, regularity=0.2, density=0.5, jump=2
        ),
        rng=BENCH_SEED,
    )
    cluster = grelon()
    table = TimeTable.build(SyntheticModel(), ptg, cluster)
    return ptg, cluster, table


def test_kernel_bottom_levels(benchmark, problem):
    ptg, _, table = problem
    times = table.times_for(
        np.ones(ptg.num_tasks, dtype=np.int64)
    )
    bl = benchmark(bottom_levels, ptg, times)
    assert bl.max() > 0


def test_kernel_fitness_evaluation(benchmark, problem):
    ptg, _, table = problem
    rng = spawn(BENCH_SEED, "bench", "fitness")
    alloc = rng.integers(1, 121, size=ptg.num_tasks, dtype=np.int64)
    ms = benchmark(makespan_of, ptg, table, alloc)
    assert ms > 0


def test_kernel_full_mapping(benchmark, problem):
    ptg, _, table = problem
    alloc = np.full(ptg.num_tasks, 4, dtype=np.int64)
    schedule = benchmark(map_allocations, ptg, table, alloc)
    assert schedule.makespan > 0


def test_kernel_cpa_allocation_model2(benchmark, problem):
    ptg, _, table = problem
    alloc = benchmark(CpaAllocator().allocate, ptg, table)
    assert alloc.min() >= 1


def test_kernel_cpa_allocation_model1(benchmark, problem):
    """Model 1 is the expensive case: allocations keep growing."""
    ptg, cluster, _ = problem
    table = TimeTable.build(AmdahlModel(), ptg, cluster)
    alloc = benchmark(McpaAllocator().allocate, ptg, table)
    assert alloc.max() >= 1


def test_kernel_time_table_build(benchmark, problem):
    ptg, cluster, _ = problem
    table = benchmark(
        TimeTable.build, SyntheticModel(), ptg, cluster
    )
    assert table.shape == (100, 120)
