"""Micro-benchmarks of the library's hot kernels.

The paper's complexity analysis identifies the mapping function as the
cost driver of the whole algorithm (``O(U * mu * lambda * C_map)``); the
conclusions single it out as the main optimization target.  These
benchmarks track the kernels so performance regressions are visible:

* ``bottom_levels`` — computed once per fitness evaluation and once per
  CPA iteration (the measured hot spot, vectorized layer-wise);
* ``makespan_of`` — one full fitness evaluation;
* CPA/MCPA allocation — the seed cost;
* ``TimeTable.build`` — the per-(PTG, platform) setup cost.
"""

import numpy as np
import pytest

from repro._rng import spawn
from repro.allocation import CpaAllocator, McpaAllocator
from repro.graph import bottom_levels
from repro.mapping import makespan_of, map_allocations
from repro.mapping.kernel import ScheduleKernel, kernel_for
from repro.platform import grelon
from repro.timemodels import AmdahlModel, SyntheticModel, TimeTable
from repro.workloads import DaggenParams, generate_daggen

from .conftest import BENCH_SEED, write_result


@pytest.fixture(scope="module")
def problem():
    ptg = generate_daggen(
        DaggenParams(
            num_tasks=100, width=0.5, regularity=0.2, density=0.5, jump=2
        ),
        rng=BENCH_SEED,
    )
    cluster = grelon()
    table = TimeTable.build(SyntheticModel(), ptg, cluster)
    # warm the compiled kernel so its one-off construction cost does not
    # leak into the first benchmark's calibration round (it is measured
    # separately by test_kernel_build)
    kernel_for(table)
    return ptg, cluster, table


def test_kernel_bottom_levels(benchmark, problem):
    ptg, _, table = problem
    times = table.times_for(
        np.ones(ptg.num_tasks, dtype=np.int64)
    )
    bl = benchmark(bottom_levels, ptg, times)
    assert bl.max() > 0


def test_kernel_fitness_evaluation(benchmark, problem):
    ptg, _, table = problem
    rng = spawn(BENCH_SEED, "bench", "fitness")
    alloc = rng.integers(1, 121, size=ptg.num_tasks, dtype=np.int64)
    ms = benchmark(makespan_of, ptg, table, alloc)
    assert ms > 0


def test_kernel_fitness_reference(benchmark, problem):
    """Same fitness evaluation forced onto the reference engine.

    This is the denominator of the compiled-kernel speedup gate in
    ``check_perf.py``: measuring both engines in the same run makes the
    ratio robust to hardware differences between CI hosts.
    """
    ptg, _, table = problem
    rng = spawn(BENCH_SEED, "bench", "fitness")
    alloc = rng.integers(1, 121, size=ptg.num_tasks, dtype=np.int64)
    ms = benchmark(makespan_of, ptg, table, alloc, compiled=False)
    assert ms > 0


def test_kernel_build(benchmark, problem):
    """One-off ScheduleKernel construction per (PTG, platform, model):
    CSR flattening, dense table, sweep compilation, buffers."""
    ptg, _, table = problem
    kernel = benchmark(ScheduleKernel, ptg, table)
    assert kernel.num_tasks == ptg.num_tasks


def test_kernel_makespan_batch(benchmark, problem):
    """Batch fitness path the evaluators dispatch whole generations
    through (cost reported per 100-genome block)."""
    ptg, _, table = problem
    kernel = kernel_for(table)
    rng = spawn(BENCH_SEED, "bench", "batch")
    block = rng.integers(
        1, 121, size=(100, ptg.num_tasks), dtype=np.int64
    )
    values = benchmark(kernel.makespan_batch, block)
    assert len(values) == 100


def test_kernel_full_mapping(benchmark, problem):
    ptg, _, table = problem
    alloc = np.full(ptg.num_tasks, 4, dtype=np.int64)
    schedule = benchmark(map_allocations, ptg, table, alloc)
    assert schedule.makespan > 0


def test_kernel_cpa_allocation_model2(benchmark, problem):
    ptg, _, table = problem
    alloc = benchmark(CpaAllocator().allocate, ptg, table)
    assert alloc.min() >= 1


def test_kernel_cpa_allocation_model1(benchmark, problem):
    """Model 1 is the expensive case: allocations keep growing."""
    ptg, cluster, _ = problem
    table = TimeTable.build(AmdahlModel(), ptg, cluster)
    alloc = benchmark(McpaAllocator().allocate, ptg, table)
    assert alloc.max() >= 1


def test_kernel_earliest_start(benchmark, problem):
    """Order-statistic query of the mapper's inner loop.

    One call per branch of :meth:`ProcessorState.earliest_start`: the
    ``s == 1`` min-reduction, the general in-place partition, and the
    ``s == P`` max-reduction.
    """
    from repro.mapping.processor_state import ProcessorState

    state = ProcessorState(120)
    rng = spawn(BENCH_SEED, "bench", "earliest_start")
    state.free[:] = rng.random(120)

    def query():
        return (
            state.earliest_start(1, 0.5)
            + state.earliest_start(60, 0.5)
            + state.earliest_start(120, 0.5)
        )

    total = benchmark(query)
    assert total > 0


def test_kernel_time_table_build(benchmark, problem):
    ptg, cluster, _ = problem
    table = benchmark(
        TimeTable.build, SyntheticModel(), ptg, cluster
    )
    assert table.shape == (100, 120)


def test_report_kernel_speedup(problem, results_dir):
    """Record the compiled-kernel speedups in results/kernel_speedup.txt.

    Companion of the PR 1 engine report (``evaluator_speedup.txt``):
    one EA-generation batch of 100 offspring through the reference
    mapper, the kernel's numpy loop, the native (C) loop, and the
    process pool.  The final assertion is the tentpole promise — at
    least 3x single-process speedup over the reference engine.
    """
    import os
    import time

    from repro.core import ProcessPoolEvaluator, SerialEvaluator

    ptg, _, table = problem
    kernel = kernel_for(table)
    rng = spawn(BENCH_SEED, "bench", "speedup")
    genomes = [
        rng.integers(1, 121, size=ptg.num_tasks, dtype=np.int64)
        for _ in range(100)
    ]

    def timed(fn, repeats=5):
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    t_ref = timed(
        lambda: [
            makespan_of(ptg, table, g, compiled=False) for g in genomes
        ]
    )

    serial = SerialEvaluator(ptg, table)
    t_native = timed(lambda: serial.evaluate(genomes))

    # same evaluator with the native loop detached: the numpy loop
    saved = kernel._c
    kernel._c = None
    try:
        t_numpy = timed(lambda: serial.evaluate(genomes))
    finally:
        kernel._c = saved
    native_note = (
        "" if saved is not None else "  [native loop unavailable]"
    )

    with ProcessPoolEvaluator(ptg, table, workers=4) as pool:
        pool.evaluate(genomes[:2])  # pool start-up excluded
        t_pool = timed(lambda: pool.evaluate(genomes))

    cores = os.cpu_count() or 1
    lines = [
        "Compiled scheduling kernel: batch of 100 offspring, "
        "100-task daggen PTG, Grelon (120 procs)",
        f"host cores: {cores}",
        "",
        f"reference mapper        : {t_ref * 1e3:9.2f} ms",
        f"kernel, numpy loop      : {t_numpy * 1e3:9.2f} ms  "
        f"(speedup {t_ref / t_numpy:5.2f}x)",
        f"kernel, native loop     : {t_native * 1e3:9.2f} ms  "
        f"(speedup {t_ref / t_native:5.2f}x){native_note}",
        f"pool (4 workers)        : {t_pool * 1e3:9.2f} ms  "
        f"(speedup {t_ref / t_pool:5.2f}x)",
        "",
        "note: all engines compute bit-identical makespans (see "
        "tests/test_mapping_kernel.py).  The pool numbers are bounded "
        "by the host's core count; on a single-core host the pool "
        "degrades to IPC overhead while the single-process kernel "
        "speedups are hardware-independent.",
    ]
    write_result("kernel_speedup.txt", "\n".join(lines) + "\n")
    # the tentpole promise: >= 3x single-process speedup
    assert t_native < t_ref / 3
