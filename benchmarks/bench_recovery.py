#!/usr/bin/env python
"""Kill-restart recovery benchmark for the scheduling daemon.

Runs ``--cycles`` crash cycles against one persistent spool.  Each
cycle submits a batch of jobs to a live ``repro-emts serve`` subprocess
(short ones that finish, one long one guaranteed to be mid-run), then
SIGKILLs the daemon and measures **restart-to-serving**: wall time from
launching the replacement process until ``/healthz`` answers — process
start, imports, spool recovery and requeue included.  After each
restart the exactly-once ledger is settled:

``jobs_acked`` / ``jobs_lost``
    Every job the client got an ack (202/200) for must reach ``done``
    after the restart.  ``jobs_lost`` counts the ones that did not —
    gated at exactly 0.
``jobs_duplicated``
    Submissions are keyed, so a key appearing on more than one spool
    record means a retry spawned a twin — gated at exactly 0.
``results_identical``
    A fixed reference request is re-submitted (fresh key) every cycle;
    all cycles must produce bit-identical result documents — crash
    count must never leak into result bits.
``restart_p50_ms`` / ``restart_p99_ms``
    Restart-to-serving percentiles over the cycles; p99 is gated
    against the pinned ``budgets.restart_p99_ms``.

``python benchmarks/check_perf.py --recovery benchmarks/BENCH_recovery.json``
enforces the gates.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

sys.path.insert(
    0, str(Path(__file__).resolve().parent.parent / "src")
)

from repro.graph import ptg_to_dict  # noqa: E402
from repro.mapping import _cscheduler  # noqa: E402
from repro.service import (  # noqa: E402
    RetryingServiceClient,
    RetryPolicy,
    ServiceClient,
)
from repro.testing import ServiceDaemon  # noqa: E402
from repro.workloads import generate_fft  # noqa: E402

DEFAULT_OUT = Path(__file__).resolve().parent / "BENCH_recovery.json"
#: pinned: a regenerated baseline never relaxes the committed budget
BUDGET_DEFAULTS: dict[str, float] = {
    "restart_p99_ms": 10000.0,
}

SHORT_GENERATIONS = 3
LONG_GENERATIONS = 600  # guaranteed still running when the kill lands
REFERENCE_SEED = 1000


def make_doc(seed: int, generations: int, key: str) -> dict:
    return {
        "ptg": ptg_to_dict(generate_fft(4, rng=7)),
        "platform": "chti",
        "model": "amdahl",
        "algorithm": "emts5",
        "seed": seed,
        "generations": generations,
        "idempotency_key": key,
    }


def percentile(samples: list[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    idx = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[idx]


def run(out_path: Path, *, cycles: int, results_txt: Path | None) -> dict:
    import tempfile

    engine = "numpy" if _cscheduler.load()[0] is None else "c"
    print(f"engine: {engine}, cycles: {cycles}")

    restart_ms: list[float] = []
    acked: dict[str, str] = {}  # key -> acked job id
    lost: set[str] = set()
    reference_results: list[str] = []

    with tempfile.TemporaryDirectory(prefix="bench-recovery-") as tmp:
        spool = Path(tmp) / "spool"
        daemon = ServiceDaemon(spool=spool)
        daemon.start()
        try:
            for cycle in range(cycles):
                client = RetryingServiceClient(
                    port=daemon.port,
                    policy=RetryPolicy(base=0.02, cap=0.2, seed=cycle),
                )
                # short jobs that finish before the kill...
                for i in range(2):
                    key = f"idem-c{cycle}-short{i}"
                    doc = client.schedule(
                        make_doc(
                            cycle * 10 + i, SHORT_GENERATIONS, key
                        ),
                        timeout=120,
                    )
                    acked[key] = doc["job"]["id"]
                # ...the per-cycle reference request (bit-identity probe)
                ref_key = f"idem-c{cycle}-ref"
                ref = client.schedule(
                    make_doc(REFERENCE_SEED, SHORT_GENERATIONS, ref_key),
                    timeout=120,
                )
                acked[ref_key] = ref["job"]["id"]
                reference_results.append(
                    json.dumps(ref["result"], sort_keys=True)
                )
                # ...and one long job that the kill lands on mid-run
                long_key = f"idem-c{cycle}-long"
                long_doc = client.submit(
                    make_doc(cycle * 10 + 9, LONG_GENERATIONS, long_key)
                )
                acked[long_key] = long_doc["job"]["id"]
                poll = ServiceClient(port=daemon.port, timeout=10)
                deadline = time.monotonic() + 60
                while time.monotonic() < deadline:
                    state = poll.get_job(acked[long_key])["job"]["state"]
                    if state == "running":
                        break
                    time.sleep(0.01)

                daemon.kill()  # SIGKILL: the crash

                replacement = ServiceDaemon(spool=spool)
                t0 = time.perf_counter()
                replacement.start(wait_healthy=True)
                elapsed_ms = (time.perf_counter() - t0) * 1e3
                restart_ms.append(elapsed_ms)
                daemon = replacement
                print(
                    f"cycle {cycle}: restart-to-serving "
                    f"{elapsed_ms:.0f} ms"
                )

                # settle the ledger: every acked job must reach done
                settle = ServiceClient(port=daemon.port, timeout=30)
                for key, job_id in sorted(acked.items()):
                    try:
                        doc = settle.wait_for(job_id, timeout=300)
                    except Exception as exc:  # noqa: BLE001
                        print(f"  lost {key}: {exc}")
                        lost.add(key)
                        continue
                    if doc["job"]["state"] != "done":
                        lost.add(key)

            # duplicate scan over the whole spool: at most one record
            # per idempotency key across every cycle and crash
            seen: dict[str, list[str]] = {}
            for record_path in sorted((spool / "jobs").glob("*.json")):
                record = json.loads(record_path.read_text())
                key = record["request"].get("idempotency_key")
                if key:
                    seen.setdefault(key, []).append(record["id"])
            duplicates = {
                k: ids for k, ids in seen.items() if len(ids) > 1
            }
        finally:
            daemon.kill()

    results_identical = len(set(reference_results)) <= 1
    p50 = percentile(restart_ms, 0.50)
    p99 = percentile(restart_ms, 0.99)
    print(
        f"restarts: p50 {p50:.0f} ms, p99 {p99:.0f} ms over "
        f"{len(restart_ms)} cycles"
    )
    print(
        f"acked {len(acked)}, lost {len(lost)}, "
        f"duplicated {len(duplicates)}, "
        f"results identical: {results_identical}"
    )

    budgets = dict(BUDGET_DEFAULTS)
    if out_path.exists():
        previous = json.loads(out_path.read_text(encoding="utf-8"))
        budgets.update(previous.get("budgets", {}))
    result = {
        "comment": (
            "Kill-restart recovery baseline; regenerate with: "
            "python benchmarks/bench_recovery.py  — gated by "
            "check_perf.py --recovery (no acked job lost, no "
            "duplicate execution, bit-identical reference results, "
            "restart-to-serving p99 within the pinned budget)"
        ),
        "engine": engine,
        "cycles": len(restart_ms),
        "restart_ms": [round(v, 1) for v in restart_ms],
        "restart_p50_ms": p50,
        "restart_p99_ms": p99,
        "jobs_acked": len(acked),
        "jobs_lost": len(lost),
        "lost_keys": sorted(lost),
        "jobs_duplicated": len(duplicates),
        "duplicate_keys": sorted(duplicates),
        "results_identical": results_identical,
        "budgets": budgets,
        "machine_info": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
        },
    }
    out_path.write_text(
        json.dumps(result, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"wrote {out_path}")
    if results_txt is not None:
        results_txt.parent.mkdir(parents=True, exist_ok=True)
        results_txt.write_text(
            "Kill-restart recovery "
            "(benchmarks/bench_recovery.py)\n"
            f"engine: {engine}  cycles: {len(restart_ms)}\n"
            f"restart-to-serving: p50 {p50:.0f} ms   "
            f"p99 {p99:.0f} ms\n"
            f"acked: {len(acked)}   lost: {len(lost)}   "
            f"duplicated: {len(duplicates)}\n"
            f"reference results identical: {results_identical}\n",
            encoding="utf-8",
        )
        print(f"wrote {results_txt}")
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0]
    )
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    parser.add_argument(
        "--cycles",
        type=int,
        default=5,
        help="kill-restart cycles to run (gate requires >= 3)",
    )
    parser.add_argument(
        "--results-txt",
        type=Path,
        default=None,
        help="also write a human-readable summary here",
    )
    args = parser.parse_args(argv)
    run(args.out, cycles=args.cycles, results_txt=args.results_txt)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
