"""Ablation — the mapper's priority rule (paper Section III-A).

The paper adopts bottom-level list scheduling because "previous work
showed that a list scheduling approach leads to efficient schedules".
This ablation quantifies the priority rule's contribution by mapping
identical allocation vectors under three ready-queue orders:
bottom-level (the paper's), FIFO (topological index), and
heaviest-first, over a set of irregular PTGs.
"""

import numpy as np
import pytest

from repro.allocation import McpaAllocator
from repro.mapping import PRIORITIES, makespan_of
from repro.platform import chti
from repro.timemodels import AmdahlModel, TimeTable
from repro.workloads import DaggenParams, generate_daggen

from .conftest import write_result


@pytest.fixture(scope="module")
def problems():
    cluster = chti()
    model = AmdahlModel()
    out = []
    for seed in range(6):
        ptg = generate_daggen(
            DaggenParams(
                num_tasks=60,
                width=0.8,
                regularity=0.2,
                density=0.2,
                jump=2,
            ),
            rng=seed,
        )
        table = TimeTable.build(model, ptg, cluster)
        alloc = McpaAllocator().allocate(ptg, table)
        out.append((ptg, table, alloc))
    return out


def test_mapper_priority_ablation(benchmark, problems):
    means = {}
    for priority in PRIORITIES:
        means[priority] = float(
            np.mean(
                [
                    makespan_of(ptg, table, alloc, priority=priority)
                    for ptg, table, alloc in problems
                ]
            )
        )

    ptg, table, alloc = problems[0]
    benchmark(makespan_of, ptg, table, alloc)

    # the paper's rule is at least as good as both alternatives on
    # average
    assert means["bottom-level"] <= means["topological"] * 1.01
    assert means["bottom-level"] <= means["heaviest-first"] * 1.01

    lines = [
        f"{priority:<15} mean makespan {value:.4f}"
        for priority, value in means.items()
    ]
    write_result("ablation_mapper.txt", "\n".join(lines) + "\n")
