"""Benchmarks of the fitness-evaluation engine backends.

Measures one EA-generation-sized batch of offspring evaluations on a
100-task daggen PTG (the paper's "large" instance class) through each
backend:

* serial — the historical one-mapper-call-per-genome path;
* pool-4 — four worker processes, chunked dispatch;
* memoized — steady-state cache behavior (duplicate offspring, as the
  annealed mutation produces in late generations).

``test_report_speedup`` additionally records the measured ratios in
``results/evaluator_speedup.txt`` together with the machine's core
count — the pool speedup is hardware-bound (a single-core host cannot
show one; the cache speedup is hardware-independent).
"""

import os
import time

import numpy as np
import pytest

from repro.core import (
    MemoizedEvaluator,
    ProcessPoolEvaluator,
    SerialEvaluator,
)
from repro.core.evaluator import create_evaluator
from repro.platform import grelon
from repro.timemodels import SyntheticModel, TimeTable
from repro.workloads import DaggenParams, generate_daggen

from .conftest import BENCH_SEED, write_result

#: One (10 + 100)-EA generation's worth of offspring.
BATCH = 100


@pytest.fixture(scope="module")
def problem():
    ptg = generate_daggen(
        DaggenParams(
            num_tasks=100, width=0.5, regularity=0.2, density=0.5, jump=2
        ),
        rng=BENCH_SEED,
    )
    cluster = grelon()
    table = TimeTable.build(SyntheticModel(), ptg, cluster)
    rng = np.random.default_rng(BENCH_SEED)
    genomes = [
        rng.integers(
            1, cluster.num_processors + 1, size=ptg.num_tasks
        ).astype(np.int64)
        for _ in range(BATCH)
    ]
    return ptg, table, genomes


def test_evaluator_serial_batch(benchmark, problem):
    ptg, table, genomes = problem
    ev = SerialEvaluator(ptg, table)
    values = benchmark(ev.evaluate, genomes)
    assert min(values) > 0


def test_evaluator_pool4_batch(benchmark, problem):
    ptg, table, genomes = problem
    with ProcessPoolEvaluator(ptg, table, workers=4) as ev:
        ev.evaluate(genomes[:2])  # warm the pool outside the timing
        values = benchmark(ev.evaluate, genomes)
    assert min(values) > 0


def test_evaluator_memoized_steady_state(benchmark, problem):
    ptg, table, genomes = problem
    ev = MemoizedEvaluator(SerialEvaluator(ptg, table))
    ev.evaluate(genomes)  # warm: every genome cached
    values = benchmark(ev.evaluate, genomes)
    assert min(values) > 0
    assert ev.stats.cache_hits >= BATCH


def test_evaluator_verified_sample_batch(benchmark, problem):
    """Sampled differential verification must stay near-free."""
    ptg, table, genomes = problem
    with create_evaluator(ptg, table, cache=False, verify="sample") as ev:
        ev.evaluate(genomes)  # first-batch spot check outside the timing
        values = benchmark(ev.evaluate, genomes)
    assert min(values) > 0


def test_verify_sample_overhead(problem):
    """``verify="sample"`` adds under 5 % to the benchmark batch."""
    ptg, table, genomes = problem

    def timed(verify, repeats=3, batches=20):
        best = float("inf")
        for _ in range(repeats):
            with create_evaluator(
                ptg, table, cache=False, verify=verify
            ) as ev:
                ev.evaluate(genomes)  # warm-up / first-batch check
                t0 = time.perf_counter()
                for _ in range(batches):
                    ev.evaluate(genomes)
                best = min(best, time.perf_counter() - t0)
        return best

    t_off = timed("off")
    t_sample = timed("sample")
    assert t_sample < t_off * 1.05, (
        f"verify='sample' overhead "
        f"{100 * (t_sample / t_off - 1):.2f}% exceeds 5%"
    )


def test_report_speedup(problem, results_dir):
    """Record serial vs. pool vs. cached wall-times in results/."""
    ptg, table, genomes = problem

    def timed(fn, repeats=3):
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    serial = SerialEvaluator(ptg, table)
    t_serial = timed(lambda: serial.evaluate(genomes))

    with ProcessPoolEvaluator(ptg, table, workers=4) as pool:
        pool.evaluate(genomes[:2])  # pool start-up excluded
        t_pool = timed(lambda: pool.evaluate(genomes))

    cached = MemoizedEvaluator(SerialEvaluator(ptg, table))
    cached.evaluate(genomes)
    t_cached = timed(lambda: cached.evaluate(genomes))

    cores = os.cpu_count() or 1
    lines = [
        "Fitness-evaluation engine: batch of "
        f"{BATCH} offspring, 100-task daggen PTG, Grelon (120 procs)",
        f"host cores: {cores}",
        "",
        f"serial            : {t_serial * 1e3:9.2f} ms",
        f"pool (4 workers)  : {t_pool * 1e3:9.2f} ms  "
        f"(speedup {t_serial / t_pool:5.2f}x)",
        f"memoized (warm)   : {t_cached * 1e3:9.2f} ms  "
        f"(speedup {t_serial / t_cached:5.2f}x)",
        "",
        "note: the pool speedup is bounded by the host's core count; "
        "on a single-core host it degrades to IPC overhead while the "
        "memoized path stays hardware-independent.",
    ]
    write_result("evaluator_speedup.txt", "\n".join(lines) + "\n")
    # the warm cache must beat re-scheduling by a wide margin anywhere
    assert t_cached < t_serial / 2
    if cores >= 4:
        assert t_pool < t_serial  # parallelism pays off given cores
