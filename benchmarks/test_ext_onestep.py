"""Extension experiment — the one-step vs two-step trade-off (CPR).

Paper Section II-B: one-step algorithms (CPR, LoC-MPS) produce short
schedules but pay for it with expensive schedule-validated decisions;
two-step algorithms (CPA family) are cheap but can pack worse.  This
benchmark quantifies both sides next to EMTS on the same problems:

* quality: CPR <= CPA in makespan (it validates every step);
* cost: CPR needs far more mapper invocations than MCPA (measured as
  wall time here);
* EMTS5, seeded with the two-step results, closes the quality gap at a
  bounded, budget-controlled cost.
"""

import time

import pytest

from repro.allocation import CpaAllocator, CprAllocator, McpaAllocator
from repro.core import emts5
from repro.mapping import makespan_of
from repro.platform import chti, grelon
from repro.timemodels import AmdahlModel, SyntheticModel, TimeTable
from repro.workloads import DaggenParams, generate_daggen

from .conftest import BENCH_SEED, write_result


def _ptgs(count=3):
    return [
        generate_daggen(
            DaggenParams(
                num_tasks=50,
                width=0.5,
                regularity=0.2,
                density=0.5,
                jump=2,
            ),
            rng=s,
        )
        for s in range(count)
    ]


@pytest.fixture(scope="module")
def regimes():
    """(label, cluster, per-problem tables) for both models."""
    ptgs = _ptgs()
    out = []
    for label, model, cluster in (
        ("model1/chti", AmdahlModel(), chti()),
        ("model2/grelon", SyntheticModel(), grelon()),
    ):
        tables = [
            (ptg, TimeTable.build(model, ptg, cluster))
            for ptg in ptgs
        ]
        out.append((label, cluster, tables))
    return out


def test_onestep_vs_twostep(benchmark, regimes):
    lines = []
    for label, cluster, problems in regimes:
        lines.append(f"== {label} ==")
        cpr_beats_cpa = 0
        for i, (ptg, table) in enumerate(problems):
            timings = {}
            makespans = {}
            for alg in (
                McpaAllocator(),
                CpaAllocator(),
                CprAllocator(),
            ):
                t0 = time.perf_counter()
                alloc = alg.allocate(ptg, table)
                timings[alg.name] = time.perf_counter() - t0
                makespans[alg.name] = makespan_of(ptg, table, alloc)
            result = emts5().schedule(
                ptg, cluster, table, rng=BENCH_SEED
            )
            makespans["emts5"] = result.makespan
            timings["emts5"] = result.elapsed_seconds

            # schedule-validated growth can never end up worse than
            # blind two-step growth on the same table
            assert makespans["cpr"] <= makespans["cpa"] * 1.02
            if makespans["cpr"] < makespans["cpa"] * 0.999:
                cpr_beats_cpa += 1

            lines.append(f"problem {i}:")
            for name in ("mcpa", "cpa", "cpr", "emts5"):
                lines.append(
                    f"  {name:<6} makespan {makespans[name]:10.4f}  "
                    f"time {timings[name] * 1000:8.2f} ms"
                )

        if label.startswith("model1"):
            # under the monotone model, one-step look-ahead pays off:
            # CPR strictly beats CPA on (at least most of) the problems
            assert cpr_beats_cpa >= len(problems) - 1
        else:
            # under Model 2 both families hit the same penalty wall —
            # the paper's motivation for going evolutionary at all
            pass

    ptg, table = regimes[0][2][0]
    benchmark.pedantic(
        CprAllocator().allocate,
        args=(ptg, table),
        rounds=2,
        iterations=1,
    )
    write_result("ext_onestep.txt", "\n".join(lines) + "\n")
